//! Regression guards: loose golden checks on headline behaviours.
//!
//! Planning is deterministic given a seed, so these assertions pin the
//! *bands* the reproduction currently achieves. They are deliberately
//! generous — their job is to catch silent behavioural drift (a broken
//! pruning rule, a mis-charged ledger), not to freeze exact numbers.

use moped::core::{plan_variant, PlannerParams, Variant};
use moped::env::{Scenario, ScenarioParams};
use moped::hw::design::DesignPoint;
use moped::hw::engine;
use moped::robot::Robot;

fn traced(samples: usize, seed: u64) -> PlannerParams {
    PlannerParams {
        max_samples: samples,
        seed,
        trace_rounds: true,
        ..PlannerParams::default()
    }
}

/// The headline algorithmic saving on the reference drone workload stays
/// in its band.
#[test]
fn algorithmic_saving_band() {
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), 61);
    let p = traced(1000, 1);
    let base = plan_variant(&s, Variant::V0Baseline, &p);
    let moped = plan_variant(&s, Variant::V4Lci, &p);
    let saving =
        base.stats.total_ops().mac_equiv() as f64 / moped.stats.total_ops().mac_equiv() as f64;
    assert!(
        (3.0..60.0).contains(&saving),
        "drone@16obst saving drifted out of band: {saving:.1}"
    );
}

/// The end-to-end hardware evaluation keeps every comparison in the
/// direction and rough magnitude the paper reports.
#[test]
fn hardware_comparison_bands() {
    let s = Scenario::generate(
        Robot::viperx_300(),
        &ScenarioParams::with_obstacles(16),
        123,
    );
    let p = PlannerParams {
        max_samples: 600,
        seed: 5,
        goal_tolerance: 0.8,
        ..PlannerParams::default()
    };
    let rep = engine::evaluate(&s, &p, &DesignPoint::default());
    assert!(
        (200.0..100_000.0).contains(&rep.vs_cpu.speedup),
        "CPU speedup band: {:.0}",
        rep.vs_cpu.speedup
    );
    assert!(
        (1.5..60.0).contains(&rep.vs_asic.speedup),
        "ASIC speedup band: {:.1}",
        rep.vs_asic.speedup
    );
    assert!(
        (1.0..40.0).contains(&rep.vs_codacc.speedup),
        "CODAcc speedup band: {:.1}",
        rep.vs_codacc.speedup
    );
    assert!(
        rep.moped.latency_s < 5e-3,
        "latency {:.2e}s",
        rep.moped.latency_s
    );
    assert!(
        (1.0..=2.0).contains(&rep.pipeline.speedup()),
        "S&R band: {:.2}",
        rep.pipeline.speedup()
    );
}

/// The design point's silicon numbers stay pinned to the paper's.
#[test]
fn design_point_band() {
    let d = DesignPoint::default();
    assert!(
        (d.area_mm2() - 0.62).abs() < 0.08,
        "area {:.3}",
        d.area_mm2()
    );
    assert!(
        (d.power_w() * 1e3 - 137.5).abs() < 8.0,
        "power {:.1}mW",
        d.power_w() * 1e3
    );
    assert_eq!(d.macs(), 168);
    assert!((d.sram_kb() - 198.0).abs() < 1e-9);
}

/// Baseline breakdown keeps the Fig 3 structure: kernels ≥95% of work,
/// arms collision-dominated, mobile search-dominated.
#[test]
fn fig3_structure_band() {
    let p = PlannerParams {
        max_samples: 800,
        seed: 4,
        ..PlannerParams::default()
    };
    let mobile = plan_variant(
        &Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 8),
        Variant::V0Baseline,
        &p,
    );
    let arm = plan_variant(
        &Scenario::generate(Robot::xarm7(), &ScenarioParams::with_obstacles(16), 8),
        Variant::V0Baseline,
        &p,
    );
    let (m_cc, m_ns, _) = mobile.stats.breakdown();
    let (a_cc, a_ns, _) = arm.stats.breakdown();
    assert!(m_ns > m_cc, "mobile must be search-dominated");
    assert!(a_cc > a_ns, "xArm must be collision-dominated");
    assert!(m_cc + m_ns > 0.95 && a_cc + a_ns > 0.95);
}
