//! End-to-end planning on the 16-bit datapath: the full RRT\* loop with
//! all collision decisions made by the integer SAT on quantized operands,
//! compared against double-precision planning on the same tasks. This is
//! the system-level validation that MOPED's 16-bit word size (Fig 11) is
//! sufficient for real planning, not just for isolated kernel queries.

use moped::collision::NaiveChecker;
use moped::core::{PlannerParams, RrtStar, SimbrIndex};
use moped::env::{Scenario, ScenarioParams};
use moped::hw::satq::QuantizedChecker;
use moped::robot::Robot;

fn params(samples: usize, seed: u64) -> PlannerParams {
    PlannerParams {
        max_samples: samples,
        seed,
        ..PlannerParams::default()
    }
}

/// The quantized planner must solve the same open scenes the float
/// planner solves, with comparable path quality.
#[test]
fn quantized_planning_matches_float_planning() {
    let mut both_solved = 0;
    let mut q_cost = 0.0;
    let mut f_cost = 0.0;
    for seed in 0..4u64 {
        let s = Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(12),
            300 + seed,
        );
        let float_checker = NaiveChecker::new(s.obstacles.clone());
        let quant_checker = QuantizedChecker::new(&s.obstacles);
        let rf = RrtStar::new(&s, &float_checker, SimbrIndex::moped(3), params(900, seed)).plan();
        let rq = RrtStar::new(&s, &quant_checker, SimbrIndex::moped(3), params(900, seed)).plan();
        if rf.solved() && rq.solved() {
            both_solved += 1;
            f_cost += rf.path_cost;
            q_cost += rq.path_cost;
        }
    }
    assert!(
        both_solved >= 3,
        "quantized planner should solve open scenes: {both_solved}/4"
    );
    assert!(
        q_cost < f_cost * 1.2 + 10.0,
        "16-bit path quality must stay close: {q_cost:.1} vs {f_cost:.1}"
    );
}

/// Paths produced under quantized collision checking must be collision
/// free under the *exact* float oracle — the conservative bias of the
/// integer kernel (ULP slack on the radius side) must protect the robot.
#[test]
fn quantized_paths_are_actually_safe() {
    for seed in [11u64, 13] {
        let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), seed);
        let quant_checker = QuantizedChecker::new(&s.obstacles);
        let mut planner = RrtStar::new(&s, &quant_checker, SimbrIndex::moped(6), params(700, seed));
        let r = planner.plan();
        if let Some(path) = &r.path {
            let steps = moped::geometry::InterpolationSteps::with_resolution(
                (s.robot.steering_step() / 4.0).max(1e-3),
            );
            let mut grazing = 0usize;
            let mut total = 0usize;
            for w in path.windows(2) {
                for pose in moped::geometry::interpolate(&w[0], &w[1], &steps) {
                    total += 1;
                    if s.config_collides(&pose) {
                        grazing += 1;
                    }
                }
            }
            // Quantization can admit poses an exact checker rejects only
            // within a half-ULP shell; any real violation rate means the
            // conservative bias is broken.
            assert!(
                grazing * 100 <= total,
                "{grazing}/{total} poses violate the exact oracle (seed {seed})"
            );
        }
    }
}

/// The checker's name and obstacle encoding are exposed for reports.
#[test]
fn quantized_checker_metadata() {
    let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 1);
    let c = QuantizedChecker::new(&s.obstacles);
    assert_eq!(c.obstacles().len(), 8);
    assert_eq!(
        moped::collision::CollisionChecker::name(&c),
        "quantized-16bit"
    );
}
