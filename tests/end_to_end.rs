//! End-to-end integration tests spanning every crate: full planning runs
//! through the facade API, checked for soundness, determinism, and the
//! paper's headline behaviours.

use moped::collision::{CollisionChecker, CollisionLedger, NaiveChecker, TwoStageChecker};
use moped::core::{plan_variant, PlannerParams, RrtStar, SimbrIndex, Variant};
use moped::env::{Scenario, ScenarioParams};
use moped::geometry::InterpolationSteps;
use moped::hw::design::DesignPoint;
use moped::hw::{perf, pipeline};
use moped::robot::Robot;

fn quick(samples: usize, seed: u64) -> PlannerParams {
    PlannerParams {
        max_samples: samples,
        seed,
        ..PlannerParams::default()
    }
}

/// Every variant, every robot: the planner runs to budget, the returned
/// path (when any) starts at the start, ends at the goal, and every
/// interpolated pose is collision free under the *exact* oracle.
#[test]
fn all_variants_all_robots_produce_sound_paths() {
    for robot in Robot::all_models() {
        let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(8), 99);
        for variant in [Variant::V0Baseline, Variant::V4Lci] {
            let r = plan_variant(&s, variant, &quick(400, 1));
            assert_eq!(r.stats.samples, 400, "{variant} on {}", s.robot.name());
            if let Some(path) = &r.path {
                assert_eq!(path[0], s.start);
                assert_eq!(*path.last().unwrap(), s.goal);
                let steps =
                    InterpolationSteps::with_resolution((s.robot.steering_step() / 4.0).max(1e-3));
                for w in path.windows(2) {
                    for pose in moped::geometry::interpolate(&w[0], &w[1], &steps) {
                        assert!(
                            !s.config_collides(&pose),
                            "{variant} on {}: pose collides",
                            s.robot.name()
                        );
                    }
                }
            }
        }
    }
}

/// The checkers must agree query-for-query when driven by the same
/// planner (the two-stage filter is exact, only cheaper).
#[test]
fn naive_and_two_stage_planners_agree_given_same_seed() {
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(24), 7);
    let naive = NaiveChecker::new(s.obstacles.clone());
    let two = TwoStageChecker::moped(s.obstacles.clone());
    // Identical index + seed: the planners must walk identical trees.
    let a = RrtStar::new(&s, &naive, SimbrIndex::moped(6), quick(300, 5)).plan();
    let b = RrtStar::new(&s, &two, SimbrIndex::moped(6), quick(300, 5)).plan();
    assert_eq!(a.stats.nodes, b.stats.nodes, "same decisions expected");
    assert_eq!(a.path_cost.to_bits(), b.path_cost.to_bits());
}

/// Headline claim: the full MOPED stack saves a large factor of counted
/// work at paper-like budgets while keeping path cost comparable.
#[test]
fn moped_saves_work_without_hurting_quality() {
    let mut total_base = 0u64;
    let mut total_moped = 0u64;
    let mut cost_base = 0.0;
    let mut cost_moped = 0.0;
    let mut solved = 0;
    for seed in 0..3 {
        let s = Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            200 + seed,
        );
        let b = plan_variant(&s, Variant::V0Baseline, &quick(1200, seed));
        let m = plan_variant(&s, Variant::V4Lci, &quick(1200, seed));
        total_base += b.stats.total_ops().mac_equiv();
        total_moped += m.stats.total_ops().mac_equiv();
        if b.solved() && m.solved() {
            cost_base += b.path_cost;
            cost_moped += m.path_cost;
            solved += 1;
        }
    }
    assert!(
        total_moped * 4 < total_base,
        "expected >4x saving at 1200 samples: {total_moped} vs {total_base}"
    );
    assert!(solved >= 2, "both planners should solve open scenes");
    assert!(
        cost_moped <= cost_base * 1.25,
        "path quality must be preserved: {cost_moped} vs {cost_base}"
    );
}

/// The hardware stack composes with the planner: trace → pipeline →
/// reports, with the §IV-B buffer bounds holding on a real workload.
#[test]
fn hardware_model_end_to_end() {
    let s = Scenario::generate(Robot::rozum(), &ScenarioParams::with_obstacles(16), 55);
    let p = PlannerParams {
        max_samples: 500,
        seed: 2,
        trace_rounds: true,
        goal_tolerance: 0.8,
        ..PlannerParams::default()
    };
    let base = plan_variant(&s, Variant::V0Baseline, &p);
    let moped = plan_variant(&s, Variant::V4Lci, &p);

    let design = DesignPoint::default();
    let m = perf::moped_report(&moped.stats, &design);
    let cpu = perf::cpu_report(&base.stats);
    let asic = perf::rrt_asic_report(&base.stats, &design);
    let cod = perf::codacc_report(&base.stats, &s.robot, &design);

    assert!(m.latency_s > 0.0 && m.latency_s < 0.1);
    assert!(perf::compare(&m, &cpu).speedup > 50.0);
    assert!(perf::compare(&m, &asic).speedup > 1.0);
    assert!(perf::compare(&m, &cod).speedup > 0.5);

    let rounds = pipeline::rounds_from_trace(&moped.stats.rounds);
    let rep = pipeline::simulate(&rounds);
    assert!(rep.max_fifo_occupancy <= 20);
    assert!(rep.max_missing_neighbors <= 5);
    assert!(rep.speedup() >= 1.0);
}

/// S&R functional equivalence on every robot model (the §IV-B claim).
#[test]
fn speculation_is_functionally_equivalent_everywhere() {
    for robot in Robot::all_models() {
        let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(16), 13);
        let p = PlannerParams {
            max_samples: 150,
            seed: 4,
            ..PlannerParams::default()
        };
        let rep = pipeline::verify_equivalence(&s, &p, 2);
        assert!(rep.equivalent, "S&R diverged on {}", s.robot.name());
    }
}

/// LFSR-driven sampling composes with the robot models (hardware-faithful
/// sampling front end).
#[test]
fn lfsr_sampler_feeds_collision_pipeline() {
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), 3);
    let two = TwoStageChecker::moped(s.obstacles.clone());
    let mut sampler = moped::hw::lfsr::ConfigSampler::new(6, 0x5A5A);
    let mut ledger = CollisionLedger::default();
    let mut free = 0;
    for _ in 0..200 {
        let q = sampler.sample(&s.robot);
        if two.config_free(&s.robot, &q, &mut ledger) {
            free += 1;
        }
    }
    assert!(
        free > 100,
        "most of a 16-obstacle workspace is free: {free}/200"
    );
    assert!(ledger.first_stage.sat_queries > 0);
}

/// Fixed-point quantization leaves planner decisions intact on a real
/// scenario's start/goal bookkeeping.
#[test]
fn quantized_configs_stay_collision_consistent() {
    use moped::hw::fixed::QFormat;
    let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 21);
    let fmt = QFormat::WORKSPACE;
    let mut agree = 0;
    let mut total = 0;
    let mut rng_state = 99u64;
    for _ in 0..300 {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let unit: Vec<f64> = (0..3)
            .map(|i| ((rng_state >> (i * 16)) & 0xFFFF) as f64 / 65535.0)
            .collect();
        let q = s.robot.config_from_unit(&unit);
        let qq = fmt.roundtrip_config(&q);
        total += 1;
        if s.config_collides(&q) == s.config_collides(&qq) {
            agree += 1;
        }
    }
    // Boundary-straddling poses may flip; the overwhelming majority must
    // agree for 16-bit hardware to be viable.
    assert!(agree * 100 >= total * 97, "only {agree}/{total} agreed");
}
