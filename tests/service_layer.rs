//! Tier-1 smoke test for the serving layer: a concurrent batch is
//! deterministic vs serial planning, and deadlines are enforced.

use std::time::Duration;

use moped::core::{plan_variant, PlannerParams};
use moped::robot::Robot;
use moped::service::{EnvironmentCatalog, Outcome, PlanRequest, PlanService, ServiceConfig};

#[test]
fn batch_is_deterministic_and_deadlines_bite() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();

    let requests: Vec<PlanRequest> = (0..12u64)
        .map(|i| {
            let params = PlannerParams {
                max_samples: 250,
                seed: i,
                ..PlannerParams::default()
            };
            PlanRequest::new(env_ids[i as usize % env_ids.len()], params)
        })
        .collect();
    let serial: Vec<f64> = requests
        .iter()
        .map(|r| {
            let scenario = &catalog.get(r.env).unwrap().scenario;
            plan_variant(scenario, r.variant, &r.params).path_cost
        })
        .collect();

    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            stop_poll_every: 32,
            ..Default::default()
        },
    );
    let responses = service.run_batch(requests);
    for (resp, reference) in responses.iter().zip(&serial) {
        let resp = resp.as_ref().unwrap().response().expect("served");
        assert_eq!(resp.outcome, Outcome::Completed);
        assert_eq!(resp.result.path_cost.to_bits(), reference.to_bits());
    }

    // One more request with an unreachable budget but a short deadline:
    // it must come back early with a best-so-far answer.
    let env = env_ids[0];
    let params = PlannerParams {
        max_samples: 50_000_000,
        seed: 99,
        ..PlannerParams::default()
    };
    let ticket = service
        .submit(PlanRequest::new(env, params).with_deadline(Duration::from_millis(15)))
        .unwrap();
    let late = ticket.wait().into_result().expect("served");
    assert_eq!(late.outcome, Outcome::DeadlineExpired);
    assert!(late.result.stats.stopped_early);
    assert!(late.result.stats.samples < 50_000_000);

    let metrics = service.shutdown();
    assert_eq!(metrics.accepted(), 13);
    assert_eq!(metrics.completed() + metrics.deadline_expired(), 13);
    assert_eq!(metrics.queue_depth(), 0);
}
