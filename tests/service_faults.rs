//! Chaos tests for the fault-tolerant serving layer: panics injected
//! into the worker loop must never hang a ticket, never poison the
//! determinism of unaffected requests, and never shrink the pool.

use std::time::{Duration, Instant};

use moped::core::{plan_variant, PlannerParams};
use moped::robot::Robot;
use moped::service::{
    EnvironmentCatalog, FailureReason, FaultPlan, FaultSite, Outcome, PlanRequest, PlanService,
    RetryPolicy, ServiceConfig,
};
use std::sync::Arc;

const BATCH: usize = 32;
const WORKERS: usize = 4;

fn batch_requests(catalog: &EnvironmentCatalog) -> Vec<PlanRequest> {
    let env_ids: Vec<_> = catalog.ids().collect();
    (0..BATCH)
        .map(|i| {
            let params = PlannerParams {
                max_samples: 300,
                seed: i as u64,
                ..PlannerParams::default()
            };
            PlanRequest::new(env_ids[i % env_ids.len()], params)
        })
        .collect()
}

fn serial_reference(catalog: &EnvironmentCatalog, requests: &[PlanRequest]) -> Vec<u64> {
    requests
        .iter()
        .map(|r| {
            let scenario = &catalog.get(r.env).unwrap().scenario;
            plan_variant(scenario, r.variant, &r.params)
                .path_cost
                .to_bits()
        })
        .collect()
}

/// Spin until the supervisor has restored the pool to full capacity.
fn await_full_capacity(service: &PlanService) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.alive_workers() < service.worker_count() {
        assert!(
            Instant::now() < deadline,
            "supervisor must respawn dead workers"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The acceptance-criteria chaos batch: every 8th planning attempt in a
/// 32-request batch panics. Every ticket must resolve (no hang, no
/// client panic), each faulted request must yield a typed failure, every
/// non-faulted request must stay bit-identical to a serial
/// `plan_variant` run, and the pool must end at full capacity.
#[test]
fn chaos_batch_with_injected_panics_keeps_contract() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let requests = batch_requests(&catalog);
    let serial = serial_reference(&catalog, &requests);

    let faults = Arc::new(FaultPlan::new().panic_every(FaultSite::Planning, 8));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: WORKERS,
            queue_capacity: BATCH,
            stop_poll_every: 64,
            faults: Some(faults),
            ..Default::default()
        },
    );

    // (a) every ticket resolves — run_batch waits on all of them.
    let outcomes = service.run_batch(requests);
    assert_eq!(outcomes.len(), BATCH);

    let mut failed = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().expect("batch fits the queue");
        match outcome.response() {
            // (c) non-faulted requests are bit-identical to serial runs.
            Some(resp) => {
                assert_eq!(resp.outcome, Outcome::Completed, "request {i}");
                assert_eq!(resp.result.path_cost.to_bits(), serial[i], "request {i}");
            }
            // (b) faulted requests resolve as typed failures.
            None => {
                let failure = outcome.failure().unwrap();
                assert!(
                    matches!(&failure.reason, FailureReason::Panic { message }
                        if message.contains("injected panic at planning")),
                    "unexpected failure: {failure}"
                );
                assert_eq!(failure.attempts, 1, "retries are off");
                failed += 1;
            }
        }
    }
    // Retries are off, so planning-site hits == requests: 32 hits fire
    // the every-8th rule exactly 4 times.
    assert_eq!(failed, BATCH / 8);

    // (d) workers caught the panics in place: capacity never dropped.
    await_full_capacity(&service);
    assert_eq!(service.alive_workers(), WORKERS);

    let metrics = service.shutdown();
    assert_eq!(metrics.accepted(), BATCH as u64);
    assert_eq!(metrics.failed(), (BATCH / 8) as u64);
    assert_eq!(metrics.panics_caught(), (BATCH / 8) as u64);
    assert_eq!(metrics.faults_injected(), (BATCH / 8) as u64);
    assert_eq!(
        metrics.completed() + metrics.failed(),
        BATCH as u64,
        "every admitted request has exactly one terminal accounting"
    );
    assert_eq!(metrics.queue_depth(), 0);
    assert_eq!(metrics.worker_respawns(), 0, "caught panics kill nobody");
}

/// Worker-killing faults (panics outside the per-job guard): the two
/// victims' tickets resolve as `WorkerDied`, everything else stays
/// bit-identical to serial, and the supervisor respawns the pool back to
/// its configured capacity.
#[test]
fn killed_workers_are_respawned_and_tickets_resolve() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let requests = batch_requests(&catalog);
    let serial = serial_reference(&catalog, &requests);

    // Kill the serving worker on the 9th and 18th dequeues.
    let faults = Arc::new(FaultPlan::new().kill_worker_every(9, 2));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: WORKERS,
            queue_capacity: BATCH,
            stop_poll_every: 64,
            faults: Some(faults),
            ..Default::default()
        },
    );

    let outcomes = service.run_batch(requests);
    let mut died = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().expect("batch fits the queue");
        match outcome.response() {
            Some(resp) => {
                assert_eq!(resp.result.path_cost.to_bits(), serial[i], "request {i}");
            }
            None => {
                assert_eq!(
                    outcome.failure().unwrap().reason,
                    FailureReason::WorkerDied,
                    "request {i}"
                );
                died += 1;
            }
        }
    }
    assert_eq!(died, 2, "exactly the two kill-rule victims fail");

    // (d) post-respawn pool capacity equals the configured worker count.
    await_full_capacity(&service);
    assert_eq!(service.alive_workers(), WORKERS);

    let metrics = service.shutdown();
    assert_eq!(metrics.worker_respawns(), 2);
    assert_eq!(metrics.completed(), (BATCH - 2) as u64);
    assert_eq!(metrics.queue_depth(), 0);
}

/// With retries enabled, a once-off injected panic is absorbed: the
/// faulted request succeeds on its second attempt, bit-identical to a
/// serial run, and the retry is visible in the response and the metrics.
#[test]
fn retry_recovers_transient_panic_bit_identically() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("pillar-forest").unwrap();
    let params = PlannerParams {
        max_samples: 300,
        seed: 42,
        ..PlannerParams::default()
    };
    let request = PlanRequest::new(env, params.clone());
    let reference = plan_variant(
        &catalog.get(env).unwrap().scenario,
        request.variant,
        &params,
    );

    let faults = Arc::new(FaultPlan::new().panic_once(FaultSite::Planning));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 1,
            retry: RetryPolicy::attempts(3)
                .with_backoff(Duration::from_millis(1))
                .with_jitter(Duration::from_millis(1)),
            faults: Some(faults),
            ..Default::default()
        },
    );
    let response = service
        .submit(PlanRequest::new(env, params))
        .unwrap()
        .wait()
        .into_result()
        .expect("retry must recover the transient fault");
    assert_eq!(response.attempts, 2);
    assert_eq!(
        response.result.path_cost.to_bits(),
        reference.path_cost.to_bits(),
        "the retried run is still bit-identical to serial"
    );

    let metrics = service.shutdown();
    assert_eq!(metrics.retries(), 1);
    assert_eq!(metrics.panics_caught(), 1);
    assert_eq!(metrics.failed(), 0);
    assert_eq!(metrics.completed(), 1);
}

/// A panic that reproduces identically is deterministic; however many
/// attempts the policy allows, the worker stops after one confirming
/// retry instead of burning the budget on a failure that cannot heal.
#[test]
fn deterministic_panics_are_not_retried_blindly() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    let params = PlannerParams {
        max_samples: 100,
        seed: 5,
        ..PlannerParams::default()
    };

    // Unlimited panic rule: every attempt fails the same way.
    let faults = Arc::new(FaultPlan::new().panic_every(FaultSite::Planning, 1));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 1,
            retry: RetryPolicy::attempts(5),
            faults: Some(faults),
            ..Default::default()
        },
    );
    let failure = service
        .submit(PlanRequest::new(env, params))
        .unwrap()
        .wait()
        .into_result()
        .expect_err("every attempt panics");
    assert_eq!(
        failure.attempts, 2,
        "first attempt + one confirming retry, despite max_attempts=5"
    );

    let metrics = service.shutdown();
    assert_eq!(metrics.retries(), 1);
    assert_eq!(metrics.panics_caught(), 2);
    assert_eq!(metrics.failed(), 1);
}

/// Polling a ticket whose worker died must surface a terminal failure
/// instead of spinning on `None` forever.
#[test]
fn poll_surfaces_worker_death_as_terminal_failure() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    let params = PlannerParams {
        max_samples: 100,
        seed: 3,
        ..PlannerParams::default()
    };

    // The one worker dies on its first dequeue, taking the job with it.
    let faults = Arc::new(FaultPlan::new().kill_worker_every(1, 1));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 1,
            faults: Some(faults),
            ..Default::default()
        },
    );
    let ticket = service.submit(PlanRequest::new(env, params)).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let outcome = loop {
        if let Some(outcome) = ticket.poll() {
            break outcome;
        }
        assert!(
            Instant::now() < deadline,
            "poll must resolve after a worker death"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(
        outcome.failure().expect("typed failure").reason,
        FailureReason::WorkerDied
    );
    // The resolution has been taken; poll does not re-report it.
    assert!(ticket.poll().is_none());
    service.shutdown();
}

/// Forced queue-full faults at admission surface as ordinary
/// `QueueFull` rejections, and injected latency stretches service time
/// without changing the result.
#[test]
fn admission_and_latency_faults_behave_as_load_conditions() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    let faults = Arc::new(FaultPlan::new().queue_full_every(2).delay_every(
        FaultSite::Planning,
        Duration::from_millis(20),
        1,
    ));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 1,
            faults: Some(faults),
            ..Default::default()
        },
    );
    let params = PlannerParams {
        max_samples: 50,
        seed: 1,
        ..PlannerParams::default()
    };
    let first = service
        .submit(PlanRequest::new(env, params.clone()))
        .unwrap();
    let second = service.submit(PlanRequest::new(env, params.clone()));
    assert!(
        matches!(second, Err(moped::service::RejectReason::QueueFull { .. })),
        "every 2nd admission is forced to reject"
    );
    let response = first.wait().into_result().expect("served");
    assert!(
        response.service_time >= Duration::from_millis(20),
        "injected latency must show up in service time"
    );
    let metrics = service.shutdown();
    assert_eq!(metrics.rejected(), 1);
    assert!(metrics.faults_injected() >= 2);
}

/// Shutdown with clients still holding unresolved tickets: every ticket
/// resolves with a drained result — never a hang, never a panic.
#[test]
fn shutdown_resolves_outstanding_tickets_with_drained_results() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            ..Default::default()
        },
    );
    let tickets: Vec<_> = (0..10u64)
        .map(|seed| {
            let params = PlannerParams {
                max_samples: 250,
                seed,
                ..PlannerParams::default()
            };
            service.submit(PlanRequest::new(env, params)).unwrap()
        })
        .collect();
    // Shut down while all ten tickets are outstanding.
    let metrics = service.shutdown();
    for ticket in tickets {
        let response = ticket.wait().into_result().expect("drained result");
        assert_eq!(response.outcome, Outcome::Completed);
    }
    assert_eq!(metrics.completed(), 10);
    assert_eq!(metrics.queue_depth(), 0);
}

/// A thief dying mid-steal is the sharded pool's sharpest edge: the
/// fault fires only after a job has come off *another* worker's shard,
/// outside the per-job guard. Every outstanding ticket must still
/// resolve (no hang), the one stolen victim fails typed as
/// `WorkerDied` with no double-execution, every served request stays
/// bit-identical to serial, and the supervisor restores the pool.
#[test]
fn worker_dying_mid_steal_resolves_every_ticket_without_double_execution() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();

    // One hog pins whichever worker takes it for ~100ms while the other
    // worker drains its own shard in a few ms and is forced to steal;
    // the first successful steal kills the thief.
    let mut requests = vec![PlanRequest::new(
        env_ids[0],
        PlannerParams {
            max_samples: 30_000,
            seed: 999,
            ..PlannerParams::default()
        },
    )];
    requests.extend((0..8u64).map(|seed| {
        PlanRequest::new(
            env_ids[seed as usize % env_ids.len()],
            PlannerParams {
                max_samples: 300,
                seed,
                ..PlannerParams::default()
            },
        )
    }));
    let serial = serial_reference(&catalog, &requests);

    let faults = Arc::new(FaultPlan::new().kill_worker_on_steal(1, 1));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 2,
            queue_capacity: requests.len(),
            stop_poll_every: 64,
            faults: Some(faults),
            ..Default::default()
        },
    );
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| service.submit(r).expect("batch fits the queue"))
        .collect();

    // (a) no hang: every ticket resolves.
    let mut died = 0usize;
    let mut served = 0usize;
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait().into_result() {
            // (b) served requests stay bit-identical to serial runs —
            // whether they ran on their home worker, a thief, or the
            // respawned replacement.
            Ok(response) => {
                assert_eq!(response.outcome, Outcome::Completed, "request {i}");
                assert_eq!(
                    response.result.path_cost.to_bits(),
                    serial[i],
                    "request {i}"
                );
                served += 1;
            }
            // (c) the job the dying thief took down fails typed.
            Err(failure) => {
                assert_eq!(failure.reason, FailureReason::WorkerDied, "request {i}");
                died += 1;
            }
        }
    }
    // Which job the thief stole is timing-dependent (it may grab the
    // hog itself), but the count is not: the single steal-kill rule
    // takes down exactly one job.
    assert_eq!(died, 1, "exactly the one steal-kill victim fails");
    assert_eq!(served, 8);

    // (d) the supervisor respawns the dead thief back to capacity.
    await_full_capacity(&service);
    assert_eq!(service.alive_workers(), 2);

    let metrics = service.shutdown();
    assert_eq!(metrics.faults_injected(), 1);
    assert_eq!(metrics.worker_respawns(), 1);
    // (e) no double-execution: completions account for exactly the
    // eight survivors; a re-executed stolen job would push this to 9.
    assert_eq!(metrics.completed(), 8);
    assert_eq!(metrics.accepted(), 9);
    assert_eq!(metrics.queue_depth(), 0);
    assert_eq!(
        metrics.panics_caught(),
        0,
        "the steal kill fires outside the per-job guard"
    );
}

/// Shutdown racing a pool that keeps dying: tickets resolve with typed
/// failures (`WorkerDied` for jobs a dying worker took down,
/// `ShutdownDrained` for jobs no worker ever picked up) — never a hang.
#[test]
fn shutdown_with_dead_pool_fails_tickets_typed() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    // Every dequeue kills the worker; respawns die too.
    let faults = Arc::new(FaultPlan::new().kill_worker_every(1, u64::MAX));
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            faults: Some(faults),
            ..Default::default()
        },
    );
    let tickets: Vec<_> = (0..6u64)
        .map(|seed| {
            let params = PlannerParams {
                max_samples: 100,
                seed,
                ..PlannerParams::default()
            };
            service.submit(PlanRequest::new(env, params)).unwrap()
        })
        .collect();
    let metrics = service.shutdown();
    for ticket in tickets {
        let failure = ticket
            .wait()
            .into_result()
            .expect_err("no job can survive a pool that dies on every dequeue");
        assert!(
            matches!(
                failure.reason,
                FailureReason::WorkerDied | FailureReason::ShutdownDrained
            ),
            "unexpected reason: {}",
            failure.reason
        );
    }
    assert_eq!(metrics.completed(), 0);
    assert_eq!(metrics.queue_depth(), 0, "drain balances the gauge");
}
