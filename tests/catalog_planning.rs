//! Planning across the named-scene catalog: every scene is solvable by
//! the full MOPED stack for the free-flying robots, and the scenes
//! actually exercise the behaviours they are named for.

use moped::core::{plan_variant, PlannerParams, Variant};
use moped::env::catalog::{build, NamedScene};
use moped::robot::Robot;

fn params(samples: usize) -> PlannerParams {
    PlannerParams {
        max_samples: samples,
        seed: 11,
        ..PlannerParams::default()
    }
}

#[test]
fn mobile_robot_solves_every_catalog_scene() {
    for scene in NamedScene::ALL {
        let s = build(scene, Robot::mobile_2d());
        let r = plan_variant(&s, Variant::V4Lci, &params(4000));
        assert!(
            r.solved(),
            "{} should be solvable for the mobile robot",
            scene.name()
        );
        assert!(r.path_cost.is_finite());
    }
}

#[test]
fn open_meadow_is_cheap_and_slalom_is_expensive() {
    let meadow = build(NamedScene::OpenMeadow, Robot::mobile_2d());
    let slalom = build(NamedScene::SlalomCorridor, Robot::mobile_2d());
    let rm = plan_variant(&meadow, Variant::V4Lci, &params(4000));
    let rs = plan_variant(&slalom, Variant::V4Lci, &params(4000));
    if rm.solved() && rs.solved() {
        // The slalom forces a detour: its path must be meaningfully
        // longer than the meadow's near-straight line.
        assert!(
            rs.path_cost > rm.path_cost * 1.05,
            "slalom {:.1} should exceed meadow {:.1}",
            rs.path_cost,
            rm.path_cost
        );
    }
}

#[test]
fn drone_threads_the_pillar_forest() {
    let s = build(NamedScene::PillarForest, Robot::drone_3d());
    let r = plan_variant(&s, Variant::V4Lci, &params(4000));
    assert!(r.solved(), "drone should thread the pillar forest");
}

#[test]
fn arm_scenes_have_interference() {
    // The scaled scenes must actually interfere with the arm workspace —
    // otherwise they test nothing. At least one catalog scene must reject
    // some random arm configuration.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut any_interference = false;
    for scene in NamedScene::ALL {
        let s = build(scene, Robot::xarm7());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let unit: Vec<f64> = (0..7).map(|_| rng.gen::<f64>()).collect();
            let q = s.robot.config_from_unit(&unit);
            if s.config_collides(&q) {
                any_interference = true;
                break;
            }
        }
    }
    assert!(
        any_interference,
        "catalog scenes must interfere with the arm workspace"
    );
}
