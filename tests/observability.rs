//! Observability contract tests through the facade: the disabled tracing
//! path allocates nothing and costs a negligible fraction of a planning
//! run, the event journal replays bit-identically, and the Chrome-trace
//! exporter emits well-formed JSON from a real run.
//!
//! The obs recorder is process-global, so every test here serializes on
//! one mutex and restores the disabled/logical defaults on exit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;
use std::time::Instant;

use moped::collision::TwoStageChecker;
use moped::core::{PlannerParams, RrtStar, SimbrIndex};
use moped::env::{Scenario, ScenarioParams};
use moped::obs;
use moped::robot::Robot;

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in this test binary bumps a
// thread-local counter, so "no allocation" is asserted, not assumed.
// ---------------------------------------------------------------------------

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates verbatim to `System`; the counter touch is the only
// addition and `try_with` keeps it sound during thread teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

// ---------------------------------------------------------------------------
// Shared state discipline
// ---------------------------------------------------------------------------

/// Serializes obs-touching tests and restores the defaults afterwards.
fn with_obs_lock(f: impl FnOnce()) {
    static GUARD: Mutex<()> = Mutex::new(());
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    obs::reset();
    f();
    obs::set_enabled(false);
    obs::set_tick_source(obs::TickSource::Logical);
    obs::reset();
}

/// The fixed planar workload every test here shares: the 3-DoF mobile
/// robot in a cluttered world, small enough to plan in milliseconds.
fn planar_scenario() -> Scenario {
    Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 11)
}

fn quick(samples: usize) -> PlannerParams {
    PlannerParams {
        max_samples: samples,
        seed: 3,
        ..PlannerParams::default()
    }
}

// ---------------------------------------------------------------------------
// Disabled-path cost
// ---------------------------------------------------------------------------

#[test]
fn disabled_tracing_allocates_nothing() {
    with_obs_lock(|| {
        obs::set_enabled(false);
        let n = allocations_during(|| {
            for _ in 0..10_000 {
                let _round = obs::span(obs::Stage::Round);
                let _inner = obs::span(obs::Stage::Collision);
                obs::record_duration(obs::Stage::QueueWait, 7);
            }
        });
        assert_eq!(n, 0, "disabled spans must not touch the heap");
    });
}

#[test]
fn disabled_tracing_costs_under_two_percent_of_a_plan() {
    with_obs_lock(|| {
        obs::set_enabled(false);
        let scenario = planar_scenario();
        let checker = TwoStageChecker::moped(scenario.obstacles.clone());
        let index = || SimbrIndex::moped(3);

        // How many spans does this workload open? Count them once with
        // tracing on (span counts are timing-independent).
        obs::set_enabled(true);
        let traced = RrtStar::new(&scenario, &checker, index(), quick(300)).plan();
        obs::set_enabled(false);
        let spans_opened: u64 = obs::snapshot().stages.iter().map(|s| s.count).sum();
        obs::reset();
        assert!(spans_opened > 0, "workload opened no spans");

        // Price one disabled span (construct + drop) in isolation. Take
        // the minimum over several batches: the bound is about the span's
        // inherent cost, and min-of-batches discards descheduling noise
        // when sibling test binaries contend for the CPU.
        let reps: u64 = 250_000;
        let per_span = (0..8)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..reps {
                    let s = obs::span(obs::Stage::Round);
                    std::hint::black_box(&s);
                }
                t0.elapsed().as_secs_f64() / reps as f64
            })
            .fold(f64::INFINITY, f64::min);

        // Time the same plan with tracing disabled.
        let t1 = Instant::now();
        let untraced = RrtStar::new(&scenario, &checker, index(), quick(300)).plan();
        let plan_time = t1.elapsed().as_secs_f64();
        // Same seed, and tracing never branches the planner: identical run.
        assert_eq!(traced.stats.nodes, untraced.stats.nodes);

        let overhead = per_span * spans_opened as f64;
        assert!(
            overhead < 0.02 * plan_time,
            "disabled tracing too costly: {spans_opened} spans x {:.1}ns = {:.3}ms \
             vs plan {:.3}ms",
            per_span * 1e9,
            overhead * 1e3,
            plan_time * 1e3,
        );
    });
}

// ---------------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------------

#[test]
fn journal_replay_reproduces_the_plan_bit_identically() {
    with_obs_lock(|| {
        obs::set_enabled(false);
        let scenario = planar_scenario();
        let checker = TwoStageChecker::moped(scenario.obstacles.clone());

        let mut recorder = RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), quick(400))
            .with_journal_recording();
        let recorded = recorder.plan();
        let journal = recorder.take_journal().expect("journaling was on");

        // Round-trip the wire format before replaying: the replay input is
        // the *parsed* journal, so serialization lossiness would show.
        let parsed = obs::Journal::parse(&journal.serialize()).expect("journal round-trips");
        let replayed = RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), quick(400))
            .with_replay(&parsed)
            .plan();

        assert_eq!(
            recorded.path_cost.to_bits(),
            replayed.path_cost.to_bits(),
            "replayed cost differs: {} vs {}",
            recorded.path_cost,
            replayed.path_cost
        );
        assert_eq!(recorded.stats.nodes, replayed.stats.nodes);
        assert_eq!(recorded.stats.samples, replayed.stats.samples);
        assert_eq!(
            recorded.path, replayed.path,
            "replayed path must be identical"
        );
    });
}

// ---------------------------------------------------------------------------
// Exporters on a real run
// ---------------------------------------------------------------------------

#[test]
fn chrome_trace_from_a_real_run_is_well_formed() {
    with_obs_lock(|| {
        obs::set_tick_source(obs::TickSource::WallClock);
        obs::set_enabled(true);
        let scenario = planar_scenario();
        let checker = TwoStageChecker::moped(scenario.obstacles.clone());
        let result = RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), quick(200)).plan();
        obs::set_enabled(false);
        assert_eq!(result.stats.samples, 200);

        let profile = obs::snapshot();
        assert!(profile.stage(obs::Stage::Round).is_some());
        // The profiler's own JSON is held to the same grammar.
        obs::export::validate_json(&profile.to_json()).expect("profile JSON well-formed");
        let fraction = profile
            .attributed_fraction()
            .expect("round stage present => fraction defined");
        assert!(
            fraction > 0.5,
            "named stages explain only {:.1}% of round time",
            100.0 * fraction
        );

        let (events, _dropped) = obs::take_events();
        assert!(!events.is_empty(), "traced run produced no span events");
        let trace = obs::export::chrome_trace(&events);
        obs::export::validate_json(&trace).expect("chrome trace well-formed");
    });
}
