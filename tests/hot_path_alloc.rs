//! Zero-allocation contract for the hot-path engine: after warm-up,
//! neighbor search and motion collision checking perform no heap
//! allocation at all. The flat SoA tree arena, the reusable best-first
//! frontier, the checker scratch buffers, and the persistent search-stats
//! accumulator exist precisely so the per-query path is allocation-free —
//! this binary asserts that with a counting global allocator rather than
//! assuming it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use moped::collision::{CollisionChecker, CollisionLedger, TwoStageChecker};
use moped::core::{NeighborIndex, SimbrIndex};
use moped::env::{Scenario, ScenarioParams};
use moped::geometry::{Config, InterpolationSteps, OpCount};
use moped::robot::Robot;
use moped::simbr::{SearchStats, SiMbrTree};

// ---------------------------------------------------------------------------
// Counting allocator (same harness as tests/observability.rs): every heap
// allocation in this binary bumps a thread-local counter.
// ---------------------------------------------------------------------------

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates verbatim to `System`; the counter touch is the only
// addition and `try_with` keeps it sound during thread teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

/// A 6-DoF drone workload: the dimensionality the ISSUE targets and the
/// one where tree depth (and therefore scratch growth) is largest.
fn drone_scenario() -> Scenario {
    Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(32), 7)
}

fn drone_queries(s: &Scenario, n: usize) -> Vec<Config> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit: Vec<f64> = (0..6)
                .map(|i| ((state >> (i * 10)) & 0x3FF) as f64 / 1023.0)
                .collect();
            s.robot.config_from_unit(&unit)
        })
        .collect()
}

#[test]
fn nearest_query_allocates_nothing_after_warmup() {
    let s = drone_scenario();
    let mut tree = SiMbrTree::new(6, 6);
    let mut ops = OpCount::default();
    let points = drone_queries(&s, 800);
    for (i, p) in points.iter().enumerate() {
        tree.insert_conventional(i as u64, *p, &mut ops);
    }
    let queries = drone_queries(&s, 64);
    let mut stats = SearchStats::default();

    // Warm-up: sizes the reusable frontier and the depth histogram.
    for q in &queries {
        let _ = tree.nearest_with_stats(q, &mut ops, &mut stats);
    }
    let allocs = allocations_during(|| {
        for q in &queries {
            let got = tree.nearest_with_stats(q, &mut ops, &mut stats);
            assert!(got.is_some());
        }
    });
    assert_eq!(
        allocs, 0,
        "warm nearest queries must not touch the heap ({allocs} allocations over 64 queries)"
    );
}

#[test]
fn index_nearest_with_warm_hint_allocates_nothing() {
    // Through the planner-facing index: persistent stats accumulator plus
    // the search-trace warm-start cell, still zero allocations.
    let s = drone_scenario();
    let points = drone_queries(&s, 600);
    let mut index = SimbrIndex::moped(6);
    let mut ops = OpCount::default();
    for (i, p) in points.iter().enumerate() {
        let hint = if i == 0 {
            None
        } else {
            index.nearest(p, &mut ops).map(|(id, _)| id)
        };
        index.insert(i as u64, *p, hint, &mut ops);
    }
    let queries = drone_queries(&s, 64);
    for q in &queries {
        let _ = index.nearest(q, &mut ops);
    }
    let allocs = allocations_during(|| {
        for q in &queries {
            let got = index.nearest(q, &mut ops);
            assert!(got.is_some());
        }
    });
    assert_eq!(
        allocs, 0,
        "warm index nearest must not touch the heap ({allocs} allocations over 64 queries)"
    );
}

#[test]
fn motion_check_allocates_nothing_after_warmup() {
    let s = drone_scenario();
    let checker = TwoStageChecker::moped(s.obstacles.clone());
    let steps = InterpolationSteps::default();
    let mut ledger = CollisionLedger::default();
    let endpoints = drone_queries(&s, 32);

    // Warm-up: sizes the body/stack/survivor scratch buffers.
    for pair in endpoints.windows(2) {
        let _ = checker.motion_free(&s.robot, &pair[0], &pair[1], &steps, &mut ledger);
    }
    let allocs = allocations_during(|| {
        for pair in endpoints.windows(2) {
            let _ = checker.motion_free(&s.robot, &pair[0], &pair[1], &steps, &mut ledger);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm motion checks must not touch the heap ({allocs} allocations over 31 motions)"
    );
}

#[test]
fn config_check_allocates_nothing_through_cache_transitions() {
    // Alternating free and colliding poses exercise the last-hit cache's
    // populate/hit/invalidate transitions; none of them may allocate.
    let s = drone_scenario();
    let checker = TwoStageChecker::moped(s.obstacles.clone());
    let mut ledger = CollisionLedger::default();
    let poses = drone_queries(&s, 128);
    for q in &poses {
        let _ = checker.config_free(&s.robot, q, &mut ledger);
    }
    let allocs = allocations_during(|| {
        for q in &poses {
            let _ = checker.config_free(&s.robot, q, &mut ledger);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm config checks must not touch the heap ({allocs} allocations over 128 poses)"
    );
}
