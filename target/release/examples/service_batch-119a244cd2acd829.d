/root/repo/target/release/examples/service_batch-119a244cd2acd829.d: examples/service_batch.rs

/root/repo/target/release/examples/service_batch-119a244cd2acd829: examples/service_batch.rs

examples/service_batch.rs:
