/root/repo/target/release/examples/probe_tmp-d545875f763f28f2.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-d545875f763f28f2: examples/probe_tmp.rs

examples/probe_tmp.rs:
