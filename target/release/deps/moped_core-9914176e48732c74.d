/root/repo/target/release/deps/moped_core-9914176e48732c74.d: crates/core/src/lib.rs crates/core/src/extensions.rs crates/core/src/index.rs crates/core/src/planner.rs crates/core/src/replan.rs crates/core/src/smooth.rs crates/core/src/variant.rs

/root/repo/target/release/deps/libmoped_core-9914176e48732c74.rlib: crates/core/src/lib.rs crates/core/src/extensions.rs crates/core/src/index.rs crates/core/src/planner.rs crates/core/src/replan.rs crates/core/src/smooth.rs crates/core/src/variant.rs

/root/repo/target/release/deps/libmoped_core-9914176e48732c74.rmeta: crates/core/src/lib.rs crates/core/src/extensions.rs crates/core/src/index.rs crates/core/src/planner.rs crates/core/src/replan.rs crates/core/src/smooth.rs crates/core/src/variant.rs

crates/core/src/lib.rs:
crates/core/src/extensions.rs:
crates/core/src/index.rs:
crates/core/src/planner.rs:
crates/core/src/replan.rs:
crates/core/src/smooth.rs:
crates/core/src/variant.rs:
