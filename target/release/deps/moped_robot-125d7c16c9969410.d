/root/repo/target/release/deps/moped_robot-125d7c16c9969410.d: crates/robot/src/lib.rs

/root/repo/target/release/deps/libmoped_robot-125d7c16c9969410.rlib: crates/robot/src/lib.rs

/root/repo/target/release/deps/libmoped_robot-125d7c16c9969410.rmeta: crates/robot/src/lib.rs

crates/robot/src/lib.rs:
