/root/repo/target/release/deps/moped_geometry-5b096429b8a8b440.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/config.rs crates/geometry/src/gjk.rs crates/geometry/src/mat3.rs crates/geometry/src/obb.rs crates/geometry/src/ops.rs crates/geometry/src/rect.rs crates/geometry/src/sat.rs crates/geometry/src/segment.rs crates/geometry/src/vec3.rs

/root/repo/target/release/deps/libmoped_geometry-5b096429b8a8b440.rlib: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/config.rs crates/geometry/src/gjk.rs crates/geometry/src/mat3.rs crates/geometry/src/obb.rs crates/geometry/src/ops.rs crates/geometry/src/rect.rs crates/geometry/src/sat.rs crates/geometry/src/segment.rs crates/geometry/src/vec3.rs

/root/repo/target/release/deps/libmoped_geometry-5b096429b8a8b440.rmeta: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/config.rs crates/geometry/src/gjk.rs crates/geometry/src/mat3.rs crates/geometry/src/obb.rs crates/geometry/src/ops.rs crates/geometry/src/rect.rs crates/geometry/src/sat.rs crates/geometry/src/segment.rs crates/geometry/src/vec3.rs

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/config.rs:
crates/geometry/src/gjk.rs:
crates/geometry/src/mat3.rs:
crates/geometry/src/obb.rs:
crates/geometry/src/ops.rs:
crates/geometry/src/rect.rs:
crates/geometry/src/sat.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/vec3.rs:
