/root/repo/target/release/deps/moped_octree-ba608888427f1475.d: crates/octree/src/lib.rs

/root/repo/target/release/deps/libmoped_octree-ba608888427f1475.rlib: crates/octree/src/lib.rs

/root/repo/target/release/deps/libmoped_octree-ba608888427f1475.rmeta: crates/octree/src/lib.rs

crates/octree/src/lib.rs:
