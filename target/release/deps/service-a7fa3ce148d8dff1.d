/root/repo/target/release/deps/service-a7fa3ce148d8dff1.d: crates/bench/benches/service.rs

/root/repo/target/release/deps/service-a7fa3ce148d8dff1: crates/bench/benches/service.rs

crates/bench/benches/service.rs:
