/root/repo/target/release/deps/moped_kdtree-10fdd829f1fec5a3.d: crates/kdtree/src/lib.rs

/root/repo/target/release/deps/libmoped_kdtree-10fdd829f1fec5a3.rlib: crates/kdtree/src/lib.rs

/root/repo/target/release/deps/libmoped_kdtree-10fdd829f1fec5a3.rmeta: crates/kdtree/src/lib.rs

crates/kdtree/src/lib.rs:
