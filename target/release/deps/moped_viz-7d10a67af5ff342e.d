/root/repo/target/release/deps/moped_viz-7d10a67af5ff342e.d: crates/viz/src/lib.rs

/root/repo/target/release/deps/libmoped_viz-7d10a67af5ff342e.rlib: crates/viz/src/lib.rs

/root/repo/target/release/deps/libmoped_viz-7d10a67af5ff342e.rmeta: crates/viz/src/lib.rs

crates/viz/src/lib.rs:
