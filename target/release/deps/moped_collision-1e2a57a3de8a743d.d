/root/repo/target/release/deps/moped_collision-1e2a57a3de8a743d.d: crates/collision/src/lib.rs crates/collision/src/parallel.rs

/root/repo/target/release/deps/libmoped_collision-1e2a57a3de8a743d.rlib: crates/collision/src/lib.rs crates/collision/src/parallel.rs

/root/repo/target/release/deps/libmoped_collision-1e2a57a3de8a743d.rmeta: crates/collision/src/lib.rs crates/collision/src/parallel.rs

crates/collision/src/lib.rs:
crates/collision/src/parallel.rs:
