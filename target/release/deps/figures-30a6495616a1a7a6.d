/root/repo/target/release/deps/figures-30a6495616a1a7a6.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-30a6495616a1a7a6: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
