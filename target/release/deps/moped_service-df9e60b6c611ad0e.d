/root/repo/target/release/deps/moped_service-df9e60b6c611ad0e.d: crates/service/src/lib.rs crates/service/src/metrics.rs

/root/repo/target/release/deps/libmoped_service-df9e60b6c611ad0e.rlib: crates/service/src/lib.rs crates/service/src/metrics.rs

/root/repo/target/release/deps/libmoped_service-df9e60b6c611ad0e.rmeta: crates/service/src/lib.rs crates/service/src/metrics.rs

crates/service/src/lib.rs:
crates/service/src/metrics.rs:
