/root/repo/target/release/deps/moped_env-3a114b7f446920d2.d: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

/root/repo/target/release/deps/libmoped_env-3a114b7f446920d2.rlib: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

/root/repo/target/release/deps/libmoped_env-3a114b7f446920d2.rmeta: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

crates/env/src/lib.rs:
crates/env/src/catalog.rs:
crates/env/src/dynamic.rs:
