/root/repo/target/release/deps/moped-d9771555c1606269.d: src/lib.rs

/root/repo/target/release/deps/libmoped-d9771555c1606269.rlib: src/lib.rs

/root/repo/target/release/deps/libmoped-d9771555c1606269.rmeta: src/lib.rs

src/lib.rs:
