/root/repo/target/release/deps/moped_rtree-e1be53f5c9c06fae.d: crates/rtree/src/lib.rs

/root/repo/target/release/deps/libmoped_rtree-e1be53f5c9c06fae.rlib: crates/rtree/src/lib.rs

/root/repo/target/release/deps/libmoped_rtree-e1be53f5c9c06fae.rmeta: crates/rtree/src/lib.rs

crates/rtree/src/lib.rs:
