/root/repo/target/release/deps/moped_simbr-0a44edcd413683e3.d: crates/simbr/src/lib.rs

/root/repo/target/release/deps/libmoped_simbr-0a44edcd413683e3.rlib: crates/simbr/src/lib.rs

/root/repo/target/release/deps/libmoped_simbr-0a44edcd413683e3.rmeta: crates/simbr/src/lib.rs

crates/simbr/src/lib.rs:
