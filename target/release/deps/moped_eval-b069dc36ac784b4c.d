/root/repo/target/release/deps/moped_eval-b069dc36ac784b4c.d: crates/eval/src/lib.rs crates/eval/src/clearance.rs

/root/repo/target/release/deps/libmoped_eval-b069dc36ac784b4c.rlib: crates/eval/src/lib.rs crates/eval/src/clearance.rs

/root/repo/target/release/deps/libmoped_eval-b069dc36ac784b4c.rmeta: crates/eval/src/lib.rs crates/eval/src/clearance.rs

crates/eval/src/lib.rs:
crates/eval/src/clearance.rs:
