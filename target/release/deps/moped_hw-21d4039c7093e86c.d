/root/repo/target/release/deps/moped_hw-21d4039c7093e86c.d: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

/root/repo/target/release/deps/libmoped_hw-21d4039c7093e86c.rlib: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

/root/repo/target/release/deps/libmoped_hw-21d4039c7093e86c.rmeta: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

crates/hw/src/lib.rs:
crates/hw/src/banks.rs:
crates/hw/src/cache.rs:
crates/hw/src/cachesim.rs:
crates/hw/src/design.rs:
crates/hw/src/energy.rs:
crates/hw/src/engine.rs:
crates/hw/src/fixed.rs:
crates/hw/src/lfsr.rs:
crates/hw/src/params.rs:
crates/hw/src/perf.rs:
crates/hw/src/pipeline.rs:
crates/hw/src/satq.rs:
