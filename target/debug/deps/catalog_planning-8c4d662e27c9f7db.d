/root/repo/target/debug/deps/catalog_planning-8c4d662e27c9f7db.d: tests/catalog_planning.rs

/root/repo/target/debug/deps/catalog_planning-8c4d662e27c9f7db: tests/catalog_planning.rs

tests/catalog_planning.rs:
