/root/repo/target/debug/deps/moped-bac262b98be65012.d: src/lib.rs

/root/repo/target/debug/deps/libmoped-bac262b98be65012.rlib: src/lib.rs

/root/repo/target/debug/deps/libmoped-bac262b98be65012.rmeta: src/lib.rs

src/lib.rs:
