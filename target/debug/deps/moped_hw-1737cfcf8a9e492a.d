/root/repo/target/debug/deps/moped_hw-1737cfcf8a9e492a.d: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

/root/repo/target/debug/deps/libmoped_hw-1737cfcf8a9e492a.rlib: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

/root/repo/target/debug/deps/libmoped_hw-1737cfcf8a9e492a.rmeta: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

crates/hw/src/lib.rs:
crates/hw/src/banks.rs:
crates/hw/src/cache.rs:
crates/hw/src/cachesim.rs:
crates/hw/src/design.rs:
crates/hw/src/energy.rs:
crates/hw/src/engine.rs:
crates/hw/src/fixed.rs:
crates/hw/src/lfsr.rs:
crates/hw/src/params.rs:
crates/hw/src/perf.rs:
crates/hw/src/pipeline.rs:
crates/hw/src/satq.rs:
