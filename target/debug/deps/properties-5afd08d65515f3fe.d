/root/repo/target/debug/deps/properties-5afd08d65515f3fe.d: crates/kdtree/tests/properties.rs

/root/repo/target/debug/deps/properties-5afd08d65515f3fe: crates/kdtree/tests/properties.rs

crates/kdtree/tests/properties.rs:
