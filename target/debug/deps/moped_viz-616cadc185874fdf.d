/root/repo/target/debug/deps/moped_viz-616cadc185874fdf.d: crates/viz/src/lib.rs

/root/repo/target/debug/deps/libmoped_viz-616cadc185874fdf.rlib: crates/viz/src/lib.rs

/root/repo/target/debug/deps/libmoped_viz-616cadc185874fdf.rmeta: crates/viz/src/lib.rs

crates/viz/src/lib.rs:
