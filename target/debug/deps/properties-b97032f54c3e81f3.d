/root/repo/target/debug/deps/properties-b97032f54c3e81f3.d: crates/geometry/tests/properties.rs

/root/repo/target/debug/deps/properties-b97032f54c3e81f3: crates/geometry/tests/properties.rs

crates/geometry/tests/properties.rs:
