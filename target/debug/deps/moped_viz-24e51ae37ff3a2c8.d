/root/repo/target/debug/deps/moped_viz-24e51ae37ff3a2c8.d: crates/viz/src/lib.rs

/root/repo/target/debug/deps/moped_viz-24e51ae37ff3a2c8: crates/viz/src/lib.rs

crates/viz/src/lib.rs:
