/root/repo/target/debug/deps/properties-9a8fe3facd70e93e.d: crates/rtree/tests/properties.rs

/root/repo/target/debug/deps/properties-9a8fe3facd70e93e: crates/rtree/tests/properties.rs

crates/rtree/tests/properties.rs:
