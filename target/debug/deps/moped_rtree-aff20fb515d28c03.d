/root/repo/target/debug/deps/moped_rtree-aff20fb515d28c03.d: crates/rtree/src/lib.rs

/root/repo/target/debug/deps/moped_rtree-aff20fb515d28c03: crates/rtree/src/lib.rs

crates/rtree/src/lib.rs:
