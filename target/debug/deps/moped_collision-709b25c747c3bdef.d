/root/repo/target/debug/deps/moped_collision-709b25c747c3bdef.d: crates/collision/src/lib.rs crates/collision/src/parallel.rs

/root/repo/target/debug/deps/moped_collision-709b25c747c3bdef: crates/collision/src/lib.rs crates/collision/src/parallel.rs

crates/collision/src/lib.rs:
crates/collision/src/parallel.rs:
