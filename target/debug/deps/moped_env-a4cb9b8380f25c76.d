/root/repo/target/debug/deps/moped_env-a4cb9b8380f25c76.d: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

/root/repo/target/debug/deps/libmoped_env-a4cb9b8380f25c76.rlib: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

/root/repo/target/debug/deps/libmoped_env-a4cb9b8380f25c76.rmeta: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

crates/env/src/lib.rs:
crates/env/src/catalog.rs:
crates/env/src/dynamic.rs:
