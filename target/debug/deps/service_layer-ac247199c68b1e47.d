/root/repo/target/debug/deps/service_layer-ac247199c68b1e47.d: tests/service_layer.rs

/root/repo/target/debug/deps/service_layer-ac247199c68b1e47: tests/service_layer.rs

tests/service_layer.rs:
