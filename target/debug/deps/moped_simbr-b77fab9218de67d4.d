/root/repo/target/debug/deps/moped_simbr-b77fab9218de67d4.d: crates/simbr/src/lib.rs

/root/repo/target/debug/deps/moped_simbr-b77fab9218de67d4: crates/simbr/src/lib.rs

crates/simbr/src/lib.rs:
