/root/repo/target/debug/deps/properties-36d02e02f87f7d08.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-36d02e02f87f7d08: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
