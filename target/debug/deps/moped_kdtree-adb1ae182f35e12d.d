/root/repo/target/debug/deps/moped_kdtree-adb1ae182f35e12d.d: crates/kdtree/src/lib.rs

/root/repo/target/debug/deps/moped_kdtree-adb1ae182f35e12d: crates/kdtree/src/lib.rs

crates/kdtree/src/lib.rs:
