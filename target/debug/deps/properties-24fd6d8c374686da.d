/root/repo/target/debug/deps/properties-24fd6d8c374686da.d: crates/octree/tests/properties.rs

/root/repo/target/debug/deps/properties-24fd6d8c374686da: crates/octree/tests/properties.rs

crates/octree/tests/properties.rs:
