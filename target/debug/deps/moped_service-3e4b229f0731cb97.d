/root/repo/target/debug/deps/moped_service-3e4b229f0731cb97.d: crates/service/src/lib.rs crates/service/src/metrics.rs

/root/repo/target/debug/deps/moped_service-3e4b229f0731cb97: crates/service/src/lib.rs crates/service/src/metrics.rs

crates/service/src/lib.rs:
crates/service/src/metrics.rs:
