/root/repo/target/debug/deps/properties-bd138e67bb07fdce.d: crates/simbr/tests/properties.rs

/root/repo/target/debug/deps/properties-bd138e67bb07fdce: crates/simbr/tests/properties.rs

crates/simbr/tests/properties.rs:
