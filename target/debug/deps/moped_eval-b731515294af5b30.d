/root/repo/target/debug/deps/moped_eval-b731515294af5b30.d: crates/eval/src/lib.rs crates/eval/src/clearance.rs

/root/repo/target/debug/deps/moped_eval-b731515294af5b30: crates/eval/src/lib.rs crates/eval/src/clearance.rs

crates/eval/src/lib.rs:
crates/eval/src/clearance.rs:
