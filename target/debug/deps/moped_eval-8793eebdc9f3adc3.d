/root/repo/target/debug/deps/moped_eval-8793eebdc9f3adc3.d: crates/eval/src/lib.rs crates/eval/src/clearance.rs

/root/repo/target/debug/deps/libmoped_eval-8793eebdc9f3adc3.rlib: crates/eval/src/lib.rs crates/eval/src/clearance.rs

/root/repo/target/debug/deps/libmoped_eval-8793eebdc9f3adc3.rmeta: crates/eval/src/lib.rs crates/eval/src/clearance.rs

crates/eval/src/lib.rs:
crates/eval/src/clearance.rs:
