/root/repo/target/debug/deps/moped_env-50e48f99ca6cf1b5.d: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

/root/repo/target/debug/deps/moped_env-50e48f99ca6cf1b5: crates/env/src/lib.rs crates/env/src/catalog.rs crates/env/src/dynamic.rs

crates/env/src/lib.rs:
crates/env/src/catalog.rs:
crates/env/src/dynamic.rs:
