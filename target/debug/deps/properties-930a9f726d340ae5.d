/root/repo/target/debug/deps/properties-930a9f726d340ae5.d: crates/collision/tests/properties.rs

/root/repo/target/debug/deps/properties-930a9f726d340ae5: crates/collision/tests/properties.rs

crates/collision/tests/properties.rs:
