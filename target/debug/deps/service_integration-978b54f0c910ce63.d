/root/repo/target/debug/deps/service_integration-978b54f0c910ce63.d: crates/service/tests/service_integration.rs

/root/repo/target/debug/deps/service_integration-978b54f0c910ce63: crates/service/tests/service_integration.rs

crates/service/tests/service_integration.rs:
