/root/repo/target/debug/deps/moped-55c14221c6941270.d: src/lib.rs

/root/repo/target/debug/deps/libmoped-55c14221c6941270.rlib: src/lib.rs

/root/repo/target/debug/deps/libmoped-55c14221c6941270.rmeta: src/lib.rs

src/lib.rs:
