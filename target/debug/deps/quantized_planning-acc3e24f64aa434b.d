/root/repo/target/debug/deps/quantized_planning-acc3e24f64aa434b.d: tests/quantized_planning.rs

/root/repo/target/debug/deps/quantized_planning-acc3e24f64aa434b: tests/quantized_planning.rs

tests/quantized_planning.rs:
