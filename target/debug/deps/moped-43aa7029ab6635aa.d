/root/repo/target/debug/deps/moped-43aa7029ab6635aa.d: src/lib.rs

/root/repo/target/debug/deps/moped-43aa7029ab6635aa: src/lib.rs

src/lib.rs:
