/root/repo/target/debug/deps/moped_geometry-de40113eb256feca.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/config.rs crates/geometry/src/gjk.rs crates/geometry/src/mat3.rs crates/geometry/src/obb.rs crates/geometry/src/ops.rs crates/geometry/src/rect.rs crates/geometry/src/sat.rs crates/geometry/src/segment.rs crates/geometry/src/vec3.rs

/root/repo/target/debug/deps/moped_geometry-de40113eb256feca: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/config.rs crates/geometry/src/gjk.rs crates/geometry/src/mat3.rs crates/geometry/src/obb.rs crates/geometry/src/ops.rs crates/geometry/src/rect.rs crates/geometry/src/sat.rs crates/geometry/src/segment.rs crates/geometry/src/vec3.rs

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/config.rs:
crates/geometry/src/gjk.rs:
crates/geometry/src/mat3.rs:
crates/geometry/src/obb.rs:
crates/geometry/src/ops.rs:
crates/geometry/src/rect.rs:
crates/geometry/src/sat.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/vec3.rs:
