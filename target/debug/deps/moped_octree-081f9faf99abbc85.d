/root/repo/target/debug/deps/moped_octree-081f9faf99abbc85.d: crates/octree/src/lib.rs

/root/repo/target/debug/deps/moped_octree-081f9faf99abbc85: crates/octree/src/lib.rs

crates/octree/src/lib.rs:
