/root/repo/target/debug/deps/moped_robot-c51793cb83def6c7.d: crates/robot/src/lib.rs

/root/repo/target/debug/deps/moped_robot-c51793cb83def6c7: crates/robot/src/lib.rs

crates/robot/src/lib.rs:
