/root/repo/target/debug/deps/properties-26ea0499b0e295dc.d: crates/hw/tests/properties.rs

/root/repo/target/debug/deps/properties-26ea0499b0e295dc: crates/hw/tests/properties.rs

crates/hw/tests/properties.rs:
