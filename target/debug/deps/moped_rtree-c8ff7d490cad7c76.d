/root/repo/target/debug/deps/moped_rtree-c8ff7d490cad7c76.d: crates/rtree/src/lib.rs

/root/repo/target/debug/deps/libmoped_rtree-c8ff7d490cad7c76.rlib: crates/rtree/src/lib.rs

/root/repo/target/debug/deps/libmoped_rtree-c8ff7d490cad7c76.rmeta: crates/rtree/src/lib.rs

crates/rtree/src/lib.rs:
