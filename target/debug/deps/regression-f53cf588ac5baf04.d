/root/repo/target/debug/deps/regression-f53cf588ac5baf04.d: tests/regression.rs

/root/repo/target/debug/deps/regression-f53cf588ac5baf04: tests/regression.rs

tests/regression.rs:
