/root/repo/target/debug/deps/figures-7e5337a4a6c4a24f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-7e5337a4a6c4a24f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
