/root/repo/target/debug/deps/moped_service-6afd91867a6f43f0.d: crates/service/src/lib.rs crates/service/src/metrics.rs

/root/repo/target/debug/deps/libmoped_service-6afd91867a6f43f0.rlib: crates/service/src/lib.rs crates/service/src/metrics.rs

/root/repo/target/debug/deps/libmoped_service-6afd91867a6f43f0.rmeta: crates/service/src/lib.rs crates/service/src/metrics.rs

crates/service/src/lib.rs:
crates/service/src/metrics.rs:
