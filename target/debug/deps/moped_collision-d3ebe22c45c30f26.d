/root/repo/target/debug/deps/moped_collision-d3ebe22c45c30f26.d: crates/collision/src/lib.rs crates/collision/src/parallel.rs

/root/repo/target/debug/deps/libmoped_collision-d3ebe22c45c30f26.rlib: crates/collision/src/lib.rs crates/collision/src/parallel.rs

/root/repo/target/debug/deps/libmoped_collision-d3ebe22c45c30f26.rmeta: crates/collision/src/lib.rs crates/collision/src/parallel.rs

crates/collision/src/lib.rs:
crates/collision/src/parallel.rs:
