/root/repo/target/debug/deps/moped_hw-53b8621c98d4eff6.d: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

/root/repo/target/debug/deps/moped_hw-53b8621c98d4eff6: crates/hw/src/lib.rs crates/hw/src/banks.rs crates/hw/src/cache.rs crates/hw/src/cachesim.rs crates/hw/src/design.rs crates/hw/src/energy.rs crates/hw/src/engine.rs crates/hw/src/fixed.rs crates/hw/src/lfsr.rs crates/hw/src/params.rs crates/hw/src/perf.rs crates/hw/src/pipeline.rs crates/hw/src/satq.rs

crates/hw/src/lib.rs:
crates/hw/src/banks.rs:
crates/hw/src/cache.rs:
crates/hw/src/cachesim.rs:
crates/hw/src/design.rs:
crates/hw/src/energy.rs:
crates/hw/src/engine.rs:
crates/hw/src/fixed.rs:
crates/hw/src/lfsr.rs:
crates/hw/src/params.rs:
crates/hw/src/perf.rs:
crates/hw/src/pipeline.rs:
crates/hw/src/satq.rs:
