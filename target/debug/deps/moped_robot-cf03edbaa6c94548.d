/root/repo/target/debug/deps/moped_robot-cf03edbaa6c94548.d: crates/robot/src/lib.rs

/root/repo/target/debug/deps/libmoped_robot-cf03edbaa6c94548.rlib: crates/robot/src/lib.rs

/root/repo/target/debug/deps/libmoped_robot-cf03edbaa6c94548.rmeta: crates/robot/src/lib.rs

crates/robot/src/lib.rs:
