/root/repo/target/debug/deps/moped_simbr-af7b7cf9358eb975.d: crates/simbr/src/lib.rs

/root/repo/target/debug/deps/libmoped_simbr-af7b7cf9358eb975.rlib: crates/simbr/src/lib.rs

/root/repo/target/debug/deps/libmoped_simbr-af7b7cf9358eb975.rmeta: crates/simbr/src/lib.rs

crates/simbr/src/lib.rs:
