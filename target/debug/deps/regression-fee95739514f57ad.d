/root/repo/target/debug/deps/regression-fee95739514f57ad.d: tests/regression.rs

/root/repo/target/debug/deps/regression-fee95739514f57ad: tests/regression.rs

tests/regression.rs:
