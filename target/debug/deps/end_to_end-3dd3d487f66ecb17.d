/root/repo/target/debug/deps/end_to_end-3dd3d487f66ecb17.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3dd3d487f66ecb17: tests/end_to_end.rs

tests/end_to_end.rs:
