/root/repo/target/debug/deps/moped_kdtree-0ded96e5290f3fe7.d: crates/kdtree/src/lib.rs

/root/repo/target/debug/deps/libmoped_kdtree-0ded96e5290f3fe7.rlib: crates/kdtree/src/lib.rs

/root/repo/target/debug/deps/libmoped_kdtree-0ded96e5290f3fe7.rmeta: crates/kdtree/src/lib.rs

crates/kdtree/src/lib.rs:
