/root/repo/target/debug/deps/moped_core-446199a4742e9d92.d: crates/core/src/lib.rs crates/core/src/extensions.rs crates/core/src/index.rs crates/core/src/planner.rs crates/core/src/replan.rs crates/core/src/smooth.rs crates/core/src/variant.rs

/root/repo/target/debug/deps/libmoped_core-446199a4742e9d92.rlib: crates/core/src/lib.rs crates/core/src/extensions.rs crates/core/src/index.rs crates/core/src/planner.rs crates/core/src/replan.rs crates/core/src/smooth.rs crates/core/src/variant.rs

/root/repo/target/debug/deps/libmoped_core-446199a4742e9d92.rmeta: crates/core/src/lib.rs crates/core/src/extensions.rs crates/core/src/index.rs crates/core/src/planner.rs crates/core/src/replan.rs crates/core/src/smooth.rs crates/core/src/variant.rs

crates/core/src/lib.rs:
crates/core/src/extensions.rs:
crates/core/src/index.rs:
crates/core/src/planner.rs:
crates/core/src/replan.rs:
crates/core/src/smooth.rs:
crates/core/src/variant.rs:
