/root/repo/target/debug/deps/catalog_planning-974b1ddd84f74a3b.d: tests/catalog_planning.rs

/root/repo/target/debug/deps/catalog_planning-974b1ddd84f74a3b: tests/catalog_planning.rs

tests/catalog_planning.rs:
