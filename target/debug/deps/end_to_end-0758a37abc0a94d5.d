/root/repo/target/debug/deps/end_to_end-0758a37abc0a94d5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0758a37abc0a94d5: tests/end_to_end.rs

tests/end_to_end.rs:
