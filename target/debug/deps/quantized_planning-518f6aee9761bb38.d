/root/repo/target/debug/deps/quantized_planning-518f6aee9761bb38.d: tests/quantized_planning.rs

/root/repo/target/debug/deps/quantized_planning-518f6aee9761bb38: tests/quantized_planning.rs

tests/quantized_planning.rs:
