/root/repo/target/debug/deps/moped-7f9d6039d11602ed.d: src/lib.rs

/root/repo/target/debug/deps/moped-7f9d6039d11602ed: src/lib.rs

src/lib.rs:
