/root/repo/target/debug/deps/moped_octree-675c4214ea41a19b.d: crates/octree/src/lib.rs

/root/repo/target/debug/deps/libmoped_octree-675c4214ea41a19b.rlib: crates/octree/src/lib.rs

/root/repo/target/debug/deps/libmoped_octree-675c4214ea41a19b.rmeta: crates/octree/src/lib.rs

crates/octree/src/lib.rs:
