/root/repo/target/debug/examples/quickstart-2238ec888a710a29.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2238ec888a710a29: examples/quickstart.rs

examples/quickstart.rs:
