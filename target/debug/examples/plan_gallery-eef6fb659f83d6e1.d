/root/repo/target/debug/examples/plan_gallery-eef6fb659f83d6e1.d: examples/plan_gallery.rs

/root/repo/target/debug/examples/plan_gallery-eef6fb659f83d6e1: examples/plan_gallery.rs

examples/plan_gallery.rs:
