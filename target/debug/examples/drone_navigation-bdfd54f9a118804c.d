/root/repo/target/debug/examples/drone_navigation-bdfd54f9a118804c.d: examples/drone_navigation.rs

/root/repo/target/debug/examples/drone_navigation-bdfd54f9a118804c: examples/drone_navigation.rs

examples/drone_navigation.rs:
