/root/repo/target/debug/examples/drone_navigation-9c49686dc53818e6.d: examples/drone_navigation.rs

/root/repo/target/debug/examples/drone_navigation-9c49686dc53818e6: examples/drone_navigation.rs

examples/drone_navigation.rs:
