/root/repo/target/debug/examples/plan_gallery-eb536aec30c3f49b.d: examples/plan_gallery.rs

/root/repo/target/debug/examples/plan_gallery-eb536aec30c3f49b: examples/plan_gallery.rs

examples/plan_gallery.rs:
