/root/repo/target/debug/examples/hw_simulation-f968c15e11bf2cf8.d: examples/hw_simulation.rs

/root/repo/target/debug/examples/hw_simulation-f968c15e11bf2cf8: examples/hw_simulation.rs

examples/hw_simulation.rs:
