/root/repo/target/debug/examples/service_batch-360e5092c6e81670.d: examples/service_batch.rs

/root/repo/target/debug/examples/service_batch-360e5092c6e81670: examples/service_batch.rs

examples/service_batch.rs:
