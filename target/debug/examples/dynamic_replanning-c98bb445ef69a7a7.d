/root/repo/target/debug/examples/dynamic_replanning-c98bb445ef69a7a7.d: examples/dynamic_replanning.rs

/root/repo/target/debug/examples/dynamic_replanning-c98bb445ef69a7a7: examples/dynamic_replanning.rs

examples/dynamic_replanning.rs:
