/root/repo/target/debug/examples/arm_manipulation-fb3751651fc24252.d: examples/arm_manipulation.rs

/root/repo/target/debug/examples/arm_manipulation-fb3751651fc24252: examples/arm_manipulation.rs

examples/arm_manipulation.rs:
