/root/repo/target/debug/examples/dynamic_replanning-fb1bddf3722c8283.d: examples/dynamic_replanning.rs

/root/repo/target/debug/examples/dynamic_replanning-fb1bddf3722c8283: examples/dynamic_replanning.rs

examples/dynamic_replanning.rs:
