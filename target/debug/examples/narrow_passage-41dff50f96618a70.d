/root/repo/target/debug/examples/narrow_passage-41dff50f96618a70.d: examples/narrow_passage.rs

/root/repo/target/debug/examples/narrow_passage-41dff50f96618a70: examples/narrow_passage.rs

examples/narrow_passage.rs:
