/root/repo/target/debug/examples/arm_manipulation-69d4e28b56ea3000.d: examples/arm_manipulation.rs

/root/repo/target/debug/examples/arm_manipulation-69d4e28b56ea3000: examples/arm_manipulation.rs

examples/arm_manipulation.rs:
