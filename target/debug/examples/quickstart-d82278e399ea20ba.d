/root/repo/target/debug/examples/quickstart-d82278e399ea20ba.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d82278e399ea20ba: examples/quickstart.rs

examples/quickstart.rs:
