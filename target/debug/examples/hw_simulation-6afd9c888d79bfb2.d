/root/repo/target/debug/examples/hw_simulation-6afd9c888d79bfb2.d: examples/hw_simulation.rs

/root/repo/target/debug/examples/hw_simulation-6afd9c888d79bfb2: examples/hw_simulation.rs

examples/hw_simulation.rs:
