/root/repo/target/debug/examples/narrow_passage-98e35483c72cdc92.d: examples/narrow_passage.rs

/root/repo/target/debug/examples/narrow_passage-98e35483c72cdc92: examples/narrow_passage.rs

examples/narrow_passage.rs:
