//! Seeded procedural scenario corpus for the MOPED evaluation.
//!
//! The paper's §V methodology (random OBB fields, one narrow-passage
//! stress scene) measures average behaviour on essentially one workload
//! shape. This crate widens the evaluation axis with five *families* of
//! procedurally generated scenes — parametric narrow passages with tilt,
//! perfect mazes, dense clutter fields, walled shelf/cage rooms, and
//! moving-obstacle snapshots frozen at epoch times — each fully
//! deterministic in `(family, robot model, seed)` and emitted as ordinary
//! [`moped_env::Scenario`] values, so every robot model (mobile base,
//! drone, arms) runs on every family through the unchanged planner stack.
//!
//! The [`corpus`] function enumerates the regression matrix the bench
//! harness runs (engine × family × robot over seeded scenarios);
//! [`smoke_corpus`] is the ≤ 6-entry subset wired into CI.
//!
//! # Example
//!
//! ```
//! use moped_scenarios::{CorpusEntry, Family};
//! use moped_robot::RobotModel;
//!
//! let entry = CorpusEntry::new(Family::Maze, RobotModel::Mobile2d, 1);
//! let scenario = entry.build();
//! assert!(!scenario.config_collides(&scenario.start));
//! assert!(!scenario.config_collides(&scenario.goal));
//! ```

#![deny(missing_docs)]

use std::f64::consts::PI;

use moped_env::dynamic::DynamicScenario;
use moped_env::{Scenario, ScenarioParams};
use moped_geometry::{Aabb, Config, Obb, Vec3};
use moped_robot::{Robot, RobotModel, WORKSPACE_EXTENT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG stream tag for endpoint re-sampling (kept distinct from obstacle
/// streams so adding obstacles never perturbs endpoints).
const ENDPOINT_STREAM: u64 = 0xE17D_0011;

/// A procedural scene family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Two long tilted walls with a seed-parametric slot (gap and tilt
    /// drawn from the seed) — the Fig 5 harness generalized into a
    /// family. The tilt makes the AABB relaxation seal the slot while the
    /// exact OBBs leave it open.
    NarrowPassage,
    /// A perfect maze (DFS spanning tree over a square cell grid); the
    /// wall layout is the seed's random spanning tree, so every seed is a
    /// different topology with exactly one corridor between any two
    /// cells.
    Maze,
    /// A dense field of many small boxes — tests steering through
    /// unstructured clutter rather than around a few large blocks.
    Clutter,
    /// A four-walled full-height room with a seed-placed door gap; the
    /// goal sits inside, the start outside, so every plan must thread the
    /// door.
    Shelf,
    /// A clutter field animated by `moped_env::dynamic` and frozen at a
    /// seed-selected epoch time — the static snapshot a replanning loop
    /// would hand the planner mid-execution.
    Dynamic,
}

impl Family {
    /// Every family, in report order.
    pub const ALL: [Family; 5] = [
        Family::NarrowPassage,
        Family::Maze,
        Family::Clutter,
        Family::Shelf,
        Family::Dynamic,
    ];

    /// Stable identifier used in corpus ids and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Family::NarrowPassage => "narrow-passage",
            Family::Maze => "maze",
            Family::Clutter => "clutter",
            Family::Shelf => "shelf",
            Family::Dynamic => "dynamic",
        }
    }

    /// Resolves a family from its [`name`](Family::name).
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// One corpus cell: a family instantiated for a robot model at a seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CorpusEntry {
    /// The scene family.
    pub family: Family,
    /// The robot model planned for.
    pub robot: RobotModel,
    /// Generation seed (also recorded in the emitted `Scenario`).
    pub seed: u64,
}

impl CorpusEntry {
    /// Creates an entry.
    pub fn new(family: Family, robot: RobotModel, seed: u64) -> CorpusEntry {
        CorpusEntry {
            family,
            robot,
            seed,
        }
    }

    /// Stable identifier: `family/robot/s<seed>`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/s{}",
            self.family.name(),
            robot_slug(self.robot),
            self.seed
        )
    }

    /// Generates the scenario. Deterministic: the same entry always
    /// produces the bit-identical scene (see the determinism tests).
    pub fn build(&self) -> Scenario {
        let robot = Robot::from_model(self.robot);
        match self.family {
            Family::NarrowPassage => narrow_passage(robot, self.seed),
            Family::Maze => maze(robot, self.seed),
            Family::Clutter => clutter(robot, self.seed),
            Family::Shelf => shelf(robot, self.seed),
            Family::Dynamic => dynamic_snapshot(robot, self.seed),
        }
    }
}

/// The robot models the regression matrix sweeps: one planar base, one
/// free-flying 6-DoF drone, one 7-DoF arm.
pub const CORPUS_ROBOTS: [RobotModel; 3] =
    [RobotModel::Mobile2d, RobotModel::Drone3d, RobotModel::XArm7];

/// Seeds per (family, robot) cell in the full corpus.
pub const CORPUS_SEEDS: [u64; 2] = [1, 2];

/// The full regression corpus: every family × [`CORPUS_ROBOTS`] ×
/// [`CORPUS_SEEDS`] — 30 seeded scenarios across 5 families and 3 robots.
pub fn corpus() -> Vec<CorpusEntry> {
    let mut out = Vec::new();
    for family in Family::ALL {
        for robot in CORPUS_ROBOTS {
            for seed in CORPUS_SEEDS {
                out.push(CorpusEntry::new(family, robot, seed));
            }
        }
    }
    out
}

/// The CI smoke subset: one entry per family (mobile except one drone
/// cell), ≤ 6 scenarios, cheap enough for `scripts/verify.sh`.
pub fn smoke_corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry::new(Family::NarrowPassage, RobotModel::Drone3d, 1),
        CorpusEntry::new(Family::Maze, RobotModel::Mobile2d, 1),
        CorpusEntry::new(Family::Clutter, RobotModel::Mobile2d, 1),
        CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1),
        CorpusEntry::new(Family::Dynamic, RobotModel::Mobile2d, 1),
    ]
}

/// Successive epoch snapshots of one animated clutter scene — the input
/// a serving layer feeds its epoch-versioned environment swap. Epoch `e`
/// is the field frozen at `t = e * epoch_dt`; epoch 0 equals the static
/// base scene.
pub fn dynamic_epochs(model: RobotModel, seed: u64, epochs: usize, epoch_dt: f64) -> Vec<Scenario> {
    let robot = Robot::from_model(model);
    let base = clutter(robot, seed);
    let animated = DynamicScenario::animate(base.clone(), 12.0, PI / 4.0, seed);
    let arm = is_arm(&base.robot);
    (0..epochs)
        .map(|e| {
            let mut snap = animated.snapshot(e as f64 * epoch_dt, base.start);
            if arm {
                // Moving boxes may drift over the manipulator base; a
                // scene where an obstacle impales the robot mount is
                // unsolvable by construction, so drop those.
                snap.obstacles = filter_arm_keep_out(snap.obstacles);
            }
            revalidate_endpoints(&mut snap, seed.wrapping_add(e as u64));
            snap
        })
        .collect()
}

// --- Family generators -------------------------------------------------

/// Seed-parametric narrow passage: gap ∈ [18, 40], tilt ∈ [0, 0.9].
fn narrow_passage(robot: Robot, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4A22_0001);
    let gap = rng.gen_range(18.0..=40.0);
    let tilt = rng.gen_range(0.0..=0.9);
    let mut s = Scenario::narrow_passage(robot, gap, tilt);
    s.seed = seed;
    if is_arm(&s.robot) {
        // The canned joint sweeps are hand-verified only for the default
        // harness; seeded scenes re-sample guaranteed-free endpoints.
        resample_endpoints(&mut s, seed);
    }
    s
}

/// Perfect maze over a `G × G` cell grid (DFS random spanning tree):
/// interior boundaries without a passage become full-height walls.
fn maze(robot: Robot, seed: u64) -> Scenario {
    const G: usize = 4;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3A2E_0002);
    let planar = robot.workspace_is_2d();
    let arm = is_arm(&robot);
    // Arms get the maze scaled into their reachable shell (the catalog
    // pattern); free-flying robots thread the full workspace.
    let scale = if arm { 0.35 } else { 1.0 };
    let span = WORKSPACE_EXTENT * scale;
    let origin = (WORKSPACE_EXTENT - span) / 2.0;
    let cell = span / G as f64;
    let wall_half = 4.0 * scale;

    // Random spanning tree: `open_r[i][j]` opens (i,j)→(i+1,j) (east),
    // `open_d[i][j]` opens (i,j)→(i,j+1) (north).
    let mut open_r = [[false; G]; G];
    let mut open_d = [[false; G]; G];
    let mut visited = [[false; G]; G];
    let mut stack = vec![(0usize, 0usize)];
    visited[0][0] = true;
    while let Some(&(x, y)) = stack.last() {
        let mut options: Vec<(usize, usize)> = Vec::new();
        if x + 1 < G && !visited[x + 1][y] {
            options.push((x + 1, y));
        }
        if x > 0 && !visited[x - 1][y] {
            options.push((x - 1, y));
        }
        if y + 1 < G && !visited[x][y + 1] {
            options.push((x, y + 1));
        }
        if y > 0 && !visited[x][y - 1] {
            options.push((x, y - 1));
        }
        if options.is_empty() {
            stack.pop();
            continue;
        }
        let (nx, ny) = options[rng.gen_range(0..options.len())];
        if nx > x {
            open_r[x][y] = true;
        } else if nx < x {
            open_r[nx][y] = true;
        } else if ny > y {
            open_d[x][y] = true;
        } else {
            open_d[x][ny] = true;
        }
        visited[nx][ny] = true;
        stack.push((nx, ny));
    }

    // Closed interior boundaries become walls covering the boundary.
    let z_center = if arm { 55.0 } else { WORKSPACE_EXTENT / 2.0 };
    let z_half = if arm { 60.0 } else { WORKSPACE_EXTENT / 2.0 };
    let mut obstacles = Vec::new();
    let mut wall = |cx: f64, cy: f64, hx: f64, hy: f64| {
        if planar {
            obstacles.push(Obb::planar(Vec3::new(cx, cy, 0.0), hx, hy, 0.0));
        } else {
            obstacles.push(Obb::from_euler(
                Vec3::new(cx, cy, z_center),
                Vec3::new(hx, hy, z_half),
                0.0,
                0.0,
                0.0,
            ));
        }
    };
    for (x, col) in open_r.iter().enumerate().take(G - 1) {
        for (y, &open) in col.iter().enumerate() {
            if !open {
                let cx = origin + (x + 1) as f64 * cell;
                let cy = origin + (y as f64 + 0.5) * cell;
                wall(cx, cy, wall_half, cell / 2.0);
            }
        }
    }
    for (x, col) in open_d.iter().enumerate() {
        for (y, &open) in col.iter().enumerate().take(G - 1) {
            if !open {
                let cx = origin + (x as f64 + 0.5) * cell;
                let cy = origin + (y + 1) as f64 * cell;
                wall(cx, cy, cell / 2.0, wall_half);
            }
        }
    }

    let mut s = Scenario {
        start: Config::zeros(robot.dof()),
        goal: Config::zeros(robot.dof()),
        robot,
        obstacles: if arm {
            filter_arm_keep_out(obstacles)
        } else {
            obstacles
        },
        seed,
    };
    // Opposite corner cells; the spanning tree guarantees a corridor.
    let s_xy = (origin + cell / 2.0, origin + cell / 2.0);
    let g_xy = (origin + span - cell / 2.0, origin + span - cell / 2.0);
    set_endpoints(&mut s, s_xy, g_xy, seed);
    s
}

/// Dense clutter: 24–48 small seeded boxes (count drawn from the seed),
/// endpoints rejection-sampled by the `moped_env` generator.
fn clutter(robot: Robot, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A7_0003);
    let params = ScenarioParams {
        obstacle_count: rng.gen_range(24..=48),
        max_half_xy: 8.0,
        max_half_z: 10.0,
        min_half: 2.0,
        ..ScenarioParams::default()
    };
    let mut s = Scenario::generate(robot, &params, seed ^ 0xC1A7_0004);
    s.seed = seed;
    s
}

/// Shelf/cage room: four full-height walls around the workspace center
/// with one seed-placed door gap; goal inside, start outside.
fn shelf(robot: Robot, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1F_0005);
    let planar = robot.workspace_is_2d();
    let arm = is_arm(&robot);
    let scale = if arm { 0.35 } else { 1.0 };
    let mid = WORKSPACE_EXTENT / 2.0;
    let r = 60.0 * scale; // room half-size
    let t = 4.0 * scale; // wall half-thickness
    let door = rng.gen_range(28.0..=44.0) * scale;
    let door_side = rng.gen_range(0..4u8); // 0=E 1=N 2=W 3=S
    let door_slack: f64 = r - door / 2.0 - t;
    let door_at = rng.gen_range(-door_slack..=door_slack);
    let z_center = if arm { 55.0 } else { mid };
    let z_half = if arm { 60.0 } else { mid };

    let mut obstacles = Vec::new();
    let mut wall = |cx: f64, cy: f64, hx: f64, hy: f64| {
        if hx <= 0.0 || hy <= 0.0 {
            return;
        }
        if planar {
            obstacles.push(Obb::planar(Vec3::new(cx, cy, 0.0), hx, hy, 0.0));
        } else {
            obstacles.push(Obb::from_euler(
                Vec3::new(cx, cy, z_center),
                Vec3::new(hx, hy, z_half),
                0.0,
                0.0,
                0.0,
            ));
        }
    };
    // For each side: either a solid wall or two segments leaving the door.
    for side in 0..4u8 {
        let vertical = side == 0 || side == 2; // wall runs along Y
        let sign = if side == 0 || side == 1 { 1.0 } else { -1.0 };
        let (wx, wy) = if vertical {
            (mid + sign * r, mid)
        } else {
            (mid, mid + sign * r)
        };
        if side != door_side {
            if vertical {
                wall(wx, wy, t, r + t);
            } else {
                wall(wx, wy, r + t, t);
            }
            continue;
        }
        // Split around the door: segments on either side of `door_at`.
        let lo_half = (door_at - door / 2.0 + r) / 2.0;
        let hi_half = (r - door_at - door / 2.0) / 2.0;
        let lo_center = -r + lo_half;
        let hi_center = r - hi_half;
        if vertical {
            wall(wx, wy + lo_center, t, lo_half);
            wall(wx, wy + hi_center, t, hi_half);
        } else {
            wall(wx + lo_center, wy, lo_half, t);
            wall(wx + hi_center, wy, hi_half, t);
        }
    }

    let mut s = Scenario {
        start: Config::zeros(robot.dof()),
        goal: Config::zeros(robot.dof()),
        robot,
        obstacles: if arm {
            filter_arm_keep_out(obstacles)
        } else {
            obstacles
        },
        seed,
    };
    // Start well outside the room on the door-opposite side; goal inside.
    let outside = r / scale + 80.0;
    let s_xy = match door_side {
        0 => (mid - outside, mid),
        1 => (mid, mid - outside),
        2 => (mid + outside, mid),
        _ => (mid, mid + outside),
    };
    set_endpoints(&mut s, s_xy, (mid, mid), seed);
    s
}

/// Moving-obstacle snapshot: a clutter field animated by
/// `moped_env::dynamic`, frozen at a seed-selected epoch time, endpoints
/// re-validated against the moved field.
fn dynamic_snapshot(robot: Robot, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD77A_0006);
    let epoch = rng.gen_range(1..=4u32);
    let model = robot.model();
    let mut snaps = dynamic_epochs(model, seed, epoch as usize + 1, 2.5);
    let mut s = snaps
        .pop()
        .unwrap_or_else(|| clutter(Robot::from_model(model), seed));
    s.seed = seed;
    s
}

// --- Scene signatures ---------------------------------------------------

/// The raw environment signature of a scenario: the inputs the autotuner
/// buckets into a request class. Pure function of the scene — no wall
/// clock, no RNG — so the same scenario always signs identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SceneSig {
    /// Number of obstacles in the scene.
    pub obstacles: usize,
    /// Occupied volume in integer permille of the workspace cube
    /// (`WORKSPACE_EXTENT`³), saturating at 1000. Planar walls contribute
    /// their true thin volume; the permille is a clutter measure, not a
    /// physical occupancy claim.
    pub density_permille: u32,
    /// Robot configuration-space dimension.
    pub dof: usize,
}

/// Computes the [`SceneSig`] of a scenario.
pub fn scene_sig(s: &Scenario) -> SceneSig {
    let workspace = WORKSPACE_EXTENT * WORKSPACE_EXTENT * WORKSPACE_EXTENT;
    let occupied: f64 = s.obstacles.iter().map(|o| o.volume()).sum();
    let permille = ((occupied / workspace) * 1000.0).round();
    SceneSig {
        obstacles: s.obstacles.len(),
        density_permille: if permille < 0.0 {
            0
        } else if permille > 1000.0 {
            1000
        } else {
            permille as u32
        },
        dof: s.robot.dof(),
    }
}

// --- Shared helpers ----------------------------------------------------

/// Filesystem/JSON-safe robot identifier (the display names in
/// `moped_robot` carry spaces and capitals).
pub fn robot_slug(model: RobotModel) -> &'static str {
    match model {
        RobotModel::Mobile2d => "mobile_2d",
        RobotModel::Drone3d => "drone_3d",
        RobotModel::ViperX300 => "viperx_300",
        RobotModel::Rozum => "rozum",
        RobotModel::XArm7 => "xarm7",
    }
}

fn is_arm(robot: &Robot) -> bool {
    !matches!(robot.model(), RobotModel::Mobile2d | RobotModel::Drone3d)
}

/// Drops obstacles whose AABB reaches into the arm base keep-out ball
/// (the same guarantee the random generator and catalog provide).
fn filter_arm_keep_out(obstacles: Vec<Obb>) -> Vec<Obb> {
    let mid = WORKSPACE_EXTENT / 2.0;
    let base = Vec3::new(mid, mid, 0.0);
    let keep_out = 12.0;
    obstacles
        .into_iter()
        .filter(|o| {
            let aabb = Aabb::from_obb(o);
            let nearest = base.max(aabb.min()).min(aabb.max());
            (nearest - base).norm() >= keep_out
        })
        .collect()
}

/// Installs workspace endpoints for the free-flying robots or seeded
/// free joint configurations for arms.
fn set_endpoints(s: &mut Scenario, start_xy: (f64, f64), goal_xy: (f64, f64), seed: u64) {
    let mid = WORKSPACE_EXTENT / 2.0;
    match s.robot.model() {
        RobotModel::Mobile2d => {
            s.start = Config::new(&[start_xy.0, start_xy.1, 0.0]);
            s.goal = Config::new(&[goal_xy.0, goal_xy.1, 0.0]);
        }
        RobotModel::Drone3d => {
            s.start = Config::new(&[start_xy.0, start_xy.1, mid, 0.0, 0.0, 0.0]);
            s.goal = Config::new(&[goal_xy.0, goal_xy.1, mid, 0.0, 0.0, 0.0]);
        }
        _ => resample_endpoints(s, seed),
    }
    debug_assert!(!s.config_collides(&s.start), "start collides (seed {seed})");
    debug_assert!(!s.config_collides(&s.goal), "goal collides (seed {seed})");
}

/// Seeded rejection sampling of free start/goal configurations.
fn resample_endpoints(s: &mut Scenario, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ ENDPOINT_STREAM);
    s.start = s.sample_free(&mut rng);
    s.goal = s.sample_free(&mut rng);
}

/// Re-samples only the endpoints that collide (used by epoch snapshots,
/// where the field moved out from under validated endpoints).
fn revalidate_endpoints(s: &mut Scenario, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ ENDPOINT_STREAM ^ 0xEE0C);
    if s.config_collides(&s.start) {
        s.start = s.sample_free(&mut rng);
    }
    if s.config_collides(&s.goal) {
        s.goal = s.sample_free(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(s: &Scenario) -> Vec<u64> {
        let mut bits: Vec<u64> = Vec::new();
        let mut push_config = |q: &Config| bits.extend(q.as_slice().iter().map(|v| v.to_bits()));
        push_config(&s.start.clone());
        push_config(&s.goal.clone());
        for o in &s.obstacles {
            for v in [o.center(), o.half_extents()] {
                bits.extend([v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]);
            }
            for row in o.rotation().m {
                bits.extend(row.iter().map(|v| v.to_bits()));
            }
        }
        bits
    }

    #[test]
    fn corpus_meets_regression_matrix_floor() {
        let c = corpus();
        assert!(c.len() >= 24, "corpus must hold ≥24 scenarios: {}", c.len());
        let families: Vec<&str> = {
            let mut f: Vec<&str> = c.iter().map(|e| e.family.name()).collect();
            f.sort_unstable();
            f.dedup();
            f
        };
        assert!(families.len() >= 4, "≥4 families required: {families:?}");
        let robots: Vec<RobotModel> = {
            let mut r: Vec<RobotModel> = c.iter().map(|e| e.robot).collect();
            r.sort_unstable_by_key(|m| format!("{m:?}"));
            r.dedup();
            r
        };
        assert!(robots.len() >= 3, "≥3 robots required: {robots:?}");
    }

    #[test]
    fn smoke_corpus_is_small_and_covers_every_family() {
        let smoke = smoke_corpus();
        assert!(smoke.len() <= 6, "smoke subset must stay ≤6 scenarios");
        for family in Family::ALL {
            assert!(
                smoke.iter().any(|e| e.family == family),
                "{} missing from smoke subset",
                family.name()
            );
        }
    }

    #[test]
    fn same_seed_builds_bit_identical_scenarios() {
        for entry in corpus() {
            let a = entry.build();
            let b = entry.build();
            assert_eq!(
                bits_of(&a),
                bits_of(&b),
                "{} not bit-deterministic",
                entry.id()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        for family in Family::ALL {
            let a = CorpusEntry::new(family, RobotModel::Mobile2d, 1).build();
            let b = CorpusEntry::new(family, RobotModel::Mobile2d, 2).build();
            assert_ne!(
                bits_of(&a),
                bits_of(&b),
                "{}: seeds 1 and 2 built the same scene",
                family.name()
            );
        }
    }

    #[test]
    fn endpoints_are_collision_free_across_the_corpus() {
        for entry in corpus() {
            let s = entry.build();
            assert!(
                !s.config_collides(&s.start),
                "{}: start collides",
                entry.id()
            );
            assert!(!s.config_collides(&s.goal), "{}: goal collides", entry.id());
        }
    }

    #[test]
    fn planar_robots_get_planar_obstacles() {
        for family in Family::ALL {
            let s = CorpusEntry::new(family, RobotModel::Mobile2d, 1).build();
            assert!(
                s.obstacles.iter().all(Obb::is_planar),
                "{}: non-planar obstacle in planar scene",
                family.name()
            );
        }
    }

    #[test]
    fn maze_blocks_the_straight_line() {
        // A perfect maze on a 4×4 grid leaves exactly one corridor; the
        // corner-to-corner diagonal must cross a wall for most seeds.
        let blocked_seeds = (1..=6u64)
            .filter(|&seed| {
                let s = CorpusEntry::new(Family::Maze, RobotModel::Mobile2d, seed).build();
                (1..30).any(|i| s.config_collides(&s.start.lerp(&s.goal, i as f64 / 30.0)))
            })
            .count();
        assert!(
            blocked_seeds >= 5,
            "mazes should almost always block the diagonal: {blocked_seeds}/6"
        );
    }

    #[test]
    fn shelf_goal_is_enclosed_except_for_the_door() {
        // Walking a ring around the goal at the wall radius must collide
        // on most directions (walls) but not all (the door).
        let s = CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1).build();
        let mid = WORKSPACE_EXTENT / 2.0;
        let hits = (0..36)
            .filter(|&k| {
                let a = k as f64 / 36.0 * std::f64::consts::TAU;
                let q = Config::new(&[mid + 60.0 * a.cos(), mid + 60.0 * a.sin(), 0.0]);
                s.config_collides(&q)
            })
            .count();
        assert!(hits > 18, "most ring poses must hit the walls: {hits}/36");
        assert!(hits < 36, "the door must leave an opening: {hits}/36");
    }

    #[test]
    fn dynamic_epoch_zero_matches_static_base() {
        let snaps = dynamic_epochs(RobotModel::Mobile2d, 3, 3, 2.5);
        assert_eq!(snaps.len(), 3);
        let base = CorpusEntry::new(Family::Clutter, RobotModel::Mobile2d, 3).build();
        // Epoch 0 is frozen at t=0: obstacle centers coincide with the
        // static clutter scene built from the same seed.
        for (a, b) in snaps[0].obstacles.iter().zip(&base.obstacles) {
            assert!((a.center() - b.center()).norm() < 1e-9);
        }
        // Later epochs moved.
        let moved = snaps[0]
            .obstacles
            .iter()
            .zip(&snaps[2].obstacles)
            .filter(|(a, b)| (a.center() - b.center()).norm() > 1.0)
            .count();
        assert!(moved > snaps[0].obstacles.len() / 2);
    }

    #[test]
    fn dynamic_epochs_have_free_endpoints() {
        for seed in [1u64, 2, 3] {
            for s in dynamic_epochs(RobotModel::Drone3d, seed, 4, 2.5) {
                assert!(!s.config_collides(&s.start), "seed {seed}: start");
                assert!(!s.config_collides(&s.goal), "seed {seed}: goal");
            }
        }
    }

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::from_name(family.name()), Some(family));
        }
        assert_eq!(Family::from_name("no-such-family"), None);
        let entry = CorpusEntry::new(Family::Shelf, RobotModel::XArm7, 7);
        assert_eq!(entry.id(), "shelf/xarm7/s7");
    }

    /// Exact point-to-OBB distance (the AABB bound is uselessly loose
    /// for the long tilted narrow-passage walls).
    fn point_obb_distance(p: Vec3, o: &Obb) -> f64 {
        let d = p - o.center();
        let h = o.half_extents();
        let local = Vec3::new(d.dot(o.axis(0)), d.dot(o.axis(1)), d.dot(o.axis(2)));
        let clamped = local.max(-h).min(h);
        (clamped - local).norm()
    }

    #[test]
    fn scene_sig_is_deterministic_and_discriminates_families() {
        for entry in corpus() {
            let a = scene_sig(&entry.build());
            let b = scene_sig(&entry.build());
            assert_eq!(a, b, "{}: signature must be pure", entry.id());
            assert_eq!(a.obstacles, entry.build().obstacles.len());
            assert!(a.density_permille <= 1000);
            assert!(a.dof >= 3);
        }
        // Clutter fields carry far more obstacles than a narrow passage.
        let clutter =
            scene_sig(&CorpusEntry::new(Family::Clutter, RobotModel::Mobile2d, 1).build());
        let narrow =
            scene_sig(&CorpusEntry::new(Family::NarrowPassage, RobotModel::Mobile2d, 1).build());
        assert!(clutter.obstacles > narrow.obstacles);
    }

    #[test]
    fn arm_scenes_respect_base_keep_out() {
        let mid = WORKSPACE_EXTENT / 2.0;
        let base = Vec3::new(mid, mid, 0.0);
        for family in Family::ALL {
            for seed in CORPUS_SEEDS {
                let s = CorpusEntry::new(family, RobotModel::XArm7, seed).build();
                for o in &s.obstacles {
                    assert!(
                        point_obb_distance(base, o) >= 8.9,
                        "{}/s{}: obstacle impales the arm base",
                        family.name(),
                        seed
                    );
                }
            }
        }
    }
}
