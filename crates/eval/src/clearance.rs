//! Path-clearance metrics.
//!
//! Path *cost* is the paper's headline quality metric; practitioners also
//! care how much margin a path keeps from obstacles (a path that grazes
//! every corner is cheap but fragile under tracking error). With the GJK
//! distance kernel available, clearance is directly measurable: the
//! minimum obstacle distance over every checked pose of every body box.

use moped_env::Scenario;
use moped_geometry::{gjk, interpolate, Config, InterpolationSteps, OpCount};

/// Clearance profile of a path through a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ClearanceProfile {
    /// Minimum clearance over the whole path (0 on contact).
    pub min: f64,
    /// Mean of the per-pose minimum clearances.
    pub mean: f64,
    /// Per-pose minimum clearances in path order.
    pub per_pose: Vec<f64>,
}

/// Measures the clearance of `path` against the scenario's obstacles at
/// the given interpolation resolution.
///
/// Returns `None` for paths with fewer than two waypoints.
pub fn measure(
    scenario: &Scenario,
    path: &[Config],
    steps: &InterpolationSteps,
) -> Option<ClearanceProfile> {
    if path.len() < 2 {
        return None;
    }
    let mut ops = OpCount::default();
    let mut per_pose = Vec::new();
    for w in path.windows(2) {
        for pose in interpolate(&w[0], &w[1], steps) {
            let mut pose_min = f64::INFINITY;
            for body in scenario.robot.body_obbs(&pose) {
                for obs in &scenario.obstacles {
                    let d = gjk::distance(obs, &body, &mut ops).distance;
                    pose_min = pose_min.min(d);
                }
            }
            if pose_min.is_finite() {
                per_pose.push(pose_min);
            }
        }
    }
    if per_pose.is_empty() {
        // No obstacles: clearance is unbounded; report infinity once.
        return Some(ClearanceProfile {
            min: f64::INFINITY,
            mean: f64::INFINITY,
            per_pose,
        });
    }
    let min = per_pose.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = per_pose.iter().sum::<f64>() / per_pose.len() as f64;
    Some(ClearanceProfile {
        min,
        mean,
        per_pose,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_core::{plan_variant, PlannerParams, Variant};
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    #[test]
    fn planned_paths_have_positive_clearance() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 33);
        let params = PlannerParams {
            max_samples: 800,
            seed: 2,
            ..PlannerParams::default()
        };
        let r = plan_variant(&s, Variant::V4Lci, &params);
        if let Some(path) = &r.path {
            let steps = InterpolationSteps::with_resolution(2.0);
            let profile = measure(&s, path, &steps).expect("non-trivial path");
            assert!(
                profile.min >= 0.0,
                "collision-free paths cannot have negative clearance"
            );
            assert!(profile.mean >= profile.min);
            assert!(!profile.per_pose.is_empty());
        }
    }

    #[test]
    fn empty_world_reports_unbounded_clearance() {
        let mut s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 1);
        s.obstacles.clear();
        let path = vec![s.start, s.goal];
        let steps = InterpolationSteps::with_resolution(10.0);
        let profile = measure(&s, &path, &steps).unwrap();
        assert_eq!(profile.min, f64::INFINITY);
    }

    #[test]
    fn degenerate_path_returns_none() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 2);
        let steps = InterpolationSteps::default();
        assert!(measure(&s, &[s.start], &steps).is_none());
    }

    #[test]
    fn clearance_shrinks_in_narrow_passage() {
        let open = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(4), 3);
        let narrow = Scenario::narrow_passage(Robot::mobile_2d(), 30.0, 0.0);
        let params = PlannerParams {
            max_samples: 2000,
            seed: 6,
            ..PlannerParams::default()
        };
        let ro = plan_variant(&open, Variant::V4Lci, &params);
        let rn = plan_variant(&narrow, Variant::V4Lci, &params);
        if let (Some(po), Some(pn)) = (&ro.path, &rn.path) {
            let steps = InterpolationSteps::with_resolution(2.0);
            let co = measure(&open, po, &steps).unwrap();
            let cn = measure(&narrow, pn, &steps).unwrap();
            assert!(
                cn.min < co.min + 20.0,
                "threading a 30-unit slot should not leave huge margins: {} vs {}",
                cn.min,
                co.min
            );
        }
    }
}
