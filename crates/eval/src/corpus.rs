//! Corpus regression matrix: engine × scenario family × robot.
//!
//! [`run_matrix`] drives every engine over every seeded corpus scenario
//! and returns one [`MatrixCell`] per (scenario, engine) pair — success,
//! path cost, wall time, and operation counts. The bench harness
//! serializes the cells into `BENCH_corpus.json`; tests and CI gates
//! read them directly.

use std::time::Instant;

use moped_collision::{CollisionChecker, TwoStageChecker};
use moped_core::{plan_variant, Engine, PlanResult, PlannerParams, RrtStar, SimbrIndex, Variant};
use moped_env::Scenario;
use moped_scenarios::CorpusEntry;
use moped_tune::{
    plan_with_profile, CalibrationConfig, Calibrator, PlannerProfile, ProbeOutcome, ProfileTable,
    RequestClass,
};

/// A planning engine column in the regression matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Baseline RRT\* on the reference component stack (naive collision
    /// checking, linear neighbor scan) — the paper's CPU reference.
    ReferenceRrtStar,
    /// RRT\* on the full MOPED stack (TSPS + SI-MBR + SIAS + LCI).
    MopedRrtStar,
    /// Bidirectional RRT-Connect on the MOPED stack.
    RrtConnect,
    /// Multi-tree guided RRT-Connect on the MOPED stack.
    MultiTree,
    /// Per-class auto-tuned profile resolved from a calibrated
    /// [`ProfileTable`] ([`run_auto_column`]); without a table
    /// ([`plan_engine`]) it degrades to the static default profile,
    /// which is the MOPED RRT\* stack.
    Auto,
}

impl EngineKind {
    /// Every *static* engine column, in report order. [`EngineKind::Auto`]
    /// is deliberately excluded: its rows need a calibrated
    /// [`ProfileTable`] and go through [`run_auto_column`].
    pub const ALL: [EngineKind; 4] = [
        EngineKind::ReferenceRrtStar,
        EngineKind::MopedRrtStar,
        EngineKind::RrtConnect,
        EngineKind::MultiTree,
    ];

    /// Stable identifier used in bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::ReferenceRrtStar => "reference-rrt-star",
            EngineKind::MopedRrtStar => "moped-rrt-star",
            EngineKind::RrtConnect => "moped-rrt-connect",
            EngineKind::MultiTree => "moped-multi-tree",
            EngineKind::Auto => "moped-auto",
        }
    }
}

/// One (scenario, engine) cell of the regression matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Corpus id, e.g. `narrow-passage/drone_3d/s1`.
    pub scenario_id: String,
    /// Family name (first id component).
    pub family: &'static str,
    /// Robot slug (second id component).
    pub robot: &'static str,
    /// Generation seed of the scenario.
    pub scenario_seed: u64,
    /// Engine that produced this row.
    pub engine: EngineKind,
    /// Whether a path was found within the sample budget.
    pub solved: bool,
    /// Path cost (0 when unsolved).
    pub path_cost: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Tree nodes at exit.
    pub nodes: usize,
    /// Total MAC-equivalent operations.
    pub total_macs: u64,
    /// Wall-clock time of the planning call, in milliseconds.
    pub wall_ms: f64,
    /// Resolved profile label (`engine/index`), auto rows only.
    pub profile: Option<String>,
    /// Resolved NN backend name, auto rows only.
    pub nn_backend: Option<String>,
    /// Request class the profile was resolved under, auto rows only.
    pub class_id: Option<String>,
}

/// Plans one scenario with one engine column.
///
/// The reference column goes through [`plan_variant`] with
/// [`Variant::V0Baseline`]; the MOPED columns run the V4 component stack
/// with the requested [`Engine`].
pub fn plan_engine(scenario: &Scenario, engine: EngineKind, params: &PlannerParams) -> PlanResult {
    match engine {
        EngineKind::ReferenceRrtStar => plan_variant(scenario, Variant::V0Baseline, params),
        EngineKind::MopedRrtStar => plan_variant(scenario, Variant::V4Lci, params),
        // Tableless fallback: the static default profile (documented on
        // the variant). Callers with a calibrated table use
        // `run_auto_column`, which resolves per class.
        EngineKind::Auto => plan_with_profile(scenario, &PlannerProfile::static_default(), params),
        EngineKind::RrtConnect | EngineKind::MultiTree => {
            let checker: Box<dyn CollisionChecker> =
                Box::new(TwoStageChecker::moped(scenario.obstacles.clone()));
            let index = SimbrIndex::new(scenario.robot.dof(), 6, true, true);
            let core_engine = if engine == EngineKind::RrtConnect {
                Engine::RrtConnect
            } else {
                Engine::MultiTree
            };
            let result = RrtStar::new(scenario, checker.as_ref(), index, params.clone())
                .with_engine(core_engine)
                .plan();
            result
        }
    }
}

/// Runs every engine over every corpus entry; one cell per pair.
///
/// Wall time is measured here (eval is outside the determinism contract);
/// everything else in the cell is bit-deterministic in
/// `(entry, engine, params)`.
pub fn run_matrix(
    entries: &[CorpusEntry],
    engines: &[EngineKind],
    params: &PlannerParams,
) -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(entries.len() * engines.len());
    for entry in entries {
        let scenario = entry.build();
        for &engine in engines {
            let t0 = Instant::now();
            let r = plan_engine(&scenario, engine, params);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            cells.push(MatrixCell {
                scenario_id: entry.id(),
                family: entry.family.name(),
                robot: moped_scenarios::robot_slug(entry.robot),
                scenario_seed: entry.seed,
                engine,
                solved: r.solved(),
                path_cost: r.path_cost,
                samples: r.stats.samples,
                nodes: r.stats.nodes,
                total_macs: r.stats.total_ops().mac_equiv(),
                wall_ms,
                profile: None,
                nn_backend: None,
                class_id: None,
            });
        }
    }
    cells
}

/// Calibrates a [`ProfileTable`] over the given corpus entries (each
/// entry is one exemplar of its request class) at the given probe
/// budget. Deterministic in `(entries, probe_samples)`; callers that
/// want probe *latency* time this call themselves.
pub fn calibrate_table(
    entries: &[CorpusEntry],
    probe_samples: usize,
) -> (ProfileTable, Vec<ProbeOutcome>) {
    let mut cal = Calibrator::new(CalibrationConfig {
        probe_samples,
        ..CalibrationConfig::default()
    });
    for entry in entries {
        cal.add_scenario(&entry.build());
    }
    cal.calibrate()
}

/// Runs the auto-tuned column: every corpus entry planned under the
/// profile `table` resolves for its request class, one
/// [`EngineKind::Auto`] cell per entry with the resolved profile, NN
/// backend, and class id stamped on the row.
pub fn run_auto_column(
    entries: &[CorpusEntry],
    table: &ProfileTable,
    params: &PlannerParams,
) -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(entries.len());
    for entry in entries {
        let scenario = entry.build();
        let res = table.resolve(&RequestClass::of_scenario(&scenario).id());
        let t0 = Instant::now();
        let r = plan_with_profile(&scenario, &res.profile, params);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        cells.push(MatrixCell {
            scenario_id: entry.id(),
            family: entry.family.name(),
            robot: moped_scenarios::robot_slug(entry.robot),
            scenario_seed: entry.seed,
            engine: EngineKind::Auto,
            solved: r.solved(),
            path_cost: r.path_cost,
            samples: r.stats.samples,
            nodes: r.stats.nodes,
            total_macs: r.stats.total_ops().mac_equiv(),
            wall_ms,
            profile: Some(res.profile.label()),
            nn_backend: Some(res.profile.nn_backend.name().to_string()),
            class_id: Some(res.class_id),
        });
    }
    cells
}

/// Success rate of one engine restricted to one family (0 when the
/// family/engine pair has no cells).
pub fn family_success_rate(cells: &[MatrixCell], family: &str, engine: EngineKind) -> f64 {
    let rows: Vec<&MatrixCell> = cells
        .iter()
        .filter(|c| c.family == family && c.engine == engine)
        .collect();
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().filter(|c| c.solved).count() as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_robot::RobotModel;
    use moped_scenarios::Family;

    fn quick_params() -> PlannerParams {
        PlannerParams {
            max_samples: 250,
            seed: 11,
            ..PlannerParams::default()
        }
    }

    #[test]
    fn matrix_covers_every_pair() {
        let entries = vec![
            CorpusEntry::new(Family::Clutter, RobotModel::Mobile2d, 1),
            CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1),
        ];
        let cells = run_matrix(&entries, &EngineKind::ALL, &quick_params());
        assert_eq!(cells.len(), entries.len() * EngineKind::ALL.len());
        for engine in EngineKind::ALL {
            assert_eq!(cells.iter().filter(|c| c.engine == engine).count(), 2);
        }
        for c in &cells {
            assert!(c.samples > 0 && c.samples <= 250, "{}", c.scenario_id);
            assert!(c.total_macs > 0, "{}", c.scenario_id);
            assert!(c.wall_ms >= 0.0);
            assert!(!c.solved || c.path_cost > 0.0, "{}", c.scenario_id);
        }
    }

    #[test]
    fn matrix_cells_are_deterministic_modulo_wall_time() {
        let entries = vec![CorpusEntry::new(Family::Maze, RobotModel::Mobile2d, 2)];
        let a = run_matrix(&entries, &EngineKind::ALL, &quick_params());
        let b = run_matrix(&entries, &EngineKind::ALL, &quick_params());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.solved, y.solved);
            assert_eq!(x.path_cost.to_bits(), y.path_cost.to_bits());
            assert_eq!(x.samples, y.samples);
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.total_macs, y.total_macs);
        }
    }

    #[test]
    fn auto_column_resolves_and_stamps_profiles() {
        let entries = vec![
            CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1),
            CorpusEntry::new(Family::Clutter, RobotModel::Drone3d, 1),
        ];
        let (table, probes) = calibrate_table(&entries, 150);
        assert!(!table.is_empty());
        assert!(!probes.is_empty());
        let cells = run_auto_column(&entries, &table, &quick_params());
        assert_eq!(cells.len(), entries.len());
        for c in &cells {
            assert_eq!(c.engine, EngineKind::Auto);
            let class = c.class_id.as_deref().expect("auto rows carry a class");
            assert!(class.contains("/d"), "{class}");
            assert!(c.profile.is_some() && c.nn_backend.is_some());
        }
        // Deterministic modulo wall time, like the static columns.
        let again = run_auto_column(&entries, &table, &quick_params());
        for (x, y) in cells.iter().zip(&again) {
            assert_eq!(x.solved, y.solved);
            assert_eq!(x.path_cost.to_bits(), y.path_cost.to_bits());
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.class_id, y.class_id);
        }
    }

    #[test]
    fn tableless_auto_engine_matches_the_static_default_stack() {
        // Without a table, `plan_engine(Auto)` is the static default
        // profile — i.e. the full MOPED RRT* stack, bit for bit.
        let scenario = CorpusEntry::new(Family::Clutter, RobotModel::Mobile2d, 2).build();
        let auto = plan_engine(&scenario, EngineKind::Auto, &quick_params());
        let star = plan_engine(&scenario, EngineKind::MopedRrtStar, &quick_params());
        assert_eq!(auto.solved(), star.solved());
        assert_eq!(auto.path_cost.to_bits(), star.path_cost.to_bits());
        assert_eq!(auto.stats.samples, star.stats.samples);
    }

    #[test]
    fn family_success_rate_handles_missing_pairs() {
        assert_eq!(
            family_success_rate(&[], "maze", EngineKind::MopedRrtStar),
            0.0
        );
    }

    #[test]
    fn connect_engines_match_rrt_star_goal_semantics() {
        // Solved cells must carry the exact start→goal endpoints
        // regardless of engine.
        let entry = CorpusEntry::new(Family::Clutter, RobotModel::Drone3d, 1);
        let scenario = entry.build();
        for engine in EngineKind::ALL {
            let r = plan_engine(&scenario, engine, &quick_params());
            if let Some(path) = &r.path {
                assert_eq!(path[0], scenario.start, "{}", engine.name());
                assert_eq!(*path.last().unwrap(), scenario.goal, "{}", engine.name());
            }
        }
    }
}
