//! Evaluation-suite runner and summary statistics.
//!
//! The paper's methodology (§V) averages every metric over 50 random
//! planning tasks per environment configuration. This crate packages that
//! methodology: seeded task suites, per-variant runs, and the summary
//! statistics (mean, standard deviation, success rate, pairwise ratios)
//! the figures report — so experiments, tests, and downstream users share
//! one implementation instead of ad-hoc loops.
//!
//! # Example
//!
//! ```
//! use moped_core::{PlannerParams, Variant};
//! use moped_eval::{Suite, SuiteConfig};
//! use moped_robot::Robot;
//!
//! let suite = Suite::generate(Robot::mobile_2d(), &SuiteConfig {
//!     tasks: 2, obstacles: 8, base_seed: 5,
//! });
//! let params = PlannerParams { max_samples: 200, ..PlannerParams::default() };
//! let summary = suite.run(Variant::V4Lci, &params);
//! assert_eq!(summary.runs, 2);
//! ```

#![deny(missing_docs)]

pub mod clearance;
pub mod corpus;

use moped_core::{plan_variant, PlanResult, PlannerParams, Variant};
use moped_env::{Scenario, ScenarioParams};
use moped_robot::Robot;

/// Online mean/variance accumulator (Welford).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Stat {
    /// An empty accumulator.
    pub fn new() -> Stat {
        Stat {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl std::iter::FromIterator<f64> for Stat {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Stat {
        let mut s = Stat::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Suite generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Number of random tasks (the paper uses 50).
    pub tasks: usize,
    /// Obstacles per task.
    pub obstacles: usize,
    /// Base seed; task `i` uses `base_seed * 1000 + i`.
    pub base_seed: u64,
}

/// A fixed set of seeded planning tasks for one robot/environment cell.
#[derive(Clone, Debug)]
pub struct Suite {
    scenarios: Vec<Scenario>,
}

impl Suite {
    /// Generates the task set deterministically.
    pub fn generate(robot: Robot, cfg: &SuiteConfig) -> Suite {
        let scenarios = (0..cfg.tasks)
            .map(|i| {
                Scenario::generate(
                    robot.clone(),
                    &ScenarioParams::with_obstacles(cfg.obstacles),
                    cfg.base_seed * 1000 + i as u64,
                )
            })
            .collect();
        Suite { scenarios }
    }

    /// The tasks in the suite.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Returns `true` for an empty suite.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs one variant over every task, aggregating the §V metrics.
    pub fn run(&self, variant: Variant, params: &PlannerParams) -> Summary {
        let mut summary = Summary {
            variant,
            ..Summary::default()
        };
        for (i, s) in self.scenarios.iter().enumerate() {
            let p = PlannerParams {
                seed: params.seed + i as u64,
                ..params.clone()
            };
            let r = plan_variant(s, variant, &p);
            summary.absorb(&r);
        }
        summary
    }

    /// Runs two variants over the same tasks and seeds, returning both
    /// summaries plus paired ratios (the apples-to-apples comparison the
    /// figures use).
    pub fn compare(
        &self,
        baseline: Variant,
        candidate: Variant,
        params: &PlannerParams,
    ) -> PairedComparison {
        let mut pc = PairedComparison {
            baseline: Summary {
                variant: baseline,
                ..Summary::default()
            },
            candidate: Summary {
                variant: candidate,
                ..Summary::default()
            },
            ops_ratio: Stat::new(),
            cost_ratio: Stat::new(),
        };
        for (i, s) in self.scenarios.iter().enumerate() {
            let p = PlannerParams {
                seed: params.seed + i as u64,
                ..params.clone()
            };
            let rb = plan_variant(s, baseline, &p);
            let rc = plan_variant(s, candidate, &p);
            let ops_b = rb.stats.total_ops().mac_equiv().max(1) as f64;
            let ops_c = rc.stats.total_ops().mac_equiv().max(1) as f64;
            pc.ops_ratio.push(ops_b / ops_c);
            if rb.solved() && rc.solved() {
                pc.cost_ratio.push(rc.path_cost / rb.path_cost);
            }
            pc.baseline.absorb(&rb);
            pc.candidate.absorb(&rc);
        }
        pc
    }
}

/// Aggregated metrics of one variant over a suite.
#[derive(Clone, Debug)]
pub struct Summary {
    /// The variant that produced these numbers.
    pub variant: Variant,
    /// Tasks executed.
    pub runs: usize,
    /// Tasks where a path was found.
    pub solved: usize,
    /// Path cost over solved tasks.
    pub path_cost: Stat,
    /// Total MAC-equivalent ops per task.
    pub total_macs: Stat,
    /// Neighbor-search MACs per task.
    pub ns_macs: Stat,
    /// Collision MACs per task.
    pub cc_macs: Stat,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            variant: Variant::V0Baseline,
            runs: 0,
            solved: 0,
            path_cost: Stat::new(),
            total_macs: Stat::new(),
            ns_macs: Stat::new(),
            cc_macs: Stat::new(),
        }
    }
}

impl Summary {
    /// Folds one planning result into the aggregate.
    pub fn absorb(&mut self, r: &PlanResult) {
        self.runs += 1;
        if r.solved() {
            self.solved += 1;
            self.path_cost.push(r.path_cost);
        }
        self.total_macs.push(r.stats.total_ops().mac_equiv() as f64);
        self.ns_macs.push(r.stats.ns_ops.mac_equiv() as f64);
        self.cc_macs
            .push(r.stats.collision.total_ops().mac_equiv() as f64);
    }

    /// Fraction of tasks solved.
    pub fn success_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.solved as f64 / self.runs as f64
        }
    }
}

/// Paired two-variant comparison over identical tasks/seeds.
#[derive(Clone, Debug)]
pub struct PairedComparison {
    /// Baseline aggregate.
    pub baseline: Summary,
    /// Candidate aggregate.
    pub candidate: Summary,
    /// Per-task `baseline_ops / candidate_ops` (speed-equivalent saving).
    pub ops_ratio: Stat,
    /// Per-task `candidate_cost / baseline_cost` on jointly solved tasks
    /// (1.0 = parity; below 1 = candidate better).
    pub cost_ratio: Stat,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_mean_and_stddev() {
        let s: Stat = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stat_is_safe() {
        let s = Stat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn suite_generation_is_deterministic() {
        let cfg = SuiteConfig {
            tasks: 3,
            obstacles: 8,
            base_seed: 2,
        };
        let a = Suite::generate(Robot::mobile_2d(), &cfg);
        let b = Suite::generate(Robot::mobile_2d(), &cfg);
        for (x, y) in a.scenarios().iter().zip(b.scenarios()) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.goal, y.goal);
        }
    }

    #[test]
    fn run_aggregates_all_tasks() {
        let cfg = SuiteConfig {
            tasks: 3,
            obstacles: 8,
            base_seed: 4,
        };
        let suite = Suite::generate(Robot::mobile_2d(), &cfg);
        let params = PlannerParams {
            max_samples: 250,
            ..PlannerParams::default()
        };
        let summary = suite.run(Variant::V4Lci, &params);
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.total_macs.count(), 3);
        assert!(summary.total_macs.mean() > 0.0);
        assert!(summary.success_rate() >= 0.0 && summary.success_rate() <= 1.0);
    }

    #[test]
    fn paired_comparison_shows_moped_saving() {
        let cfg = SuiteConfig {
            tasks: 3,
            obstacles: 16,
            base_seed: 9,
        };
        let suite = Suite::generate(Robot::mobile_2d(), &cfg);
        let params = PlannerParams {
            max_samples: 500,
            ..PlannerParams::default()
        };
        let pc = suite.compare(Variant::V0Baseline, Variant::V4Lci, &params);
        assert!(
            pc.ops_ratio.mean() > 2.0,
            "expected >2x mean saving: {}",
            pc.ops_ratio.mean()
        );
        if pc.cost_ratio.count() > 0 {
            assert!(
                pc.cost_ratio.mean() < 1.3,
                "path quality must stay comparable: {}",
                pc.cost_ratio.mean()
            );
        }
    }
}
