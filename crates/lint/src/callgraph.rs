//! A per-crate, name-resolved call-graph approximation over the
//! [`crate::structure`] trees.
//!
//! Resolution is purely lexical: a call `foo(…)` or `x.foo(…)` gets an
//! edge to *every* function named `foo` in the crate (conservative on
//! method calls — no receiver types exist at this layer), and calls to
//! names the crate does not define (std, other crates, macro-generated
//! methods) resolve to nothing. Closures passed to `spawn(…)` are the
//! one special case: their calls are *not* edges of the spawning
//! function (the closure does not run at spawn time) — instead the
//! functions they call become [`CrateGraph::entries`], the thread entry
//! points the reachability passes start from.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::FileUnit;

/// Identifier keywords that can precede `(` without being a call.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "fn", "move", "ref", "mut",
    "unsafe", "where", "impl", "dyn", "pub", "crate", "super", "self", "Self", "use", "mod",
    "enum", "struct", "trait", "type", "const", "static", "else", "break", "continue", "await",
    "async", "box", "true", "false",
];

/// One function definition in the crate.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the defining file in the unit slice the graph was built
    /// from.
    pub file: usize,
    /// Arena index of the `fn` item in that file's tree.
    pub item: usize,
    /// The function's name.
    pub name: String,
    /// Token indices of the body's `{` and `}` in the defining file.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One resolved call inside a function body.
#[derive(Clone, Copy, Debug)]
pub struct CallSite {
    /// Index of the callee in [`CrateGraph::fns`].
    pub callee: usize,
    /// Token index of the callee name at the call site.
    pub token: usize,
    /// 1-based line of the call.
    pub line: u32,
}

/// The crate's function set, call edges, and thread entry points.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// Every function defined in the crate.
    pub fns: Vec<FnNode>,
    /// Per function: its resolved call sites, in token order.
    pub calls: Vec<Vec<CallSite>>,
    /// Functions called from inside `spawn(…)` closures — the thread
    /// entry points reachability starts from.
    pub entries: Vec<usize>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CrateGraph {
    /// All functions named `name`, as indices into [`CrateGraph::fns`].
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `reachable[f]` is true iff `f` is an entry point or transitively
    /// called from one.
    pub fn reachable_from_entries(&self) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut work: Vec<usize> = self.entries.clone();
        while let Some(f) = work.pop() {
            if std::mem::replace(&mut seen[f], true) {
                continue;
            }
            work.extend(self.calls[f].iter().map(|c| c.callee));
        }
        seen
    }
}

/// Token-index spans (inclusive) of the parenthesized argument lists of
/// `spawn(…)` calls in one file.
pub(crate) fn spawn_arg_spans(unit: &FileUnit) -> Vec<(usize, usize)> {
    let toks = &unit.lexed.tokens;
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("spawn") || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let mut depth = 0i32;
        for (j, n) in toks.iter().enumerate().skip(i + 1) {
            if n.is_punct("(") {
                depth += 1;
            } else if n.is_punct(")") {
                depth -= 1;
                if depth <= 0 {
                    spans.push((i + 1, j));
                    break;
                }
            }
        }
    }
    spans
}

/// Whether token index `i` lies inside any of `spans`.
fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= i && i <= b)
}

/// Builds the crate graph over `units` (one entry per parsed file).
/// Test files and `#[cfg(test)]` regions contribute neither functions
/// nor entry points.
pub fn build(units: &[FileUnit]) -> CrateGraph {
    let mut graph = CrateGraph::default();
    // Pass 1: collect function definitions.
    for (file, unit) in units.iter().enumerate() {
        if unit.is_test_file {
            continue;
        }
        for (item, it) in unit.tree.fns() {
            if unit.is_test_line(it.line) {
                continue;
            }
            let Some(name) = it.name.clone() else {
                continue;
            };
            graph
                .by_name
                .entry(name.clone())
                .or_default()
                .push(graph.fns.len());
            graph.fns.push(FnNode {
                file,
                item,
                name,
                body: it.body,
                line: it.line,
            });
        }
    }
    // Pass 2: resolve call sites and spawn entry points.
    graph.calls = vec![Vec::new(); graph.fns.len()];
    let mut entries = Vec::new();
    for (file, unit) in units.iter().enumerate() {
        if unit.is_test_file {
            continue;
        }
        let toks = &unit.lexed.tokens;
        let spawn_spans = spawn_arg_spans(unit);
        // Map token index -> innermost enclosing fn, so nested fns own
        // their calls and the enclosing fn does not.
        let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
        for (f, node) in graph.fns.iter().enumerate() {
            if node.file != file {
                continue;
            }
            let (open, close) = node.body;
            for slot in owner
                .iter_mut()
                .take(close.min(toks.len().saturating_sub(1)) + 1)
                .skip(open)
            {
                // Later fns in arena order are nested deeper (their `{`
                // comes later), so overwriting yields the innermost.
                *slot = Some(f);
            }
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || KEYWORDS.contains(&t.text.as_str())
                || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                || unit.is_test_line(t.line)
            {
                continue;
            }
            if i > 0 && toks[i - 1].is_ident("fn") {
                continue; // definition, not call
            }
            let targets = graph.by_name.get(&t.text).cloned().unwrap_or_default();
            if targets.is_empty() {
                continue;
            }
            if in_spans(&spawn_spans, i) {
                // Runs on the spawned thread, not in the caller.
                entries.extend(targets);
                continue;
            }
            if let Some(f) = owner[i] {
                for callee in targets {
                    graph.calls[f].push(CallSite {
                        callee,
                        token: i,
                        line: t.line,
                    });
                }
            }
        }
    }
    entries.sort_unstable();
    entries.dedup();
    graph.entries = entries;
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn unit(src: &str) -> FileUnit {
        FileUnit::parse(PathBuf::from("x.rs"), false, src)
    }

    #[test]
    fn calls_resolve_within_the_crate() {
        let u = unit("fn a() { b(); c.b(); missing(); }\nfn b() {}\n");
        let g = build(&[u]);
        assert_eq!(g.fns.len(), 2);
        let a = g.resolve("a")[0];
        assert_eq!(g.calls[a].len(), 2, "free call + method call resolve");
        assert!(g.calls[a].iter().all(|c| g.fns[c.callee].name == "b"));
    }

    #[test]
    fn spawn_closures_make_entries_not_edges() {
        let u = unit(
            "fn start() { thread::spawn(move || work(1)); }\nfn work(_x: usize) { helper(); }\nfn helper() {}\n",
        );
        let g = build(&[u]);
        let start = g.resolve("start")[0];
        assert!(g.calls[start].is_empty(), "{:?}", g.calls[start]);
        assert_eq!(g.entries, vec![g.resolve("work")[0]]);
        let reach = g.reachable_from_entries();
        assert!(reach[g.resolve("work")[0]]);
        assert!(reach[g.resolve("helper")[0]]);
        assert!(!reach[start]);
    }

    #[test]
    fn test_regions_are_excluded() {
        let u = unit("fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { live(); }\n}\n");
        let g = build(&[u]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }
}
