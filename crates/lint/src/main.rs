//! The `moped-lint` CLI.
//!
//! ```text
//! moped-lint [--json] [--deny warnings] [--list-rules] [--root <path>]
//! ```
//!
//! Exits non-zero when any error-severity finding remains (with
//! `--deny warnings`, warnings count), so `scripts/verify.sh` and CI can
//! gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

use moped_lint::{lint_workspace, rules, Severity};

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                other => return usage(&format!("--deny expects `warnings`, got {other:?}")),
            },
            "--deny=warnings" => deny_warnings = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root expects a path"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in rules::RULES {
            println!(
                "{:<22} {:<8} {}",
                rule.id,
                rule.severity.to_string(),
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    // `cargo run -p moped-lint` runs from the workspace root; `--root`
    // overrides for out-of-tree use.
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("moped-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let effective = |s: Severity| {
        if deny_warnings {
            Severity::Error
        } else {
            s
        }
    };
    let errors = diags
        .iter()
        .filter(|d| effective(d.severity) == Severity::Error)
        .count();
    let warnings = diags.len() - errors;

    if json {
        let body: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("moped-lint: no findings");
        } else {
            println!("moped-lint: {errors} error(s), {warnings} warning(s)");
        }
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("moped-lint: {msg}");
    eprint!("{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
moped-lint: static analysis for the MOPED workspace contracts

USAGE:
    moped-lint [OPTIONS]

OPTIONS:
    --deny warnings   escalate warnings to errors (the verify.sh gate)
    --json            machine-readable findings on stdout
    --list-rules      print the rule catalog and exit
    --root <path>     workspace root (default: current directory)
    -h, --help        this text

Suppress a finding in place, reason mandatory:
    // moped-lint: allow(<rule>) <why the contract does not apply here>
";
