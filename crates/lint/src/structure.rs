//! The brace-matched item/block tree: the structural layer the
//! scope-aware passes (`lock-order`, `panic-path`, `atomics-audit`)
//! walk.
//!
//! Built directly on the token stream from [`crate::lexer`] — no type
//! information, no macro expansion — so it is an approximation by
//! design: every `{ … }` becomes a node, and `fn`/`mod`/`impl`/`trait`
//! keywords introduce named items when their shape matches. The builder
//! is total: any token stream, balanced or not, produces a tree without
//! panicking, with child spans strictly nested inside their parents —
//! the two invariants the property tests pin.

use crate::lexer::{Token, TokenKind};

/// What kind of construct opened a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }`.
    Module,
    /// `fn name(…) { … }`, free or associated.
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
    /// Any other braced scope: blocks, match/struct bodies, closures,
    /// macro bodies.
    Block,
}

/// One node of the tree.
#[derive(Clone, Debug)]
pub struct Item {
    /// Construct kind.
    pub kind: ItemKind,
    /// The item's name (`fn`/`mod`/`trait` name, `impl`'s self type),
    /// if any.
    pub name: Option<String>,
    /// Token index of the introducing keyword (of `{` for a block).
    pub start: usize,
    /// Token indices of the `{` and `}` delimiting the body. An
    /// unclosed node at EOF ends at the last token.
    pub body: (usize, usize),
    /// 1-based source line of `start`.
    pub line: u32,
    /// Arena indices of directly nested nodes, in source order.
    pub children: Vec<usize>,
    /// Arena index of the enclosing node, if any.
    pub parent: Option<usize>,
}

/// A whole file's tree, arena-allocated: `items` owns every node,
/// `roots` indexes the top level.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// All nodes, in order of their opening brace.
    pub items: Vec<Item>,
    /// Nodes with no parent, in source order.
    pub roots: Vec<usize>,
}

impl ItemTree {
    /// Every `fn` node, as `(arena index, item)`.
    pub fn fns(&self) -> impl Iterator<Item = (usize, &Item)> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.kind == ItemKind::Fn)
    }
}

/// Derives the `impl` header's self-type name: the first angle-depth-0
/// identifier after `impl` — or, for `impl Trait for Type`, after `for`.
fn impl_name(tokens: &[Token], impl_idx: usize) -> Option<String> {
    let mut angle: i32 = 0;
    let mut name: Option<String> = None;
    for t in tokens.iter().skip(impl_idx + 1).take(64) {
        if t.is_punct("{") || t.is_punct(";") {
            break;
        }
        if t.kind == TokenKind::Punct {
            for c in t.text.chars() {
                match c {
                    '<' => angle += 1,
                    '>' => angle = (angle - 1).max(0),
                    _ => {}
                }
            }
            continue;
        }
        if t.kind == TokenKind::Ident && angle == 0 {
            if t.text == "for" {
                name = None; // the self type follows `for`
                continue;
            }
            if name.is_none() && !matches!(t.text.as_str(), "const" | "unsafe" | "dyn") {
                name = Some(t.text.clone());
            }
        }
    }
    name
}

/// Builds the tree for one token stream. Total: never panics, accepts
/// unbalanced braces (a stray `}` is ignored, unclosed nodes end at the
/// last token).
pub fn build(tokens: &[Token]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut stack: Vec<usize> = Vec::new();
    // The most recent unconsumed item introducer: (kind, name, keyword
    // token index). Consumed by the next `{`, cleared by `;` (braceless
    // items: `mod x;`, trait method declarations). Introducers only arm
    // when nothing is pending, so `impl`/`fn` appearing inside a pending
    // signature (`fn f(x: impl Iterator) {`) cannot steal the body.
    let mut pending: Option<(ItemKind, Option<String>, usize)> = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && pending.is_none() {
            match t.text.as_str() {
                // Only `fn <name>` introduces an item; a bare `fn(…)`
                // pointer type stays part of the surrounding node.
                "fn" | "mod" | "trait" => {
                    if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                        let kind = match t.text.as_str() {
                            "fn" => ItemKind::Fn,
                            "mod" => ItemKind::Module,
                            _ => ItemKind::Trait,
                        };
                        pending = Some((kind, Some(name.text.clone()), i));
                    }
                }
                "impl" => pending = Some((ItemKind::Impl, impl_name(tokens, i), i)),
                _ => {}
            }
            continue;
        }
        if t.is_punct("{") {
            let (kind, name, start) = pending.take().unwrap_or((ItemKind::Block, None, i));
            let idx = tree.items.len();
            tree.items.push(Item {
                kind,
                name,
                start,
                body: (i, i),
                line: tokens[start].line,
                children: Vec::new(),
                parent: stack.last().copied(),
            });
            match stack.last() {
                Some(&p) => tree.items[p].children.push(idx),
                None => tree.roots.push(idx),
            }
            stack.push(idx);
        } else if t.is_punct("}") {
            if let Some(idx) = stack.pop() {
                tree.items[idx].body.1 = i;
            }
        } else if t.is_punct(";") {
            pending = None;
        }
    }
    let end = tokens.len().saturating_sub(1);
    for idx in stack {
        tree.items[idx].body.1 = tree.items[idx].body.1.max(end);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> ItemTree {
        build(&lex(src).tokens)
    }

    #[test]
    fn named_items_are_recognized() {
        let t = tree_of("mod m {\n  impl Foo {\n    fn bar(&self) { let x = 1; }\n  }\n}\n");
        let kinds: Vec<(ItemKind, Option<&str>)> = t
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_deref()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Module, Some("m")),
                (ItemKind::Impl, Some("Foo")),
                (ItemKind::Fn, Some("bar")),
            ]
        );
        assert_eq!(t.roots, vec![0]);
        assert_eq!(t.items[1].parent, Some(0));
        assert_eq!(t.items[2].parent, Some(1));
        assert_eq!(t.items[2].line, 3);
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let t = tree_of("impl Display for Diagnostic { }\n");
        assert_eq!(t.items[0].name.as_deref(), Some("Diagnostic"));
        let t = tree_of("impl<T: Clone> Wrapper<T> { }\n");
        assert_eq!(t.items[0].name.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn impl_in_signature_does_not_steal_the_fn_body() {
        let t = tree_of("fn f(x: impl Iterator) -> impl Clone { x }\n");
        assert_eq!(t.items[0].kind, ItemKind::Fn);
        assert_eq!(t.items[0].name.as_deref(), Some("f"));
    }

    #[test]
    fn inner_braces_become_blocks() {
        let t = tree_of("fn f() { if a { b(); } match c { _ => {} } }\n");
        assert_eq!(t.items[0].kind, ItemKind::Fn);
        assert!(t.items[1..].iter().all(|i| i.kind == ItemKind::Block));
        // All blocks nest inside the fn body.
        let (o, c) = t.items[0].body;
        assert!(t.items[1..].iter().all(|i| o < i.body.0 && i.body.1 < c));
    }

    #[test]
    fn unbalanced_input_is_tolerated() {
        let t = tree_of("} fn f() { let x = { 1; \n");
        assert!(t.items.iter().all(|i| i.body.0 <= i.body.1));
        let t = tree_of("{ { } ");
        assert_eq!(t.items.len(), 2);
    }

    #[test]
    fn braceless_items_leave_no_node() {
        let t = tree_of("mod external;\ntrait T { fn decl(&self); }\n");
        assert_eq!(t.items.len(), 1);
        assert_eq!(t.items[0].kind, ItemKind::Trait);
    }
}
