//! The `atomics-audit` pass: no `Ordering::Relaxed` on atomics that
//! gate parking/unpark decisions.
//!
//! The lost-wakeup bug class: a sleeper checks an atomic flag and
//! parks; a waker sets the flag and notifies. If the flag traffic is
//! `Relaxed`, the check and the park are not ordered against the store
//! and the wakeup can be missed — PR 7 proved this away by hand with
//! SeqCst; this pass keeps the proof honest mechanically.
//!
//! Detection is lexical but scope-aware: a **parking function** is any
//! fn whose body performs a park/wait/notify/unpark operation; a **gate
//! atom** is any atomic-op receiver appearing in the `if`/`while`
//! condition of a parking function — extended transitively through
//! same-crate calls made from those conditions (so `if self.is_closed()`
//! gates whatever atom `is_closed` reads). Every `Relaxed` operation on
//! a gate atom anywhere in the crate is then flagged; non-gating atomics
//! (counters, IDs, metrics) may stay `Relaxed`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CrateGraph, KEYWORDS};
use crate::lexer::{Token, TokenKind};
use crate::{push_diag, Diagnostic, FileUnit};

/// Crates the pass runs over.
const SCOPE: &[&str] = &["service"];

/// Operations that park, wake, or wait.
const PARK_OPS: &[&str] = &[
    "park",
    "park_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
    "unpark",
];

/// Atomic memory operations (all take an `Ordering`).
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// `.op(` / `::op(` at token `i`?
fn is_called_op(toks: &[Token], i: usize, ops: &[&str]) -> bool {
    toks[i].kind == TokenKind::Ident
        && ops.contains(&toks[i].text.as_str())
        && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        && i > 0
        && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"))
}

/// The receiver name of a method call at `i`: the ident before the `.`.
fn receiver(toks: &[Token], i: usize) -> Option<String> {
    if i >= 2 && toks[i - 1].is_punct(".") && toks[i - 2].kind == TokenKind::Ident {
        Some(toks[i - 2].text.clone())
    } else {
        None
    }
}

/// Atomic receivers touched anywhere in fn `f`'s body.
fn atoms_touched(unit: &FileUnit, graph: &CrateGraph, f: usize) -> BTreeSet<String> {
    let toks = &unit.lexed.tokens;
    let (open, close) = graph.fns[f].body;
    let mut out = BTreeSet::new();
    for i in open..close.min(toks.len()) {
        if is_called_op(toks, i, ATOMIC_OPS) {
            if let Some(r) = receiver(toks, i) {
                out.insert(r);
            }
        }
    }
    out
}

/// Atoms fn `f` touches, transitively through same-crate calls.
fn atoms_transitive(
    units: &[FileUnit],
    graph: &CrateGraph,
    f: usize,
    memo: &mut Vec<Option<BTreeSet<String>>>,
    visiting: &mut Vec<bool>,
) -> BTreeSet<String> {
    if let Some(m) = &memo[f] {
        return m.clone();
    }
    if visiting[f] {
        return BTreeSet::new();
    }
    visiting[f] = true;
    let mut out = atoms_touched(&units[graph.fns[f].file], graph, f);
    for c in &graph.calls[f] {
        out.extend(atoms_transitive(units, graph, c.callee, memo, visiting));
    }
    visiting[f] = false;
    memo[f] = Some(out.clone());
    out
}

/// Runs the pass over one crate's parsed files.
pub fn check(crate_key: &str, units: &[FileUnit], graph: &CrateGraph, out: &mut Vec<Diagnostic>) {
    if !SCOPE.contains(&crate_key) {
        return;
    }
    // Step 1: parking fns.
    let parking: Vec<usize> = (0..graph.fns.len())
        .filter(|&f| {
            let unit = &units[graph.fns[f].file];
            let toks = &unit.lexed.tokens;
            let (open, close) = graph.fns[f].body;
            (open..close.min(toks.len())).any(|i| is_called_op(toks, i, PARK_OPS))
        })
        .collect();
    // Step 2: gate atoms — atomic receivers in if/while conditions of
    // parking fns, plus whatever the calls in those conditions touch.
    let mut gates: BTreeMap<String, (usize, u32)> = BTreeMap::new(); // atom -> (parking fn, cond line)
    let mut memo = vec![None; graph.fns.len()];
    for &f in &parking {
        let unit = &units[graph.fns[f].file];
        let toks = &unit.lexed.tokens;
        let (open, close) = graph.fns[f].body;
        let mut i = open;
        while i < close.min(toks.len()) {
            if !(toks[i].is_ident("if") || toks[i].is_ident("while")) {
                i += 1;
                continue;
            }
            let cond_line = toks[i].line;
            // The condition runs to the body's `{`.
            let mut j = i + 1;
            while j < close.min(toks.len()) && !toks[j].is_punct("{") {
                if is_called_op(toks, j, ATOMIC_OPS) {
                    if let Some(r) = receiver(toks, j) {
                        gates.entry(r).or_insert((f, cond_line));
                    }
                } else if toks[j].kind == TokenKind::Ident
                    && !KEYWORDS.contains(&toks[j].text.as_str())
                    && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                {
                    for &callee in graph.resolve(&toks[j].text) {
                        let mut visiting = vec![false; graph.fns.len()];
                        for atom in atoms_transitive(units, graph, callee, &mut memo, &mut visiting)
                        {
                            gates.entry(atom).or_insert((f, cond_line));
                        }
                    }
                }
                j += 1;
            }
            i = j + 1;
        }
    }
    if gates.is_empty() {
        return;
    }
    // Step 3: flag every Relaxed op on a gate atom, crate-wide.
    for unit in units {
        if unit.is_test_file {
            continue;
        }
        let toks = &unit.lexed.tokens;
        for i in 0..toks.len() {
            if !is_called_op(toks, i, ATOMIC_OPS) || unit.is_test_line(toks[i].line) {
                continue;
            }
            let Some(r) = receiver(toks, i) else { continue };
            let Some((gate_fn, cond_line)) = gates.get(&r) else {
                continue;
            };
            // Does the ordering argument say Relaxed?
            let mut depth = 0i32;
            let mut relaxed = false;
            for t in toks.iter().skip(i + 1) {
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                } else if t.is_ident("Relaxed") {
                    relaxed = true;
                }
            }
            if relaxed {
                push_diag(
                    out,
                    "atomics-audit",
                    "structural",
                    &unit.path,
                    toks[i].line,
                    format!(
                        "`Ordering::Relaxed` on `{r}`, which gates a park/unpark decision \
                         (`{}`, line {cond_line}) — lost-wakeup risk; use Acquire/Release \
                         or SeqCst, or justify with a pragma",
                        graph.fns[*gate_fn].name
                    ),
                );
            }
        }
    }
}
