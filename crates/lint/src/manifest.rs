//! The `cargo-deps` rule: manifests may only name path-local or
//! workspace-inherited dependencies.
//!
//! The build environment has no registry access — everything external
//! is vendored under `vendor/` as an API-compatible subset. A version
//! or git dependency slipped into any `Cargo.toml` would break every
//! offline build, so the contract is machine-checked here with a small
//! line-oriented TOML scan (full TOML parsing is not needed for the
//! shapes `cargo` accepts in dependency tables).

use crate::{Diagnostic, Severity};
use std::path::Path;

/// Whether a `[section]` header names a dependency table
/// (`[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
/// `[target.'cfg(unix)'.build-dependencies]`, …).
fn is_dep_table(section: &str) -> bool {
    section
        .rsplit('.')
        .next()
        .is_some_and(|last| last.ends_with("dependencies"))
}

/// Whether a dependency table header also names a single dependency
/// (`[dependencies.foo]`): returns that name.
fn single_dep_of(section: &str) -> Option<&str> {
    let (table, name) = section.rsplit_once('.')?;
    is_dep_table(table).then_some(name)
}

/// Checks one manifest; emits a finding for every dependency that is
/// neither `path = …` nor `workspace = true`.
pub fn check_manifest(path: &Path, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut emit = |line: u32, name: &str, how: &str| {
        out.push(Diagnostic {
            rule: "cargo-deps",
            severity: Severity::Error,
            pass: "manifest",
            path: path.to_path_buf(),
            line,
            message: format!(
                "dependency `{name}` is {how} — offline builds require `path = …` (vendor it \
                 under vendor/) or `workspace = true`"
            ),
        });
    };
    let mut section = String::new();
    // State for a `[dependencies.foo]` sub-table: (header line, name,
    // saw a path/workspace key).
    let mut single: Option<(u32, String, bool)> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some((at, name, ok)) = single.take() {
                if !ok {
                    emit(at, &name, "missing a `path`/`workspace` key");
                }
            }
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .to_string();
            if let Some(name) = single_dep_of(&section) {
                single = Some((lineno, name.to_string(), false));
            }
            continue;
        }
        if let Some((_, _, ok)) = single.as_mut() {
            if line.starts_with("path") || line.starts_with("workspace") {
                *ok = true;
            }
            continue;
        }
        if !is_dep_table(&section) {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        if value.starts_with('"') || value.starts_with('\'') {
            emit(lineno, name, "a registry version requirement");
        } else if value.starts_with('{') {
            let ok = value.contains("path") || value.contains("workspace");
            if value.contains("git") {
                emit(lineno, name, "a git dependency");
            } else if !ok {
                emit(lineno, name, "missing a `path`/`workspace` key");
            }
        }
        // `name.workspace = true` dotted shorthand falls through: OK.
    }
    if let Some((at, name, ok)) = single {
        if !ok {
            emit(at, &name, "missing a `path`/`workspace` key");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(src: &str) -> Vec<Diagnostic> {
        check_manifest(&PathBuf::from("Cargo.toml"), src)
    }

    #[test]
    fn version_dep_is_flagged() {
        let d = check("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let d = check(
            "[dependencies]\nrand = { path = \"../rand\" }\nmoped-core.workspace = true\n\
             moped-env = { workspace = true }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn git_dep_is_flagged() {
        let d = check("[dev-dependencies]\nfoo = { git = \"https://example.com/foo\" }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn subtable_without_path_is_flagged() {
        let d = check("[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        let ok = check("[dependencies.rand]\npath = \"vendor/rand\"\n");
        assert!(ok.is_empty());
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let d = check("[package]\nversion = \"0.1.0\"\nname = \"x\"\n");
        assert!(d.is_empty());
    }
}
