//! The structural half of the `panic-path` rule: panic sources the
//! token rule cannot see, restricted to code *reachable from thread
//! entry points* (the closures handed to `spawn(…)` — see
//! [`crate::callgraph::CrateGraph::entries`]).
//!
//! A panic on a worker or supervisor thread kills the thread, not the
//! process — exactly the failure the serving contracts (guaranteed
//! ticket resolution, monitor-driven respawn) exist to survive, so the
//! bar there is *no panics at all*. Flagged sources:
//!
//! * **indexing** — `xs[i]`, `xs[a + b]`, `&xs[..k]`: out-of-bounds
//!   panics. A single integer-literal index (`xs[0]` on a
//!   fixed-by-construction table) is accepted as the one idiomatic
//!   exception; everything else needs `get`/`get_mut` or a pragma.
//! * **integer division/modulo** — `a / b`, `a % b` with a non-literal
//!   divisor: divide-by-zero panics. Skipped when either side shows
//!   float evidence (float literals, `f32`/`f64`, float-typed methods),
//!   since float division cannot panic.
//! * **`assert!` family** — `assert!`/`assert_eq!`/`assert_ne!` outside
//!   test code; `debug_assert!` is fine (stripped in release).
//!
//! Findings honor the reason-mandatory pragma system like every other
//! rule.

use crate::callgraph::CrateGraph;
use crate::lexer::{Token, TokenKind};
use crate::{push_diag, Diagnostic, FileUnit};

/// Crates the pass runs over.
const SCOPE: &[&str] = &["service"];

/// Idents that read as float evidence in an operand window.
fn is_float_ident(text: &str) -> bool {
    text == "f32"
        || text == "f64"
        || text.ends_with("f32")
        || text.ends_with("f64")
        || crate::rules::FLOAT_METHODS.contains(&text)
}

/// Whether a small window around the operator shows float evidence.
fn float_nearby(toks: &[Token], op: usize) -> bool {
    let lo = op.saturating_sub(8);
    let hi = (op + 9).min(toks.len());
    toks[lo..hi].iter().any(|t| {
        t.kind == TokenKind::Float || (t.kind == TokenKind::Ident && is_float_ident(&t.text))
    })
}

/// Token index of the `]` matching the `[` at `open`, if any.
fn close_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth <= 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Runs the pass over one crate's parsed files.
pub fn check(crate_key: &str, units: &[FileUnit], graph: &CrateGraph, out: &mut Vec<Diagnostic>) {
    if !SCOPE.contains(&crate_key) {
        return;
    }
    let reachable = graph.reachable_from_entries();
    for (file, unit) in units.iter().enumerate() {
        if unit.is_test_file {
            continue;
        }
        let toks = &unit.lexed.tokens;
        // Innermost enclosing fn per token (same trick as the call
        // graph): a source site counts iff its owner is reachable.
        let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
        for (f, node) in graph.fns.iter().enumerate() {
            if node.file != file {
                continue;
            }
            let (open, close) = node.body;
            for slot in owner
                .iter_mut()
                .take(close.min(toks.len().saturating_sub(1)) + 1)
                .skip(open)
            {
                *slot = Some(f);
            }
        }
        let on_worker_path = |i: usize| {
            owner
                .get(i)
                .copied()
                .flatten()
                .is_some_and(|f| reachable[f])
        };
        for (i, t) in toks.iter().enumerate() {
            if unit.is_test_line(t.line) || !on_worker_path(i) {
                continue;
            }
            // Indexing: `expr[ … ]` where the previous token ends an
            // indexable expression.
            if t.is_punct("[")
                && i > 0
                && (toks[i - 1].is_punct(")")
                    || toks[i - 1].is_punct("]")
                    || (toks[i - 1].kind == TokenKind::Ident
                        && !crate::callgraph::KEYWORDS.contains(&toks[i - 1].text.as_str())))
            {
                if let Some(j) = close_bracket(toks, i) {
                    let inner = &toks[i + 1..j];
                    let literal_index = inner.len() == 1 && inner[0].kind == TokenKind::Int;
                    let full_range = inner.len() == 1 && inner[0].is_punct("..");
                    if !inner.is_empty() && !literal_index && !full_range {
                        push_diag(
                            out,
                            "panic-path",
                            "structural",
                            &unit.path,
                            t.line,
                            format!(
                                "indexing `{}[…]` on a worker-reachable path can panic \
                                 out-of-bounds — use `get`/`get_mut` (or clamp) and handle \
                                 the miss",
                                toks[i - 1].text
                            ),
                        );
                    }
                }
                continue;
            }
            // Integer division / modulo by a non-literal divisor.
            if (t.is_punct("/") || t.is_punct("%")) && i > 0 {
                let mut r = i + 1;
                while toks.get(r).is_some_and(|n| n.is_punct("(")) {
                    r += 1;
                }
                let rhs_literal = toks
                    .get(r)
                    .is_some_and(|n| n.kind == TokenKind::Int && !n.text.starts_with('0'));
                if !rhs_literal && !float_nearby(toks, i) {
                    let op = if t.is_punct("/") {
                        "division"
                    } else {
                        "modulo"
                    };
                    push_diag(
                        out,
                        "panic-path",
                        "structural",
                        &unit.path,
                        t.line,
                        format!(
                            "integer {op} by a non-constant divisor on a worker-reachable \
                             path can panic on zero — use `checked_div`/`checked_rem` or \
                             prove the divisor non-zero with a pragma"
                        ),
                    );
                }
                continue;
            }
            // `assert!` family in non-test code (debug_assert is fine).
            if t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "assert" | "assert_eq" | "assert_ne")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                push_diag(
                    out,
                    "panic-path",
                    "structural",
                    &unit.path,
                    t.line,
                    format!(
                        "`{}!` on a worker-reachable path panics in release builds — return \
                         an error, use `debug_assert!`, or justify with a pragma",
                        t.text
                    ),
                );
            }
        }
    }
}
