//! The `lock-order` pass: guard liveness, held-set propagation over
//! call edges, deadlock-cycle detection, and blocking-while-locked.
//!
//! For every function in the serving layer the pass extracts lock
//! acquisition sites (`.lock()` / `.read()` / `.write()` and the
//! `lock_ignore_poison` wrapper), tracks which guards are live at each
//! point (a `let`-bound guard lives to scope exit or `drop(g)`; an
//! unbound guard lives to the end of its statement), and then:
//!
//! * records a **lock-order edge** `held → acquired` for every
//!   acquisition made (directly or through a callee) while another lock
//!   is held, and reports every edge that lies on a cycle of the
//!   resulting graph as a potential deadlock;
//! * reports **blocking operations** (`park`, `recv`, `join`, `wait`,
//!   `send` — every channel here is bounded by the `unbounded-channel`
//!   rule, so `send` can block) performed while a lock is held, directly
//!   or through a call chain. A condvar `wait`/`wait_timeout` is exempt
//!   for the guard it consumes — blocking on the guarded condition is
//!   the designed idiom — but still fires if *another* lock is held.
//!
//! Lock identity is lexical (the receiver's final field/variable name),
//! which is the same conservative approximation the call graph makes.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{spawn_arg_spans, CrateGraph};
use crate::lexer::TokenKind;
use crate::{push_diag, Diagnostic, FileUnit};

/// Crates the pass runs over.
const SCOPE: &[&str] = &["service"];

/// Functions treated as opaque lock-acquisition primitives: call sites
/// are acquisitions of the argument's lock, and the wrapper's own body
/// is not analyzed.
const LOCK_WRAPPERS: &[&str] = &["lock_ignore_poison"];

/// Methods that acquire a guard (nullary, so `io::Read::read(buf)` and
/// friends cannot match).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Operations that can block the calling thread.
const BLOCKING_OPS: &[&str] = &[
    "park",
    "park_timeout",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
    "wait",
    "wait_timeout",
    "send",
];

/// The condvar waits that consume (and are exempt for) a guard.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// One live guard during the scan.
struct Guard {
    /// Binding name; `None` for a statement temporary.
    name: Option<String>,
    /// The lock it holds.
    lock: String,
    /// Brace depth (relative to the fn body) at the binding.
    depth: usize,
}

/// Everything the scan learns about one function.
#[derive(Default)]
struct FnFacts {
    /// `held → acquired` edges from direct acquisitions: (held,
    /// acquired, line).
    edges: Vec<(String, String, u32)>,
    /// Direct blocking ops with a non-empty held set: (op, line, held).
    blocked: Vec<(String, u32, Vec<String>)>,
    /// Resolved calls made while holding locks: (callee, line, held).
    calls_held: Vec<(usize, u32, Vec<String>)>,
    /// Locks this fn acquires directly.
    acquires: BTreeSet<String>,
    /// First blocking op in this fn regardless of held locks: (op, line).
    first_block: Option<(String, u32)>,
}

/// Extracts the lock name from a receiver chain ending just before
/// token `dot` (the `.` of `.lock()`), and the chain's first token.
fn receiver_of(toks: &[crate::lexer::Token], dot: usize) -> (String, usize) {
    let name = match toks.get(dot.wrapping_sub(1)) {
        Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
        _ => "<lock>".to_string(),
    };
    // Walk left over the `a.b::c.d` chain to its first token.
    let mut start = dot;
    while start > 0 {
        let prev = &toks[start - 1];
        if prev.kind == TokenKind::Ident || prev.is_punct(".") || prev.is_punct("::") {
            start -= 1;
        } else {
            break;
        }
    }
    (name, start)
}

/// Detects a `let [mut] name =` binding directly left of the expression
/// starting at `start` (skipping `&`, `*`, `match`, `(`). Returns the
/// bound name.
fn binding_before(toks: &[crate::lexer::Token], start: usize) -> Option<String> {
    let mut k = start;
    while k > 0 {
        let prev = &toks[k - 1];
        if prev.is_punct("&") || prev.is_punct("*") || prev.is_punct("(") || prev.is_ident("match")
        {
            k -= 1;
        } else {
            break;
        }
    }
    if k < 2 || !toks[k - 1].is_punct("=") || toks[k - 2].kind != TokenKind::Ident {
        return None;
    }
    let name = &toks[k - 2];
    let before = toks.get(k.wrapping_sub(3));
    let is_let = before.is_some_and(|t| t.is_ident("let"))
        || (before.is_some_and(|t| t.is_ident("mut"))
            && toks
                .get(k.wrapping_sub(4))
                .is_some_and(|t| t.is_ident("let")));
    is_let.then(|| name.text.clone())
}

/// Token index of the `)` matching the `(` at `open`.
fn close_paren(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth <= 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Scans one function body for lock events.
fn scan_fn(unit: &FileUnit, file: usize, graph: &CrateGraph, f: usize) -> FnFacts {
    let mut facts = FnFacts::default();
    let toks = &unit.lexed.tokens;
    let (open, close) = graph.fns[f].body;
    // Token ranges that belong to someone else: nested fn bodies (their
    // own graph nodes) and `spawn(…)` closures (run on another thread).
    let mut foreign: Vec<(usize, usize)> = graph
        .fns
        .iter()
        .filter(|n| n.file == file && n.body.0 > open && n.body.1 < close)
        .map(|n| n.body)
        .collect();
    foreign.extend(
        spawn_arg_spans(unit)
            .into_iter()
            .filter(|&(a, b)| a > open && b < close),
    );
    let mut call_lines: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for c in &graph.calls[f] {
        call_lines.entry(c.token).or_default().push(c.callee);
    }

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = open + 1;
    while i < close.min(toks.len()) {
        if let Some(&(_, b)) = foreign.iter().find(|&&(a, b)| a <= i && i <= b) {
            i = b + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            guards.retain(|g| !(g.name.is_none() && depth <= g.depth));
            i += 1;
            continue;
        }
        if unit.is_test_line(t.line) {
            i += 1;
            continue;
        }
        // `drop(g)` releases a named guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let victim = &toks[i + 2].text;
            guards.retain(|g| g.name.as_deref() != Some(victim));
            i += 4;
            continue;
        }
        // Acquisition via the wrapper: `lock_ignore_poison(&x.y.lock_name)`.
        let mut acquisition: Option<(String, usize, usize)> = None; // (lock, expr start, resume)
        if t.kind == TokenKind::Ident
            && LOCK_WRAPPERS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let end = close_paren(toks, i + 1);
            let lock = toks[i + 2..end]
                .iter()
                .rev()
                .find(|a| a.kind == TokenKind::Ident)
                .map(|a| a.text.clone())
                .unwrap_or_else(|| "<lock>".to_string());
            acquisition = Some((lock, i, end + 1));
        }
        // Acquisition via a nullary guard method: `x.lock()` / `.read()` / `.write()`.
        if acquisition.is_none()
            && t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| LOCK_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let (lock, start) = receiver_of(toks, i);
            acquisition = Some((lock, start, i + 4));
        }
        if let Some((lock, start, resume)) = acquisition {
            facts.acquires.insert(lock.clone());
            let held: Vec<String> = dedup_locks(&guards);
            for h in &held {
                if *h != lock {
                    facts.edges.push((h.clone(), lock.clone(), t.line));
                }
            }
            match binding_before(toks, start) {
                Some(name) if name == "_" => {} // dropped immediately
                name => guards.push(Guard { name, lock, depth }),
            }
            i = resume;
            continue;
        }
        // Blocking operation: `.op(` or `::op(`.
        if t.kind == TokenKind::Ident
            && BLOCKING_OPS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i > 0
            && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"))
        {
            let op = t.text.clone();
            if facts.first_block.is_none() {
                facts.first_block = Some((op.clone(), t.line));
            }
            let mut held = dedup_locks(&guards);
            if CONDVAR_WAITS.contains(&op.as_str()) {
                // The guard passed to the wait is exempt: blocking on
                // its own condition is the point of a condvar.
                let end = close_paren(toks, i + 1);
                let args: BTreeSet<&str> = toks[i + 2..end]
                    .iter()
                    .filter(|a| a.kind == TokenKind::Ident)
                    .map(|a| a.text.as_str())
                    .collect();
                let consumed: BTreeSet<String> = guards
                    .iter()
                    .filter(|g| g.name.as_deref().is_some_and(|n| args.contains(n)))
                    .map(|g| g.lock.clone())
                    .collect();
                held.retain(|l| !consumed.contains(l));
            }
            if !held.is_empty() {
                facts.blocked.push((op, t.line, held));
            }
            i += 2;
            continue;
        }
        // Resolved call while holding locks.
        if let Some(callees) = call_lines.get(&i) {
            let held = dedup_locks(&guards);
            if !held.is_empty() {
                for &callee in callees {
                    facts.calls_held.push((callee, t.line, held.clone()));
                }
            }
        }
        i += 1;
    }
    facts
}

/// The distinct locks currently held, in acquisition order.
fn dedup_locks(guards: &[Guard]) -> Vec<String> {
    let mut seen = BTreeSet::new();
    guards
        .iter()
        .filter(|g| seen.insert(g.lock.clone()))
        .map(|g| g.lock.clone())
        .collect()
}

/// Transitive lock set a function may acquire (memoized; cycles in the
/// call graph contribute their partial set).
fn trans_acquires(
    f: usize,
    facts: &[FnFacts],
    graph: &CrateGraph,
    memo: &mut Vec<Option<BTreeSet<String>>>,
    visiting: &mut Vec<bool>,
) -> BTreeSet<String> {
    if let Some(m) = &memo[f] {
        return m.clone();
    }
    if visiting[f] {
        return facts[f].acquires.clone();
    }
    visiting[f] = true;
    let mut out = facts[f].acquires.clone();
    for c in &graph.calls[f] {
        out.extend(trans_acquires(c.callee, facts, graph, memo, visiting));
    }
    visiting[f] = false;
    memo[f] = Some(out.clone());
    out
}

/// A blocking site reached transitively: `(op, fn name, line)`.
type BlockSite = (String, String, u32);

/// First blocking op a function may reach (memoized).
fn trans_block(
    f: usize,
    facts: &[FnFacts],
    graph: &CrateGraph,
    memo: &mut Vec<Option<Option<BlockSite>>>,
    visiting: &mut Vec<bool>,
) -> Option<BlockSite> {
    if let Some(m) = &memo[f] {
        return m.clone();
    }
    if visiting[f] {
        return None;
    }
    visiting[f] = true;
    let mut out = facts[f]
        .first_block
        .as_ref()
        .map(|(op, line)| (op.clone(), graph.fns[f].name.clone(), *line));
    if out.is_none() {
        for c in &graph.calls[f] {
            out = trans_block(c.callee, facts, graph, memo, visiting);
            if out.is_some() {
                break;
            }
        }
    }
    visiting[f] = false;
    memo[f] = Some(out.clone());
    out
}

/// Whether `from` can reach `to` in the lock-order graph (≥ 1 edge).
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut work: Vec<&str> = adj.get(from).into_iter().flatten().copied().collect();
    while let Some(n) = work.pop() {
        if n == to {
            return true;
        }
        if seen.insert(n) {
            work.extend(adj.get(n).into_iter().flatten().copied());
        }
    }
    false
}

/// Runs the pass over one crate's parsed files.
pub fn check(crate_key: &str, units: &[FileUnit], graph: &CrateGraph, out: &mut Vec<Diagnostic>) {
    if !SCOPE.contains(&crate_key) {
        return;
    }
    let mut facts: Vec<FnFacts> = Vec::with_capacity(graph.fns.len());
    for (f, node) in graph.fns.iter().enumerate() {
        if LOCK_WRAPPERS.contains(&node.name.as_str()) {
            facts.push(FnFacts::default());
        } else {
            facts.push(scan_fn(&units[node.file], node.file, graph, f));
        }
    }
    let mut acq_memo = vec![None; graph.fns.len()];
    let mut blk_memo = vec![None; graph.fns.len()];

    // Lock-order edges: direct plus through call sites, first site wins.
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for (f, fact) in facts.iter().enumerate() {
        let file = graph.fns[f].file;
        for (held, acquired, line) in &fact.edges {
            edges
                .entry((held.clone(), acquired.clone()))
                .or_insert((file, *line));
        }
        for (callee, line, held) in &fact.calls_held {
            let mut visiting = vec![false; graph.fns.len()];
            let reachable_locks =
                trans_acquires(*callee, &facts, graph, &mut acq_memo, &mut visiting);
            for h in held {
                for l in &reachable_locks {
                    if l != h {
                        edges.entry((h.clone(), l.clone())).or_insert((file, *line));
                    }
                }
            }
        }
    }
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held.as_str())
            .or_default()
            .insert(acquired.as_str());
    }
    for ((held, acquired), (file, line)) in &edges {
        if reaches(&adj, acquired.as_str(), held.as_str()) || held == acquired {
            push_diag(
                out,
                "lock-order",
                "structural",
                &units[*file].path,
                *line,
                format!(
                    "acquiring `{acquired}` while holding `{held}` completes a lock-order \
                     cycle (a reverse acquisition order exists elsewhere) — potential \
                     deadlock; pick one order and restructure the other path"
                ),
            );
        }
    }

    // Blocking while a lock is held: direct sites, then call chains.
    for (f, fact) in facts.iter().enumerate() {
        let file = graph.fns[f].file;
        for (op, line, held) in &fact.blocked {
            push_diag(
                out,
                "lock-order",
                "structural",
                &units[file].path,
                *line,
                format!(
                    "blocking `{op}` while holding lock(s) {} — release the guard before \
                     blocking, or the holder can stall every contender",
                    held_list(held)
                ),
            );
        }
        for (callee, line, held) in &fact.calls_held {
            let mut visiting = vec![false; graph.fns.len()];
            if let Some((op, in_fn, op_line)) =
                trans_block(*callee, &facts, graph, &mut blk_memo, &mut visiting)
            {
                push_diag(
                    out,
                    "lock-order",
                    "structural",
                    &units[file].path,
                    *line,
                    format!(
                        "call to `{}` while holding lock(s) {} may block: it reaches \
                         `{op}` (in `{in_fn}`, line {op_line})",
                        graph.fns[*callee].name,
                        held_list(held)
                    ),
                );
            }
        }
    }
}

/// Renders a held-lock list for messages: `` `a`, `b` ``.
fn held_list(held: &[String]) -> String {
    held.iter()
        .map(|l| format!("`{l}`"))
        .collect::<Vec<_>>()
        .join(", ")
}
