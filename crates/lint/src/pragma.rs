//! Inline suppression pragmas.
//!
//! Syntax, as a line comment on the offending line or the line above:
//!
//! ```text
//! // moped-lint: allow(rule-id) reason the contract does not apply here
//! // moped-lint: allow(rule-a, rule-b) one reason covering both
//! ```
//!
//! A pragma without a reason is itself a finding: the whole point of
//! the mechanism is that every exception is justified in place, so the
//! reviewer reads the why next to the what.

use crate::lexer::Comment;
use crate::rules::rule_by_id;
use crate::{Diagnostic, Severity};
use std::path::Path;

/// Marker every pragma comment starts with (after trimming).
const MARKER: &str = "moped-lint:";

/// One parsed suppression: `rule` findings on `lines` are dropped.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule id being allowed.
    pub rule: String,
    /// Lines the suppression covers (the pragma's own line and the next).
    pub lines: [u32; 2],
}

/// Parses every pragma in `comments`. Returns the suppressions plus
/// diagnostics for malformed pragmas (missing reason, unknown rule,
/// unparseable syntax).
pub fn parse_pragmas(path: &Path, comments: &[Comment]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    let mut bad = |line: u32, message: String| {
        diags.push(Diagnostic {
            rule: "invalid-pragma",
            severity: Severity::Error,
            pass: "pragma",
            path: path.to_path_buf(),
            line,
            message,
        });
    };
    for c in comments {
        if !c.is_line {
            continue;
        }
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            bad(
                c.line,
                format!(
                    "unrecognized moped-lint pragma `{rest}` — expected `allow(<rule>) <reason>`"
                ),
            );
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            bad(
                c.line,
                "pragma is missing `)` after the rule list".to_string(),
            );
            continue;
        };
        let Some(list) = args[..close].strip_prefix('(') else {
            bad(c.line, "pragma is missing `(` after `allow`".to_string());
            continue;
        };
        let reason = args[close + 1..].trim();
        if reason.is_empty() {
            bad(
                c.line,
                "pragma has no reason — `allow(<rule>)` must be followed by a justification"
                    .to_string(),
            );
            continue;
        }
        let mut any = false;
        for rule in list.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            if rule_by_id(rule).is_none() {
                bad(c.line, format!("pragma names unknown rule `{rule}`"));
                continue;
            }
            any = true;
            sups.push(Suppression {
                rule: rule.to_string(),
                lines: [c.line, c.line + 1],
            });
        }
        if !any && list.trim().is_empty() {
            bad(c.line, "pragma allows no rules".to_string());
        }
    }
    (sups, diags)
}

/// Drops findings covered by a suppression.
pub fn apply(diags: Vec<Diagnostic>, sups: &[Suppression]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            !sups
                .iter()
                .any(|s| s.rule == d.rule && s.lines.contains(&d.line))
        })
        .collect()
}

/// Like [`apply`], but tracks which suppressions actually matched a
/// finding and reports the rest as `stale-pragma`: an `allow` that
/// suppresses nothing is rot — the violation it excused is gone, and
/// the comment now only misleads. A stale-pragma finding can itself be
/// suppressed with `allow(stale-pragma) <reason>` on the line above
/// (for pragmas that guard platform- or cfg-dependent findings).
pub fn apply_tracked(path: &Path, diags: Vec<Diagnostic>, sups: &[Suppression]) -> Vec<Diagnostic> {
    let mut matched = vec![false; sups.len()];
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            let mut keep = true;
            for (i, s) in sups.iter().enumerate() {
                if s.rule == d.rule && s.lines.contains(&d.line) {
                    matched[i] = true;
                    keep = false;
                }
            }
            keep
        })
        .collect();
    let stale_rule = rule_by_id("stale-pragma");
    let stale = |line: u32, rule: &str| Diagnostic {
        rule: "stale-pragma",
        severity: stale_rule.map(|r| r.severity).unwrap_or(Severity::Warning),
        pass: "pragma",
        path: path.to_path_buf(),
        line,
        message: format!(
            "pragma `allow({rule})` suppresses nothing — the finding it excused is gone; \
             remove the pragma (or the fix regressed elsewhere)"
        ),
    };
    // First the ordinary rules; an `allow(stale-pragma)` covering the
    // pragma's line earns its keep by absorbing the staleness report.
    for i in 0..sups.len() {
        if matched[i] || sups[i].rule == "stale-pragma" {
            continue;
        }
        let line = sups[i].lines[0];
        if let Some(j) = sups
            .iter()
            .position(|s| s.rule == "stale-pragma" && s.lines.contains(&line))
        {
            matched[j] = true;
            continue;
        }
        out.push(stale(line, &sups[i].rule));
    }
    for (i, s) in sups.iter().enumerate() {
        if !matched[i] && s.rule == "stale-pragma" {
            out.push(stale(s.lines[0], &s.rule));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(src: &str) -> (Vec<Suppression>, Vec<Diagnostic>) {
        parse_pragmas(&PathBuf::from("x.rs"), &lex(src).comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (sups, diags) = run("// moped-lint: allow(panic-path) fault injection is the point\n");
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "panic-path");
        assert_eq!(sups[0].lines, [1, 2]);
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let (sups, diags) = run("// moped-lint: allow(panic-path)\n");
        assert!(sups.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-pragma");
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let (sups, diags) = run("// moped-lint: allow(no-such-rule) because\n");
        assert!(sups.is_empty());
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn multi_rule_pragma() {
        let (sups, diags) = run("// moped-lint: allow(panic-path, wall-clock) shared reason\n");
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 2);
    }

    #[test]
    fn unrelated_comments_ignored() {
        let (sups, diags) = run("// plain comment mentioning allow(panic-path)\n");
        assert!(sups.is_empty() && diags.is_empty());
    }
}
