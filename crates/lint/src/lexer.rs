//! A hand-rolled Rust lexer: the token stream behind every `moped-lint`
//! rule.
//!
//! The workspace builds offline, so the engine cannot lean on `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly.
//! It is deliberately *not* a full parser — rules match shallow token
//! sequences — but the lexer must be exact about the things that would
//! otherwise cause false findings:
//!
//! * comments (line, block, **nested** block) are trivia, collected
//!   separately so the pragma layer and the `allow-without-reason` rule
//!   can see them;
//! * string literals (plain, raw with any `#` count, byte, C) never
//!   leak identifiers — `"Instant::now"` inside a string is data, not a
//!   call;
//! * char literals and lifetimes are disambiguated (`'a'` vs `&'a str`);
//! * numbers are classified int vs float (so the float-hygiene rule can
//!   reason about `x == 1.0` without flagging `n == 4`).

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`Instant`, `fn`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`1.0`, `2.5e-3`, `1f64`).
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, with multi-char operators kept whole (`==`, `::`).
    Punct,
}

/// One token: classification, verbatim text, and the 1-based line it
/// starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// The token's source text (operators verbatim, literals including
    /// their quotes/prefixes).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A comment, kept out of the token stream but preserved for pragma
/// parsing and comment-adjacency checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (`== line` for line comments).
    pub end_line: u32,
    /// Comment body without the `//` / `/* */` markers, untrimmed.
    pub text: String,
    /// `true` for `// …`, `false` for `/* … */`.
    pub is_line: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All non-trivia tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so the greedy match below
/// picks `..=` over `..` over `.`.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `src`, separating trivia (comments) from tokens.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades to best-effort tokens rather than an error, so
/// the engine can still lint the rest of the file.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = self.text_since(start);
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(start, line),
                _ => self.punct(start, line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump(); // /
        self.bump(); // /
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.text_since(start);
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            is_line: true,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump(); // /
        self.bump(); // *
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        if depth != 0 {
            end = self.pos; // unterminated: comment runs to EOF
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            is_line: false,
        });
    }

    /// Consumes a `"…"` string body assuming the opening quote is next.
    fn string(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // opening "
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // escaped char, whatever it is
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, and raw
    /// identifiers (`r#fn`). Returns `true` if it consumed anything;
    /// `false` means the `r`/`b` is an ordinary identifier start.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let mut ahead = 1; // past the r/b
        let first = self.peek(0).unwrap_or(0);
        if first == b'b' && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        // Count raw-string hashes.
        let mut hashes = 0usize;
        while self.peek(ahead) == Some(b'#') {
            hashes += 1;
            ahead += 1;
        }
        match self.peek(ahead) {
            Some(b'"')
                if first == b'r' || ahead > 1 || hashes > 0 || self.peek(1) == Some(b'"') =>
            {
                // r"…", r#"…"#, br"…", b"…": consume prefix then body.
                for _ in 0..=ahead {
                    self.bump();
                }
                if hashes == 0 && !(first == b'r' || ahead == 2) {
                    // b"…" — escapes allowed, delegate to plain scanning.
                    while let Some(b) = self.bump() {
                        match b {
                            b'\\' => {
                                self.bump();
                            }
                            b'"' => break,
                            _ => {}
                        }
                    }
                } else {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    loop {
                        match self.bump() {
                            None => break,
                            Some(b'"') => {
                                let mut n = 0;
                                while n < hashes && self.peek(0) == Some(b'#') {
                                    self.bump();
                                    n += 1;
                                }
                                if n == hashes {
                                    break;
                                }
                            }
                            Some(_) => {}
                        }
                    }
                }
                self.push(TokenKind::Str, start, line);
                true
            }
            Some(b'\'') if first == b'b' && hashes == 0 && ahead == 1 => {
                // b'x' byte literal.
                self.bump(); // b
                self.quote();
                // Re-tag: `quote` pushed a Char/Lifetime without the prefix;
                // merge the prefix into its text.
                let text = self.text_since(start);
                if let Some(last) = self.out.tokens.last_mut() {
                    last.kind = TokenKind::Char;
                    last.text = text;
                    last.line = line;
                }
                true
            }
            Some(c) if hashes == 1 && first == b'r' && is_ident_start(c) => {
                // Raw identifier r#ident.
                self.bump(); // r
                self.bump(); // #
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokenKind::Ident, start, line);
                true
            }
            _ => {
                if is_ident_start(first) {
                    self.ident(start, line);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) with the opening
    /// quote still pending.
    fn quote(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while let Some(b) = self.peek(0) {
                    // Multi-char escapes (\u{…}, \x41) run to the quote.
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, start, line);
            }
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some(b'\'') {
                    // 'a'
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Char, start, line);
                } else {
                    // Lifetime: consume the identifier, no closing quote.
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                // Non-ident char literal: '(', '7', ' ', …
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, start, line);
            }
            None => self.push(TokenKind::Char, start, line),
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            // Radix literal: always an int.
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
            self.push(TokenKind::Int, start, line);
            return;
        }
        self.digits();
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                // `1..4` is a range, `1.max(2)` a method call, `x.0` is
                // handled elsewhere — only a digit or nothing continues
                // the float.
                Some(b'0'..=b'9') => {
                    float = true;
                    self.bump();
                    self.digits();
                }
                Some(c) if c == b'.' || is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.bump(); // trailing-dot float `1.`
                }
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.bump();
                if sign == 1 {
                    self.bump();
                }
                self.digits();
            }
        }
        // Type suffix (u32, f64, …) decides floatness when present.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            if self.src[suffix_start] == b'f' {
                float = true;
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, line);
    }

    fn digits(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.bump();
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn punct(&mut self, start: usize, line: u32) {
        for op in MULTI_PUNCT {
            let bytes = op.as_bytes();
            if self.src[self.pos..].starts_with(bytes) {
                for _ in 0..bytes.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, start, line);
                return;
            }
        }
        self.bump();
        self.push(TokenKind::Punct, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        let l = lex(r#"let s = "Instant::now() inside";"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("Instant")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r##"let s = r#"a "quoted" HashMap"# ;"##);
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(l.tokens.iter().any(|t| t.is_punct(";")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(
            kinds("1.0 2 0x1F 1e5 1.5e-3 1f64 3u32")
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>(),
            [
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int,
            ]
        );
        // `1..4` is int-dotdot-int, not floats.
        let k = kinds("1..4");
        assert_eq!(k[0].0, TokenKind::Int);
        assert_eq!(k[1].1, "..");
        assert_eq!(k[2].0, TokenKind::Int);
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let k = kinds("a == b != c :: d -> e");
        let puncts: Vec<_> = k
            .iter()
            .filter(|(kind, _)| *kind == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn line_comment_text_and_position() {
        let l = lex("x // moped-lint: allow(foo) reason\ny");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].text, " moped-lint: allow(foo) reason");
        assert!(l.comments[0].is_line);
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        let l = lex("let x = b'a'; let r#fn = 1; let s = b\"bytes\";");
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Char));
        assert!(l.tokens.iter().any(|t| t.is_ident("r#fn")));
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }
}
