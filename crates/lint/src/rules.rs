//! The rule catalog: each rule encodes one project contract as a check
//! over a file's token stream.
//!
//! Rules are shallow by design — they match token sequences, not types —
//! so each one is tuned to have zero false positives on the idioms this
//! workspace actually uses, and every deliberate exception is carried by
//! an inline `// moped-lint: allow(<rule>) <reason>` pragma rather than
//! by loosening the rule.

use std::path::Path;

use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, FileCtx, Severity};

/// Crates whose outputs must be a pure function of their inputs: the
/// planner core and every kernel under it, plus the scenario/catalog
/// layer that seeds them. See DESIGN.md §8.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "geometry",
    "simbr",
    "rtree",
    "kdtree",
    "octree",
    "collision",
    "hw",
    "env",
    "scenarios",
    "tune",
];

/// Static description of one rule.
pub struct Rule {
    /// Stable rule id, used in output and in `allow(...)` pragmas.
    pub id: &'static str,
    /// Default severity (escalated by `--deny warnings`).
    pub severity: Severity,
    /// One-line contract statement for `--list-rules` and docs.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&FileCtx<'_>, &mut Vec<Diagnostic>),
}

/// Every registered rule, in catalog order. `cargo-deps` also appears
/// here for `--list-rules`/pragma validation, but runs over manifests
/// (see [`crate::manifest`]) rather than through `check`.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        severity: Severity::Error,
        summary: "no Instant::now/SystemTime/thread_rng in deterministic crates",
        check: wall_clock,
    },
    Rule {
        id: "hash-collections",
        severity: Severity::Error,
        summary: "no HashMap/HashSet in deterministic crates (iteration order is nondeterministic)",
        check: hash_collections,
    },
    Rule {
        id: "panic-path",
        severity: Severity::Error,
        summary: "no unwrap()/expect()/panic!/todo!/unimplemented! in the serving layer, and \
                  no unguarded indexing/division/assert! on worker-reachable paths",
        check: panic_path,
    },
    Rule {
        id: "float-eq",
        severity: Severity::Error,
        summary: "no ==/!= between float expressions in geometry kernels (use epsilon helpers)",
        check: float_eq,
    },
    Rule {
        id: "unbounded-channel",
        severity: Severity::Error,
        summary: "no unbounded mpsc::channel() in the serving layer (bounded admission only)",
        check: unbounded_channel,
    },
    Rule {
        id: "mutex-receiver",
        severity: Severity::Error,
        summary: "no Mutex/RwLock-wrapped channel Receiver in the serving layer \
                  (serializes every dequeue; shard the queue instead)",
        check: mutex_receiver,
    },
    Rule {
        id: "nested-lock",
        severity: Severity::Warning,
        summary: "no second .lock() inside one function body (lock-ordering smell)",
        check: nested_lock,
    },
    Rule {
        id: "allow-without-reason",
        severity: Severity::Warning,
        summary: "#[allow(...)] requires an adjacent justification comment",
        check: allow_without_reason,
    },
    Rule {
        id: "print-in-lib",
        severity: Severity::Error,
        summary: "no println!/eprintln!/dbg! in library code (binaries, tests, examples exempt)",
        check: print_in_lib,
    },
    Rule {
        id: "no-recursion-in-hot-path",
        severity: Severity::Error,
        summary: "no recursive self-calls in simbr/collision search functions (iterate over \
                  explicit scratch instead)",
        check: no_recursion_in_hot_path,
    },
    Rule {
        id: "cargo-deps",
        severity: Severity::Error,
        summary:
            "Cargo.toml dependencies must be path-local or workspace-inherited (offline build)",
        check: |_, _| {}, // manifest rule: see crate::manifest::check_manifest
    },
    Rule {
        id: "lock-order",
        severity: Severity::Error,
        summary: "no lock-order cycles, and no blocking ops (park/recv/wait/join/send) while \
                  holding a lock",
        check: |_, _| {}, // structural pass: see crate::lock_order
    },
    Rule {
        id: "atomics-audit",
        severity: Severity::Error,
        summary: "no Ordering::Relaxed on atomics that gate park/unpark decisions \
                  (lost-wakeup class)",
        check: |_, _| {}, // structural pass: see crate::atomics
    },
    Rule {
        id: "stale-pragma",
        severity: Severity::Warning,
        summary: "every `moped-lint: allow` pragma must still suppress a finding \
                  (suppressions must not rot)",
        check: |_, _| {}, // pragma pass: see crate::pragma::apply_tracked
    },
];

/// Looks a rule up by id (for pragma validation).
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn applies(ctx: &FileCtx<'_>, crates: &[&str]) -> bool {
    crates.contains(&ctx.crate_key)
}

/// Emits a diagnostic for `rule_id` at `line`.
fn emit(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Diagnostic>,
    rule_id: &'static str,
    line: u32,
    msg: String,
) {
    let rule = rule_by_id(rule_id).unwrap_or(&RULES[0]);
    out.push(Diagnostic {
        rule: rule.id,
        severity: rule.severity,
        pass: "token",
        path: ctx.path.to_path_buf(),
        line,
        message: msg,
    });
}

/// rule `wall-clock` — wall-clock time and ambient randomness are the
/// two classic sources of silent nondeterminism; neither belongs in a
/// crate whose results must be bit-reproducible.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, DETERMINISTIC_CRATES) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
        {
            emit(
                ctx,
                out,
                "wall-clock",
                t.line,
                format!(
                    "`Instant::now()` in deterministic crate `{}` — planner results must not \
                     depend on wall-clock time; take time bounds as caller-provided inputs",
                    ctx.crate_key
                ),
            );
        } else if t.is_ident("SystemTime") || t.is_ident("thread_rng") {
            emit(
                ctx,
                out,
                "wall-clock",
                t.line,
                format!(
                    "`{}` in deterministic crate `{}` — use a seeded `StdRng` or caller-provided \
                     inputs instead",
                    t.text, ctx.crate_key
                ),
            );
        }
    }
}

/// rule `hash-collections` — `HashMap`/`HashSet` iteration order varies
/// run to run (SipHash keys are randomized upstream; even with a fixed
/// hasher, order is an implementation detail). Deterministic crates use
/// `BTreeMap`/`BTreeSet` or sorted drains instead. Any use is flagged:
/// a map that is never iterated today is one refactor away from being
/// iterated, and the B-tree swap is cheap at planner scales.
fn hash_collections(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, DETERMINISTIC_CRATES) {
        return;
    }
    for t in ctx.tokens {
        if ctx.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            emit(
                ctx,
                out,
                "hash-collections",
                t.line,
                format!(
                    "`{}` in deterministic crate `{}` — iteration order is nondeterministic; \
                     use `BTree{}` or a sorted drain",
                    t.text,
                    ctx.crate_key,
                    &t.text[4..],
                ),
            );
        }
    }
}

/// rule `panic-path` — the serving layer's contract (DESIGN.md §7.1) is
/// that no request can take a worker down: failures are typed values,
/// not unwinds. `unwrap`/`expect` and the panic macro family are banned
/// in non-test service code; deliberate panics (fault injection) carry
/// a pragma.
fn panic_path(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, &["service"]) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        let called = |name: &str| {
            t.is_punct(".")
                && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        };
        if called("unwrap") || called("expect") {
            let name = &toks[i + 1].text;
            emit(
                ctx,
                out,
                "panic-path",
                toks[i + 1].line,
                format!(
                    "`.{name}()` in the serving layer — return a typed error \
                     (`PlanFailure`/`RejectReason`) instead of panicking"
                ),
            );
        }
        let is_macro =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|t| t.is_punct("!"));
        for mac in ["panic", "todo", "unimplemented"] {
            if is_macro(mac) {
                emit(
                    ctx,
                    out,
                    "panic-path",
                    t.line,
                    format!(
                        "`{mac}!` in the serving layer — workers must fail with typed outcomes, \
                         not unwinds"
                    ),
                );
            }
        }
    }
}

/// Identifiers that mark an expression as float-valued for the
/// `float-eq` heuristic: float-returning geometry methods plus the
/// float-typed constant namespaces.
pub(crate) const FLOAT_METHODS: &[&str] = &["norm", "norm_sq", "dot", "sqrt", "hypot", "distance"];
const FLOAT_NAMESPACES: &[&str] = &["f64", "f32", "Vec3", "Mat3"];

/// rule `float-eq` — exact `==`/`!=` on floats silently encodes "these
/// two rounding chains are identical", which SAT/GJK kernels cannot
/// promise. The rule walks each comparison's operand windows; if either
/// side shows float evidence (a float literal, an `f64::`/`Vec3::` path,
/// or a float-returning method), the comparison is flagged.
fn float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, &["geometry"]) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.is_test_line(t.line) {
            continue;
        }
        if operand_is_floaty(toks, i, Direction::Left)
            || operand_is_floaty(toks, i, Direction::Right)
        {
            emit(
                ctx,
                out,
                "float-eq",
                t.line,
                format!(
                    "`{}` between float expressions — compare with an epsilon \
                     (e.g. `(a - b).abs() <= eps` or `v.norm_sq() < eps`)",
                    t.text
                ),
            );
        }
    }
}

enum Direction {
    Left,
    Right,
}

/// Scans one operand of the comparison at `op_idx` for float evidence,
/// stopping at expression boundaries (statement/brace/argument edges
/// and short-circuit operators) so evidence never leaks across them.
fn operand_is_floaty(toks: &[Token], op_idx: usize, dir: Direction) -> bool {
    const BOUNDARY: &[&str] = &[
        ";", ",", "{", "}", "&&", "||", "=", "=>", "->", "?", "return", "if", "while", "match",
    ];
    // Delimiters that deepen the window, oriented by scan direction.
    let (deepen, shallow): (&[&str], &[&str]) = match dir {
        Direction::Left => (&[")", "]"], &["(", "["]),
        Direction::Right => (&["(", "["], &[")", "]"]),
    };
    let mut depth: i32 = 0;
    let mut idx = op_idx;
    for _ in 0..64 {
        idx = match dir {
            Direction::Left => match idx.checked_sub(1) {
                Some(n) => n,
                None => return false,
            },
            Direction::Right => idx + 1,
        };
        let Some(t) = toks.get(idx) else {
            return false;
        };
        if t.kind == TokenKind::Punct && deepen.contains(&t.text.as_str()) {
            depth += 1;
            continue;
        }
        if t.kind == TokenKind::Punct && shallow.contains(&t.text.as_str()) {
            depth -= 1;
            if depth < 0 {
                return false; // left the enclosing group: operand ended
            }
            continue;
        }
        if depth == 0 && BOUNDARY.contains(&t.text.as_str()) {
            return false;
        }
        match t.kind {
            TokenKind::Float => return true,
            TokenKind::Ident => {
                if FLOAT_METHODS.contains(&t.text.as_str()) {
                    return true;
                }
                // `f64::EPSILON`, `Vec3::ZERO`, … — the namespace ident is
                // evidence only when used as a path, so a local variable
                // that merely shadows the name cannot trip it.
                if FLOAT_NAMESPACES.contains(&t.text.as_str())
                    && toks.get(idx + 1).is_some_and(|t| t.is_punct("::"))
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// rule `unbounded-channel` — `mpsc::channel()` buffers without bound;
/// the serving layer's admission contract is "reject, don't buffer", so
/// every channel must be a bounded `sync_channel`.
fn unbounded_channel(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, &["service"]) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("mpsc")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("channel"))
        {
            emit(
                ctx,
                out,
                "unbounded-channel",
                t.line,
                "unbounded `mpsc::channel()` in the serving layer — use a bounded \
                 `mpsc::sync_channel(capacity)` so backpressure is explicit"
                    .to_string(),
            );
        }
    }
}

/// rule `mutex-receiver` — a `Mutex<Receiver<_>>` shared by a worker
/// pool funnels every dequeue through one lock, so adding workers adds
/// contention instead of throughput: the exact pathology the sharded
/// work-stealing queue replaced (DESIGN.md §7). Dequeue paths must pull
/// from per-worker shards, never from a lock-wrapped channel end.
fn mutex_receiver(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, &["service"]) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        if !(t.is_ident("Mutex") || t.is_ident("RwLock"))
            || !toks.get(i + 1).is_some_and(|t| t.is_punct("<"))
        {
            continue;
        }
        // Skip a path qualifier (`mpsc::`, `std::sync::mpsc::`) so the
        // fully-qualified spelling cannot dodge the rule.
        let mut j = i + 2;
        while toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(j + 1).is_some_and(|t| t.is_punct("::"))
        {
            j += 2;
        }
        if toks.get(j).is_some_and(|t| t.is_ident("Receiver")) {
            emit(
                ctx,
                out,
                "mutex-receiver",
                t.line,
                format!(
                    "`{}<Receiver<_>>` in the serving layer — a lock-wrapped channel end \
                     serializes every dequeue across the pool; use per-worker shards with \
                     work stealing (`queue::ShardedQueue`) instead",
                    t.text
                ),
            );
        }
    }
}

/// rule `nested-lock` — two `.lock()` calls inside one function body
/// mean two guards can be alive at once; without a documented ordering
/// that is a deadlock waiting for a second call path. The pool keeps
/// one-lock-per-function discipline (helpers release before the next
/// acquire); a justified pragma marks any deliberate exception.
fn nested_lock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, &["service"]) {
        return;
    }
    let toks = ctx.tokens;
    // Collect function body spans (token index ranges, innermost wins).
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        // Find the body's opening brace, then match it.
        let mut j = i + 1;
        let mut open = None;
        while let Some(tok) = toks.get(j) {
            if tok.is_punct("{") {
                open = Some(j);
                break;
            }
            if tok.is_punct(";") {
                break; // trait method declaration: no body
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while let Some(tok) = toks.get(k) {
            if tok.is_punct("{") {
                depth += 1;
            } else if tok.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        spans.push((open, k));
    }
    // Find `.lock()` call sites and attribute each to its innermost fn.
    let mut per_span: Vec<Vec<&Token>> = vec![Vec::new(); spans.len()];
    for (i, t) in toks.iter().enumerate() {
        let is_lock = t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("));
        if !is_lock || ctx.is_test_line(t.line) {
            continue;
        }
        let innermost = spans
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| *a <= i && i <= *b)
            .min_by_key(|(_, (a, b))| b - a)
            .map(|(s, _)| s);
        if let Some(s) = innermost {
            per_span[s].push(&toks[i + 1]);
        }
    }
    for locks in per_span {
        for t in locks.iter().skip(1) {
            emit(
                ctx,
                out,
                "nested-lock",
                t.line,
                "second `.lock()` in one function body — overlapping guards risk lock-order \
                 inversion; split the function or document the ordering with a pragma"
                    .to_string(),
            );
        }
    }
}

/// Function-name prefixes that mark the neighbor-search and collision
/// hot paths for `no-recursion-in-hot-path`.
const HOT_PATH_PREFIXES: &[&str] = &[
    "nearest",
    "near",
    "search",
    "filter",
    "config_free",
    "motion_free",
];

/// rule `no-recursion-in-hot-path` — the flat-arena engine exists so the
/// per-query hot paths run allocation-free iterative loops over reusable
/// scratch; a recursive self-call reintroduces unbounded stack growth
/// and per-level call overhead, and silently defeats the zero-alloc
/// contract the `hot_path_alloc` tests pin. Search-shaped functions
/// (see [`HOT_PATH_PREFIXES`]) in `simbr` and `collision` must not call
/// themselves.
fn no_recursion_in_hot_path(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !applies(ctx, &["simbr", "collision"]) {
        return;
    }
    let toks = ctx.tokens;
    // Collect (name, body span) for every hot-path function.
    let mut fns: Vec<(&str, usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let name = name_tok.text.as_str();
        if !HOT_PATH_PREFIXES.iter().any(|p| name.starts_with(p)) {
            continue;
        }
        // Find the body's opening brace, then match it.
        let mut j = i + 2;
        let mut open = None;
        while let Some(tok) = toks.get(j) {
            if tok.is_punct("{") {
                open = Some(j);
                break;
            }
            if tok.is_punct(";") {
                break; // trait method declaration: no body
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while let Some(tok) = toks.get(k) {
            if tok.is_punct("{") {
                depth += 1;
            } else if tok.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        fns.push((name, open, k));
    }
    // Flag calls of the function's own name inside its body.
    for &(name, open, close) in &fns {
        for i in (open + 1)..close.min(toks.len()) {
            let t = &toks[i];
            if !t.is_ident(name)
                || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                || ctx.is_test_line(t.line)
            {
                continue;
            }
            // `fn name(` inside the span is a nested definition, not a call.
            if i > 0 && toks[i - 1].is_ident("fn") {
                continue;
            }
            emit(
                ctx,
                out,
                "no-recursion-in-hot-path",
                t.line,
                format!(
                    "`{name}` calls itself — hot-path search functions must be iterative \
                     (explicit frontier/stack over reusable scratch), not recursive"
                ),
            );
        }
    }
}

/// rule `print-in-lib` — library crates speak through return values and
/// the metrics/obs layers, never stdout/stderr: a stray `println!` in a
/// kernel interleaves with the machine-readable output of whatever
/// binary embeds it, and `dbg!` is debug noise that ships. Binary
/// targets (`src/bin/`, `main.rs`) own their streams and are exempt, as
/// are tests, benches, and examples.
fn print_in_lib(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.is_test_file || is_binary_target(ctx.path) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        let is_macro =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|t| t.is_punct("!"));
        for mac in ["println", "eprintln", "print", "eprint", "dbg"] {
            if is_macro(mac) {
                emit(
                    ctx,
                    out,
                    "print-in-lib",
                    t.line,
                    format!(
                        "`{mac}!` in library crate `{}` — libraries report through return \
                         values and the obs/metrics layers; only binary targets may print",
                        ctx.crate_key
                    ),
                );
            }
        }
    }
}

/// Whether `path` is a binary target: any file under a `bin/` directory
/// or a crate-root `main.rs`.
fn is_binary_target(path: &Path) -> bool {
    path.components().any(|c| c.as_os_str() == "bin")
        || path.file_name().is_some_and(|f| f == "main.rs")
}

/// rule `allow-without-reason` — every `#[allow(...)]` is a contract
/// exception and must say why, as a comment on the same line or the
/// line directly above.
fn allow_without_reason(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct("#") {
            continue;
        }
        // `#[allow(` or `#![allow(`
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        let is_allow = toks.get(j).is_some_and(|t| t.is_punct("["))
            && toks.get(j + 1).is_some_and(|t| t.is_ident("allow"))
            && toks.get(j + 2).is_some_and(|t| t.is_punct("("));
        if !is_allow {
            continue;
        }
        let line = t.line;
        // Doc comments (`///`, `//!`, `/** */`) document the *item*, not
        // the allow — they do not count as justification.
        let justified = ctx.comments.iter().any(|c| {
            !c.text.starts_with('/')
                && !c.text.starts_with('!')
                && (c.end_line + 1 == line || (c.line <= line && line <= c.end_line))
        });
        if !justified {
            emit(
                ctx,
                out,
                "allow-without-reason",
                line,
                "`#[allow(...)]` without a justification comment — say why the lint does not \
                 apply, on this line or the line above"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_lookup_works() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(
                RULES.iter().skip(i + 1).all(|o| o.id != r.id),
                "duplicate rule id {}",
                r.id
            );
            assert!(rule_by_id(r.id).is_some());
        }
        assert!(rule_by_id("no-such-rule").is_none());
    }
}
