//! `moped-lint`: workspace-wide static analysis enforcing the MOPED
//! determinism, panic-freedom, and float-hygiene contracts.
//!
//! The chaos suite (PR 2) *observes* the determinism contract — "a
//! successful retry is bit-identical to an unfaulted run" — but nothing
//! stopped the next change from reintroducing a wall-clock read into the
//! planner core or an `unwrap()` into a worker hot path. This crate
//! closes that gap statically: a hand-rolled Rust lexer (the workspace
//! builds offline, so no `syn`) feeding flat token rules plus three
//! structural passes — [`lock_order`], [`panic_flow`], [`atomics`] —
//! that walk a brace-matched item tree ([`structure`]) and a per-crate
//! call-graph approximation ([`callgraph`]). See DESIGN.md §8 for the
//! rule catalog and [`rules::RULES`] for the token-rule code.
//!
//! Deliberate exceptions are carried in-place by pragmas:
//!
//! ```text
//! // moped-lint: allow(panic-path) fault injection: the panic IS the fault
//! ```
//!
//! where the trailing reason is mandatory — a pragma without one is
//! itself a finding.
//!
//! Run over the workspace with `cargo run -p moped-lint -- --deny
//! warnings` (wired into `scripts/verify.sh`), or embed via
//! [`lint_workspace`] / [`lint_rust_source`] as the self-check test
//! does.

#![deny(missing_docs)]

pub mod atomics;
pub mod callgraph;
pub mod lexer;
pub mod lock_order;
pub mod manifest;
pub mod panic_flow;
pub mod pragma;
pub mod rules;
pub mod structure;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{Comment, Token};

/// How severe a finding is. `Warning` still fails the build under
/// `--deny warnings` (the mode `scripts/verify.sh` uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A contract smell; fix it or justify it with a pragma.
    Warning,
    /// A contract violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a rule violated at a file/line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (or `invalid-pragma`).
    pub rule: &'static str,
    /// Severity before any `--deny warnings` escalation.
    pub severity: Severity,
    /// Which analysis layer produced the finding: `"token"` (flat token
    /// rules), `"structural"` (item-tree/call-graph passes),
    /// `"pragma"` (pragma validation and staleness), or `"manifest"`.
    pub pass: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human explanation, including the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Renders as the machine-readable JSON object used by `--json`.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","pass":"{}","severity":"{}","path":"{}","line":{},"message":"{}"}}"#,
            self.rule,
            self.pass,
            self.severity,
            json_escape(&self.path.display().to_string()),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Pushes a diagnostic for `rule_id`, taking the severity from the rule
/// catalog — the shared emit path of the structural passes.
pub(crate) fn push_diag(
    out: &mut Vec<Diagnostic>,
    rule_id: &'static str,
    pass: &'static str,
    path: &Path,
    line: u32,
    message: String,
) {
    out.push(Diagnostic {
        rule: rule_id,
        severity: rules::rule_by_id(rule_id)
            .map(|r| r.severity)
            .unwrap_or(Severity::Warning),
        pass,
        path: path.to_path_buf(),
        line,
        message,
    });
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity,
            self.rule,
            self.path.display(),
            self.line,
            self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path (diagnostics point here).
    pub path: &'a Path,
    /// Which crate the file belongs to, as the directory key under
    /// `crates/` (`"geometry"`, `"service"`, …) or `"moped"` for the
    /// facade crate's own `src/`, `tests/`, and `examples/`.
    pub crate_key: &'a str,
    /// Whole-file test context: the file lives under `tests/`,
    /// `benches/`, or `examples/`.
    pub is_test_file: bool,
    /// The token stream.
    pub tokens: &'a [Token],
    /// The comments (for pragmas and comment-adjacency rules).
    pub comments: &'a [Comment],
    /// Line ranges covered by `#[cfg(test)]` items.
    pub test_regions: &'a [(u32, u32)],
}

impl FileCtx<'_> {
    /// Whether `line` is test code (a test file, or inside a
    /// `#[cfg(test)]` region) — most rules skip those lines: tests may
    /// unwrap, use wall clocks, and hash freely.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }
}

/// Computes the line ranges of `#[cfg(test)]` items by brace-matching
/// the item that follows each attribute.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = tokens[i].is_punct("#")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(")"))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct("]"));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Scan to the item's body (first `{`) or its end (`;` for a
        // braceless item like `#[cfg(test)] use …;`), then brace-match.
        let mut j = i + 7;
        let mut end_line = start_line;
        while let Some(t) = tokens.get(j) {
            if t.is_punct(";") {
                end_line = t.line;
                break;
            }
            if t.is_punct("{") {
                let mut depth = 0usize;
                while let Some(t) = tokens.get(j) {
                    if t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line.max(start_line)));
        i = j.max(i + 7);
    }
    regions
}

/// One parsed source file: the shared input of the token rules and the
/// structural passes (lexed once, item tree built once).
pub struct FileUnit {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Whole-file test context (under `tests/`, `benches/`, `examples/`).
    pub is_test_file: bool,
    /// Lexer output: tokens and comments.
    pub lexed: lexer::Lexed,
    /// Line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// The brace-matched item/block tree.
    pub tree: structure::ItemTree,
}

impl FileUnit {
    /// Lexes and parses one file.
    pub fn parse(path: PathBuf, is_test_file: bool, src: &str) -> FileUnit {
        let lexed = lexer::lex(src);
        let test_regions = test_regions(&lexed.tokens);
        let tree = structure::build(&lexed.tokens);
        FileUnit {
            path,
            is_test_file,
            lexed,
            test_regions,
            tree,
        }
    }

    /// Whether `line` is test code (see [`FileCtx::is_test_line`]).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }
}

/// Lints one crate's Rust sources as a unit: token rules per file, then
/// the structural passes (which need the whole crate for call-edge
/// propagation), then pragma application with staleness tracking. This
/// is the engine's core entry point. Files are `(path, is_test_file,
/// source)` triples.
pub fn lint_crate(crate_key: &str, files: &[(PathBuf, bool, String)]) -> Vec<Diagnostic> {
    let units: Vec<FileUnit> = files
        .iter()
        .map(|(path, is_test, src)| FileUnit::parse(path.clone(), *is_test, src))
        .collect();
    let mut found = Vec::new();
    for unit in &units {
        let ctx = FileCtx {
            path: &unit.path,
            crate_key,
            is_test_file: unit.is_test_file,
            tokens: &unit.lexed.tokens,
            comments: &unit.lexed.comments,
            test_regions: &unit.test_regions,
        };
        for rule in rules::RULES {
            (rule.check)(&ctx, &mut found);
        }
    }
    let graph = callgraph::build(&units);
    lock_order::check(crate_key, &units, &graph, &mut found);
    panic_flow::check(crate_key, &units, &graph, &mut found);
    atomics::check(crate_key, &units, &graph, &mut found);
    // Pragmas apply per file; unmatched suppressions become
    // stale-pragma findings.
    let mut out = Vec::new();
    let mut remaining = found;
    for unit in &units {
        let (mine, rest): (Vec<_>, Vec<_>) =
            remaining.into_iter().partition(|d| d.path == unit.path);
        remaining = rest;
        let (sups, mut pragma_diags) = pragma::parse_pragmas(&unit.path, &unit.lexed.comments);
        out.extend(pragma::apply_tracked(&unit.path, mine, &sups));
        out.append(&mut pragma_diags);
    }
    out.append(&mut remaining);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Lints one Rust source file with an explicit crate context — a
/// single-file crate as far as the structural passes are concerned.
/// The fixture tests call this directly.
pub fn lint_rust_source(
    path: &Path,
    crate_key: &str,
    is_test_file: bool,
    src: &str,
) -> Vec<Diagnostic> {
    lint_crate(
        crate_key,
        &[(path.to_path_buf(), is_test_file, src.to_string())],
    )
}

/// Derives the crate key and test-file flag from a workspace-relative
/// path (see [`FileCtx::crate_key`]).
pub fn classify_path(rel: &Path) -> (String, bool) {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let crate_key = if comps.first() == Some(&"crates") && comps.len() > 1 {
        comps[1].to_string()
    } else {
        "moped".to_string()
    };
    let is_test = comps
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"));
    (crate_key, is_test)
}

/// Walks the workspace at `root` and lints every first-party Rust file
/// plus every manifest (including `vendor/*/Cargo.toml` — the vendored
/// subsets must stay offline-buildable too). Skips `target/`, `.git/`,
/// vendored *source* (third-party idiom is not ours to lint), and the
/// engine's own `tests/fixtures/` (deliberately seeded violations).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    let mut by_crate: BTreeMap<String, Vec<(PathBuf, bool, String)>> = BTreeMap::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        if rel.file_name().is_some_and(|n| n == "Cargo.toml") {
            out.extend(manifest::check_manifest(&rel, &src));
        } else {
            let (crate_key, is_test) = classify_path(&rel);
            by_crate
                .entry(crate_key)
                .or_default()
                .push((rel, is_test, src));
        }
    }
    for (crate_key, group) in &by_crate {
        out.extend(lint_crate(crate_key, group));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures") {
                continue;
            }
            collect_files(root, &path, out)?;
        } else {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let in_vendor = rel
                .components()
                .next()
                .is_some_and(|c| c.as_os_str() == "vendor");
            let is_manifest = rel.file_name().is_some_and(|n| n == "Cargo.toml");
            let is_rust = rel.extension().is_some_and(|e| e == "rs");
            if is_manifest || (is_rust && !in_vendor) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn tail() {}\n";
        let lexed = lexer::lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn classify_paths() {
        let (k, t) = classify_path(Path::new("crates/geometry/src/gjk.rs"));
        assert_eq!((k.as_str(), t), ("geometry", false));
        let (k, t) = classify_path(Path::new("crates/core/tests/properties.rs"));
        assert_eq!((k.as_str(), t), ("core", true));
        let (k, t) = classify_path(Path::new("examples/quickstart.rs"));
        assert_eq!((k.as_str(), t), ("moped", true));
        let (k, t) = classify_path(Path::new("src/lib.rs"));
        assert_eq!((k.as_str(), t), ("moped", false));
    }

    #[test]
    fn pragma_suppresses_next_line() {
        let src = "// moped-lint: allow(wall-clock) deadline plumbing is injected by the caller\n\
                   fn f() { let t = Instant::now(); }\n";
        let d = lint_rust_source(Path::new("x.rs"), "core", false, src);
        assert!(d.is_empty(), "{d:?}");
        // Without the pragma the same source is flagged.
        let d = lint_rust_source(
            Path::new("x.rs"),
            "core",
            false,
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(d.len(), 1);
    }
}
