//! Fixture-file suite: every rule has one known-bad fixture (asserting
//! the exact line of every diagnostic) and one known-good fixture
//! (asserting silence). The fixtures live under `tests/fixtures/`, a
//! directory `lint_workspace` deliberately skips — they are seeded
//! violations, not workspace code.

use moped_lint::{lint_rust_source, manifest};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    (path, src)
}

/// Lints a fixture under an explicit crate identity and flattens the
/// diagnostics to `(rule, line)` pairs for exact comparison.
fn findings(name: &str, crate_key: &str) -> Vec<(&'static str, u32)> {
    let (path, src) = fixture(name);
    lint_rust_source(&path, crate_key, false, &src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn wall_clock_bad() {
    // Line 2 is the `use` naming SystemTime — importing the type is
    // already evidence; lines 5/10/11 are the reads.
    assert_eq!(
        findings("bad_wall_clock.rs", "core"),
        vec![
            ("wall-clock", 2),
            ("wall-clock", 5),
            ("wall-clock", 10),
            ("wall-clock", 11),
        ]
    );
}

#[test]
fn wall_clock_good() {
    assert_eq!(findings("good_wall_clock.rs", "core"), vec![]);
}

#[test]
fn hash_collections_bad() {
    assert_eq!(
        findings("bad_hash_collections.rs", "simbr"),
        vec![("hash-collections", 2), ("hash-collections", 4)]
    );
}

#[test]
fn hash_collections_good() {
    assert_eq!(findings("good_hash_collections.rs", "simbr"), vec![]);
}

#[test]
fn hash_collections_only_in_deterministic_crates() {
    // The same bad fixture is clean when it belongs to the serving
    // layer: crate scoping, not a global ban.
    assert_eq!(findings("bad_hash_collections.rs", "service"), vec![]);
}

#[test]
fn panic_path_bad() {
    assert_eq!(
        findings("bad_panic_path.rs", "service"),
        vec![
            ("panic-path", 4),
            ("panic-path", 5),
            ("panic-path", 7),
            ("panic-path", 9),
        ]
    );
}

#[test]
fn panic_path_good() {
    assert_eq!(findings("good_panic_path.rs", "service"), vec![]);
}

#[test]
fn float_eq_bad() {
    // Line 8's `len == 4` is an integer compare and must NOT appear.
    assert_eq!(
        findings("bad_float_eq.rs", "geometry"),
        vec![("float-eq", 4), ("float-eq", 5), ("float-eq", 6)]
    );
}

#[test]
fn float_eq_good() {
    assert_eq!(findings("good_float_eq.rs", "geometry"), vec![]);
}

#[test]
fn unbounded_channel_bad() {
    assert_eq!(
        findings("bad_unbounded_channel.rs", "service"),
        vec![("unbounded-channel", 5)]
    );
}

#[test]
fn unbounded_channel_good() {
    assert_eq!(findings("good_unbounded_channel.rs", "service"), vec![]);
}

#[test]
fn mutex_receiver_bad() {
    // Line 6: plain `Mutex<Receiver<_>>` field; line 9: fully-qualified
    // `RwLock<std::sync::mpsc::Receiver<_>>` in a signature.
    assert_eq!(
        findings("bad_mutex_receiver.rs", "service"),
        vec![("mutex-receiver", 6), ("mutex-receiver", 9)]
    );
}

#[test]
fn mutex_receiver_good() {
    assert_eq!(findings("good_mutex_receiver.rs", "service"), vec![]);
}

#[test]
fn mutex_receiver_only_in_service() {
    // A lock-wrapped receiver outside the serving layer (say, a bench
    // harness) is not the pool-serialization pathology: crate scoping.
    assert_eq!(findings("bad_mutex_receiver.rs", "bench"), vec![]);
}

#[test]
fn nested_lock_bad() {
    // The first `.lock()` (line 5) is legal; the overlapping second
    // one (line 6) is the finding.
    assert_eq!(
        findings("bad_nested_lock.rs", "service"),
        vec![("nested-lock", 6)]
    );
}

#[test]
fn nested_lock_good() {
    assert_eq!(findings("good_nested_lock.rs", "service"), vec![]);
}

#[test]
fn allow_without_reason_bad() {
    // Line 9's doc comment (line 8) does not count as justification.
    assert_eq!(
        findings("bad_allow_reason.rs", "core"),
        vec![("allow-without-reason", 5), ("allow-without-reason", 9)]
    );
}

#[test]
fn allow_without_reason_good() {
    assert_eq!(findings("good_allow_reason.rs", "core"), vec![]);
}

#[test]
fn print_in_lib_bad() {
    assert_eq!(
        findings("bad_print_in_lib.rs", "core"),
        vec![
            ("print-in-lib", 4),
            ("print-in-lib", 5),
            ("print-in-lib", 6),
            ("print-in-lib", 7),
            ("print-in-lib", 8),
        ]
    );
}

#[test]
fn print_in_lib_good() {
    assert_eq!(findings("good_print_in_lib.rs", "core"), vec![]);
}

#[test]
fn print_in_lib_exempts_binary_targets() {
    // The same bad fixture is clean under `src/bin/` or as a crate-root
    // `main.rs` — binaries own their stdout/stderr.
    let (_, src) = fixture("bad_print_in_lib.rs");
    for bin_path in ["crates/bench/src/bin/tool.rs", "crates/lint/src/main.rs"] {
        let d = lint_rust_source(Path::new(bin_path), "bench", false, &src);
        assert!(d.is_empty(), "{bin_path}: {d:?}");
    }
}

#[test]
fn invalid_pragmas_are_findings_and_do_not_suppress() {
    // A reasonless pragma (line 4) and an unknown-rule pragma (line 10)
    // are both diagnosed, and neither suppresses the `.unwrap()` on
    // line 6.
    assert_eq!(
        findings("bad_pragma.rs", "service"),
        vec![
            ("invalid-pragma", 4),
            ("panic-path", 6),
            ("invalid-pragma", 10),
        ]
    );
}

#[test]
fn cargo_deps_bad() {
    let (path, src) = fixture("bad_cargo_deps.toml");
    let got: Vec<(&str, u32)> = manifest::check_manifest(&path, &src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    // serde (registry version), rayon (inline table without path or
    // workspace), [dependencies.tokio] (git sub-table, reported at its
    // header), insta (registry version).
    assert_eq!(
        got,
        vec![
            ("cargo-deps", 8),
            ("cargo-deps", 9),
            ("cargo-deps", 12),
            ("cargo-deps", 16),
        ]
    );
}

#[test]
fn cargo_deps_good() {
    let (path, src) = fixture("good_cargo_deps.toml");
    let got = manifest::check_manifest(&path, &src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn hot_path_recursion_bad() {
    // Line 6: free-fn self-call; line 16: method self-call.
    assert_eq!(
        findings("bad_hot_path_recursion.rs", "simbr"),
        vec![
            ("no-recursion-in-hot-path", 6),
            ("no-recursion-in-hot-path", 16),
        ]
    );
    assert_eq!(
        findings("bad_hot_path_recursion.rs", "collision"),
        vec![
            ("no-recursion-in-hot-path", 6),
            ("no-recursion-in-hot-path", 16),
        ]
    );
}

#[test]
fn hot_path_recursion_good() {
    assert_eq!(findings("good_hot_path_recursion.rs", "simbr"), vec![]);
    // The rule is scoped: the same recursive fixture is clean outside the
    // hot-path crates.
    assert_eq!(findings("bad_hot_path_recursion.rs", "core"), vec![]);
}

#[test]
fn test_files_are_exempt_from_crate_rules() {
    // The same panic-path fixture is clean when the file itself is test
    // code (tests/, benches/, examples/).
    let (path, src) = fixture("bad_panic_path.rs");
    let d = lint_rust_source(&path, "service", true, &src);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn lock_order_cycle_bad() {
    // Line 14 closes the first->second edge, line 20 the reverse one;
    // together they form the deadlock cycle, so both sites are reported.
    assert_eq!(
        findings("bad_lock_order.rs", "service"),
        vec![("lock-order", 14), ("lock-order", 20)]
    );
}

#[test]
fn lock_order_cycle_good() {
    assert_eq!(findings("good_lock_order.rs", "service"), vec![]);
    // The structural passes are scoped to the serving layer: the same
    // inverted fixture is clean under a planner-crate identity.
    assert_eq!(findings("bad_lock_order.rs", "core"), vec![]);
}

#[test]
fn lock_blocking_bad() {
    // Line 12: a direct `recv` with the `inner` guard live; line 18: a
    // call that transitively reaches `join` with the guard live.
    assert_eq!(
        findings("bad_lock_blocking.rs", "service"),
        vec![("lock-order", 12), ("lock-order", 18)]
    );
}

#[test]
fn lock_blocking_good() {
    assert_eq!(findings("good_lock_blocking.rs", "service"), vec![]);
}

#[test]
fn worker_panic_bad() {
    // Lines 11-13: indexing, integer division, assert! in the spawned
    // worker's entry fn; line 19: indexing in a transitively reached fn.
    assert_eq!(
        findings("bad_worker_panic.rs", "service"),
        vec![
            ("panic-path", 11),
            ("panic-path", 12),
            ("panic-path", 13),
            ("panic-path", 19),
        ]
    );
}

#[test]
fn worker_panic_good() {
    // `offline_report` still indexes, but nothing a spawned thread runs
    // can reach it — reachability, not pattern-matching, drives the pass.
    assert_eq!(findings("good_worker_panic.rs", "service"), vec![]);
}

#[test]
fn relaxed_parking_bad() {
    // Line 16: the Relaxed gate read in the park loop; line 23: the
    // waker's Relaxed store to the same gate atom.
    assert_eq!(
        findings("bad_relaxed_parking.rs", "service"),
        vec![("atomics-audit", 16), ("atomics-audit", 23)]
    );
}

#[test]
fn relaxed_parking_good() {
    assert_eq!(findings("good_relaxed_parking.rs", "service"), vec![]);
}

#[test]
fn stale_pragma_bad() {
    assert_eq!(
        findings("bad_stale_pragma.rs", "core"),
        vec![("stale-pragma", 3)]
    );
}

#[test]
fn stale_pragma_good() {
    assert_eq!(findings("good_stale_pragma.rs", "core"), vec![]);
}
