//! Schema check for `--json` output, with a minimal hand-rolled JSON
//! parser (the workspace builds offline — no serde). Pins the exact
//! key set, key order independence, value types, and the closed
//! vocabularies of `severity` and `pass`, so downstream tooling can
//! rely on the shape without a schema registry.

use moped_lint::lint_rust_source;
use std::collections::BTreeMap;
use std::path::Path;

/// A parsed JSON scalar (the diagnostic object nests nothing).
#[derive(Debug, PartialEq)]
enum Scalar {
    Str(String),
    Num(i64),
}

/// Parses one flat JSON object of string/number values. Returns `None`
/// on any syntax error — the test treats that as failure.
fn parse_flat_object(s: &str) -> Option<BTreeMap<String, Scalar>> {
    let mut out = BTreeMap::new();
    let b: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    let ws = |b: &[char], i: &mut usize| {
        while b.get(*i).is_some_and(|c| c.is_whitespace()) {
            *i += 1
        }
    };
    let string = |b: &[char], i: &mut usize| -> Option<String> {
        if b.get(*i) != Some(&'"') {
            return None;
        }
        *i += 1;
        let mut out = String::new();
        loop {
            match b.get(*i)? {
                '"' => {
                    *i += 1;
                    return Some(out);
                }
                '\\' => {
                    *i += 1;
                    match b.get(*i)? {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex: String = b.get(*i + 1..*i + 5)?.iter().collect();
                            let code = u32::from_str_radix(&hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *i += 4;
                        }
                        _ => return None,
                    }
                    *i += 1;
                }
                c => {
                    out.push(*c);
                    *i += 1;
                }
            }
        }
    };
    ws(&b, &mut i);
    if b.get(i) != Some(&'{') {
        return None;
    }
    i += 1;
    loop {
        ws(&b, &mut i);
        if b.get(i) == Some(&'}') {
            i += 1;
            break;
        }
        let key = string(&b, &mut i)?;
        ws(&b, &mut i);
        if b.get(i) != Some(&':') {
            return None;
        }
        i += 1;
        ws(&b, &mut i);
        let value = if b.get(i) == Some(&'"') {
            Scalar::Str(string(&b, &mut i)?)
        } else {
            let start = i;
            while b.get(i).is_some_and(|c| c.is_ascii_digit() || *c == '-') {
                i += 1;
            }
            Scalar::Num(b[start..i].iter().collect::<String>().parse().ok()?)
        };
        out.insert(key, value);
        ws(&b, &mut i);
        if b.get(i) == Some(&',') {
            i += 1;
        }
    }
    ws(&b, &mut i);
    (i == b.len()).then_some(out)
}

/// A source seeded to produce one finding from every pass layer: a
/// token-rule hit (`unwrap`), a structural hit (worker indexing), and a
/// pragma hit (stale suppression).
const SEEDED: &str = "\
// moped-lint: allow(wall-clock) this read is long gone
pub fn start() { std::thread::spawn(move || work(3)); }
fn work(i: usize) {
    let xs = vec![1, 2];
    let x = xs[i];
    let y = xs.get(x).unwrap();
    consume(y);
}
";

#[test]
fn json_objects_match_the_documented_schema() {
    let diags = lint_rust_source(
        Path::new("crates/service/src/x.rs"),
        "service",
        false,
        SEEDED,
    );
    assert!(
        diags.len() >= 3,
        "want token+structural+pragma findings: {diags:?}"
    );
    let mut passes_seen = Vec::new();
    for d in &diags {
        let obj = parse_flat_object(&d.to_json())
            .unwrap_or_else(|| panic!("unparseable JSON: {}", d.to_json()));
        let keys: Vec<&str> = obj.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec!["line", "message", "pass", "path", "rule", "severity"],
            "exact key set, no extras"
        );
        let s = |k: &str| match &obj[k] {
            Scalar::Str(v) => v.clone(),
            Scalar::Num(n) => panic!("key {k} must be a string, got {n}"),
        };
        assert!(
            matches!(obj["line"], Scalar::Num(n) if n >= 1),
            "line is a positive number"
        );
        assert!(matches!(s("severity").as_str(), "warning" | "error"));
        assert!(
            matches!(
                s("pass").as_str(),
                "token" | "structural" | "pragma" | "manifest"
            ),
            "pass vocabulary: {}",
            s("pass")
        );
        assert!(!s("rule").is_empty() && !s("message").is_empty());
        assert_eq!(s("path"), "crates/service/src/x.rs");
        passes_seen.push(s("pass"));
    }
    for want in ["token", "structural", "pragma"] {
        assert!(
            passes_seen.iter().any(|p| p == want),
            "seeded source must exercise the {want} pass; saw {passes_seen:?}"
        );
    }
}

#[test]
fn json_escaping_round_trips() {
    // A message with quotes/backslashes must stay parseable.
    let src = "fn f() { let p = \"a\\\\b\"; p.unwrap(); }\n";
    for d in lint_rust_source(Path::new("x\"y.rs"), "service", false, src) {
        assert!(
            parse_flat_object(&d.to_json()).is_some(),
            "escaping broke: {}",
            d.to_json()
        );
    }
}
