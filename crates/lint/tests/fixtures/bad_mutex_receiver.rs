// Fixture: seeded `mutex-receiver` violations (linted as crate `service`).
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

struct Pool {
    jobs: Mutex<Receiver<u64>>, // line 6: flagged — one lock gates every dequeue
}

fn wrap(rx: std::sync::mpsc::Receiver<u64>) -> std::sync::RwLock<std::sync::mpsc::Receiver<u64>> {
    std::sync::RwLock::new(rx) // the fully-qualified type on line 9 is the finding
}
