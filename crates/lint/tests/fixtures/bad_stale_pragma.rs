//! Seeded rotten suppression: the wall-clock read this pragma once
//! excused was refactored away, so the `allow` now suppresses nothing.
// moped-lint: allow(wall-clock) timing is injected by the caller
pub fn pure_addition(x: u64) -> u64 {
    x + 1
}
