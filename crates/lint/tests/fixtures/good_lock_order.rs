//! The same two-lock structure with a single global order (`first`
//! before `second`, everywhere) — no cycle, no finding. The transfer
//! path also shows a call made under a lock whose callee only ever
//! acquires `second`: the edge is recorded but lies on no cycle.
use std::sync::Mutex;

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn both(&self) -> u32 {
        let a = lock_ignore_poison(&self.first);
        let b = lock_ignore_poison(&self.second);
        *a + *b
    }

    pub fn transfer(&self) -> u32 {
        let a = lock_ignore_poison(&self.first);
        *a + self.peek_second()
    }

    fn peek_second(&self) -> u32 {
        let b = lock_ignore_poison(&self.second);
        *b
    }
}
