// Fixture: serving-layer code that respects `panic-path`.

enum Failure {
    Missing,
}

fn respond(result: Option<u32>) -> Result<u32, Failure> {
    // `unwrap_or_else` and the `?` operator are fine: no unwind path.
    result.ok_or(Failure::Missing)
}

fn justified() -> u32 {
    let chaos: Option<u32> = None;
    // moped-lint: allow(panic-path) fixture pragma: deliberate fault injection
    chaos.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
