// Fixture: serving-layer code that respects `unbounded-channel`.
use std::sync::mpsc;

fn open_bounded(capacity: usize) -> (mpsc::SyncSender<u64>, mpsc::Receiver<u64>) {
    mpsc::sync_channel(capacity) // bounded: backpressure is explicit
}
