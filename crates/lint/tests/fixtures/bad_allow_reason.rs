// Fixture: seeded `allow-without-reason` violations (any crate).
// NOTE: keep the blank lines below — an adjacent comment would justify
// the attributes and defeat the fixture.

#[allow(dead_code)]
fn orphaned() {}

/// Doc comments describe the item, not the allow, so this is still bare.
#[allow(unused_variables)]
fn doc_is_not_reason(x: u32) {}
