// Fixture: seeded `nested-lock` violation (linted as crate `service`).
use std::sync::Mutex;

fn transfer(a: &Mutex<u64>, b: &Mutex<u64>) {
    let mut ga = a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = b.lock().unwrap_or_else(|e| e.into_inner()); // line 6: flagged
    *ga += *gb;
}
