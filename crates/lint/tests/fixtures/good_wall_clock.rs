// Fixture: deterministic-crate code that respects `wall-clock`.

/// Deadlines arrive as caller-computed sample budgets, never as clock
/// reads inside the kernel.
fn within_budget(samples_done: usize, budget: usize) -> bool {
    samples_done < budget
}

fn seeded_stream(seed: u64) -> u64 {
    // The string below must not be mistaken for a clock read.
    let _doc = "Instant::now() and SystemTime are banned here";
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
