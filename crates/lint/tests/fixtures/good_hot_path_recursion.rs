// Iterative hot path over an explicit stack: no self-calls. Calling a
// *different* search function, or recursing outside the hot prefixes,
// is fine.
pub fn nearest_iterative(root: usize) -> Option<usize> {
    let mut stack = vec![root];
    let mut best = None;
    while let Some(n) = stack.pop() {
        best = Some(n);
        if n > 0 {
            stack.push(n - 1);
        }
    }
    best
}

pub fn nearest_with_hint(root: usize) -> Option<usize> {
    nearest_iterative(root)
}

// Not a hot-path name: recursion allowed (e.g. tree invariant walks).
fn depth_of(node: usize) -> usize {
    if node == 0 {
        0
    } else {
        1 + depth_of(node / 2)
    }
}

pub fn height(root: usize) -> usize {
    depth_of(root)
}
