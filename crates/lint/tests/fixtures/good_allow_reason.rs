// Fixture: justified `#[allow]` attributes that satisfy `allow-without-reason`.

// The indexed loop mirrors the published pseudocode table row by row.
#[allow(clippy::needless_range_loop)]
fn table_walk(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    acc
}

#[allow(dead_code)] // kept as the reference scalar path for the SIMD kernel
fn reference_path() {}
