// Fixture: deterministic-crate code that respects `hash-collections`.
use std::collections::BTreeMap;

fn drain_in_key_order(m: &BTreeMap<u64, f64>) -> Vec<f64> {
    m.values().copied().collect() // BTreeMap iterates in key order
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_hash() {
        let names: std::collections::HashSet<&str> = ["a", "b"].into_iter().collect();
        assert_eq!(names.len(), 2);
    }
}
