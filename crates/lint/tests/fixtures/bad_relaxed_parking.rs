//! Seeded lost-wakeup hazard: `closed` gates the park loop, but both
//! the gate read and the waker's store are `Relaxed` — the sleeper's
//! check and its park are not ordered against the close.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

pub struct Parker {
    closed: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Parker {
    pub fn park_until_closed(&self) {
        let guard = lock_ignore_poison(&self.sleep);
        while !self.closed.load(Ordering::Relaxed) {
            let guard = self.wake.wait(guard);
            touch(guard);
        }
    }

    pub fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }
}
