// Fixture: seeded `wall-clock` violations (linted as crate `core`).
use std::time::{Instant, SystemTime};

fn elapsed_budget() -> bool {
    let t0 = Instant::now(); // line 5: flagged
    t0.elapsed().as_millis() > 10
}

fn entropy() -> u64 {
    let clock = SystemTime::now(); // line 10: flagged
    let rng = thread_rng(); // line 11: flagged
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_wall_clocks() {
        let _ = std::time::Instant::now(); // inside cfg(test): not flagged
    }
}
