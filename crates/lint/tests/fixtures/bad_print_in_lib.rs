//! Seeded violations for `print-in-lib`.

pub fn report(x: f64) {
    println!("x = {x}");
    eprintln!("warning: {x}");
    print!("partial ");
    eprint!("partial ");
    let _ = dbg!(x);
}
