// Fixture: seeded `float-eq` violations (linted as crate `geometry`).

fn kernel(x: f64, closest: Vec3, len: usize) -> bool {
    let exact_literal = x == 1.0; // line 4: flagged (float literal)
    let exact_const = closest == Vec3::ZERO; // line 5: flagged (Vec3:: path)
    let exact_method = x.sqrt() != closest.norm(); // line 6: flagged (float methods)
    // Integer comparisons stay legal even next to float code:
    let fine = len == 4;
    exact_literal || exact_const || exact_method || fine
}
