//! Seeded lock-order inversion: `first_then_second` takes `first` then
//! `second`; `second_then_first` takes them in the reverse order. Run
//! concurrently, each can hold one lock while waiting for the other.
use std::sync::Mutex;

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn first_then_second(&self) -> u32 {
        let a = lock_ignore_poison(&self.first);
        let b = lock_ignore_poison(&self.second);
        *a + *b
    }

    pub fn second_then_first(&self) -> u32 {
        let b = lock_ignore_poison(&self.second);
        let a = lock_ignore_poison(&self.first);
        *a + *b
    }
}
