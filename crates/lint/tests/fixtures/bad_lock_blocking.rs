//! Seeded blocking-while-locked: a `recv` performed with a guard live,
//! and a call that transitively reaches a `join` with a guard live.
use std::sync::Mutex;

pub struct Drainer {
    inner: Mutex<u32>,
}

impl Drainer {
    pub fn drain(&self) {
        let state = lock_ignore_poison(&self.inner);
        let item = self.rx.recv();
        consume(*state, item);
    }

    pub fn stop(&self) {
        let state = lock_ignore_poison(&self.inner);
        self.reap(*state);
    }

    fn reap(&self, _state: u32) {
        let _ = self.handle.join();
    }
}
