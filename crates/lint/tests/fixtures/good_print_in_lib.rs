//! Clean: library code formats into strings and returns them; test
//! code may print freely.

use std::fmt::Write as _;

pub fn report(x: f64) -> String {
    let mut out = String::new();
    let _ = write!(out, "x = {x}");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("fine here");
    }
}
