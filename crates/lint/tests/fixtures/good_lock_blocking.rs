//! The blocking ops done right: the guard is released (scope exit or
//! `drop`) before blocking, and a condvar wait is exempt for the guard
//! it consumes — parking on the guarded condition is the designed idiom.
use std::sync::{Condvar, Mutex};

pub struct Drainer {
    inner: Mutex<u32>,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Drainer {
    pub fn drain(&self) {
        {
            let state = lock_ignore_poison(&self.inner);
            touch(*state);
        }
        let item = self.rx.recv();
        consume(item);
    }

    pub fn stop(&self) {
        let state = lock_ignore_poison(&self.inner);
        touch(*state);
        drop(state);
        let _ = self.handle.join();
    }

    pub fn park_for_work(&self) {
        let guard = lock_ignore_poison(&self.sleep);
        let guard = self.wake.wait(guard);
        touch_guard(guard);
    }
}
