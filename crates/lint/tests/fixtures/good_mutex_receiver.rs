// Fixture: serving-layer dequeue code that respects `mutex-receiver`.
use std::collections::VecDeque;
use std::sync::Mutex;

// Per-worker shard: each worker locks only its own deque (a thief locks
// one victim's), so dequeues never funnel through a single lock.
struct Shard {
    jobs: Mutex<VecDeque<u64>>,
}

fn pop(shard: &Shard) -> Option<u64> {
    match shard.jobs.lock() {
        Ok(mut q) => q.pop_front(),
        Err(poisoned) => poisoned.into_inner().pop_front(),
    }
}
