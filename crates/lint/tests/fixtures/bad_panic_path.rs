// Fixture: seeded `panic-path` violations (linted as crate `service`).

fn respond(result: Option<u32>) -> u32 {
    let value = result.unwrap(); // line 4: flagged
    let also = result.expect("present"); // line 5: flagged
    if value != also {
        panic!("impossible"); // line 7: flagged
    }
    todo!() // line 9: flagged
}
