// Fixture: seeded `unbounded-channel` violation (linted as crate `service`).
use std::sync::mpsc;

fn open_firehose() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel() // line 5: flagged — buffers without bound
}
