//! Seeded worker-thread panic sources: everything below is reachable
//! from the closure handed to `spawn`, so an out-of-bounds index, a
//! zero divisor, or a failed assert kills a worker, not a test.
use std::thread;

pub fn start() {
    thread::spawn(move || run_worker(7));
}

fn run_worker(idx: usize) {
    let n = shard_sizes()[idx];
    let share = 100 / n;
    assert!(share > 0);
    finish(share);
}

fn finish(share: usize) {
    let weights = vec![1, 2, 3];
    record(weights[share]);
}
