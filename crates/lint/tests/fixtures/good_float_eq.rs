// Fixture: geometry code that respects `float-eq`.

const EPS: f64 = 1e-10;

fn kernel(x: f64, y: f64, closest: Vec3, r: usize, c: usize, simplex: &[Vec3]) -> bool {
    let close_enough = (x - y).abs() <= EPS; // epsilon compare: fine
    let near_zero = closest.norm_sq() < EPS; // ordered compare: fine
    let expect = if r == c { 1.0 } else { 0.0 }; // int ==, float branches: fine
    let four = simplex.len() == 4; // int ==: fine
    close_enough || near_zero || expect > 0.5 || four
}
