//! The worker path made total: `get` instead of indexing,
//! `checked_div` instead of `/`, `debug_assert!` instead of `assert!`.
//! The offline report helper still indexes — but nothing on a spawned
//! thread can reach it, so it is not a worker panic source.
use std::thread;

pub fn start() {
    thread::spawn(move || run_worker(7));
}

fn run_worker(idx: usize) {
    let n = shard_sizes().get(idx).copied().unwrap_or(1);
    let share = 100usize.checked_div(n).unwrap_or(0);
    debug_assert!(share > 0);
    record(share);
}

fn offline_report(xs: &[u64], i: usize) -> u64 {
    xs[i]
}
