// Fixture: serving-layer code that respects `nested-lock`.
use std::sync::{Mutex, MutexGuard, PoisonError};

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_one(a: &Mutex<u64>) -> u64 {
    *locked(a) // one lock per function body
}

fn read_other(b: &Mutex<u64>) -> u64 {
    *locked(b)
}
