// Fixture: malformed suppression pragmas (`invalid-pragma` diagnostics).

fn reasons_are_mandatory() -> u32 {
    // moped-lint: allow(panic-path)
    let x: Option<u32> = Some(1);
    x.unwrap()
}

fn rules_must_exist() {
    // moped-lint: allow(no-such-rule) this rule id is not in the catalog
    let _ = 0;
}
