// Seeded violation: recursive descent on the search hot path.
pub fn nearest_rec(node: usize, depth: usize) -> Option<usize> {
    if depth == 0 {
        return Some(node);
    }
    nearest_rec(node * 2 + 1, depth - 1)
}

struct Checker;

impl Checker {
    fn config_free(&self, depth: usize) -> bool {
        if depth == 0 {
            return true;
        }
        self.config_free(depth - 1)
    }
}
