//! A pragma that still earns its keep: the wall-clock read on the line
//! below it is real, so the suppression matches a live finding.
pub fn now_us() -> u128 {
    // moped-lint: allow(wall-clock) boundary instrumentation, excluded from replay
    Instant::now().elapsed().as_micros()
}
