//! The same parking structure with ordered gate traffic — and a plain
//! statistics counter that stays `Relaxed`, which is fine: it gates no
//! park/unpark decision.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

pub struct Parker {
    closed: AtomicBool,
    observed: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Parker {
    pub fn park_until_closed(&self) {
        let guard = lock_ignore_poison(&self.sleep);
        while !self.closed.load(Ordering::Acquire) {
            let guard = self.wake.wait(guard);
            touch(guard);
        }
    }

    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    pub fn bump(&self) {
        self.observed.fetch_add(1, Ordering::Relaxed);
    }
}
