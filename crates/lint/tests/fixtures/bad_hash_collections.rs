// Fixture: seeded `hash-collections` violations (linted as crate `simbr`).
use std::collections::HashMap;

fn drain_in_hash_order(m: &HashMap<u64, f64>) -> Vec<f64> {
    m.values().copied().collect() // order varies run to run
}
