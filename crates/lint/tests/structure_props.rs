//! Property tests for the structural layer: the item-tree builder is
//! total (any token stream, balanced or not, yields a tree without
//! panicking), body spans are ordered, child spans nest strictly inside
//! their parents, and siblings never overlap — the invariants the
//! scope-aware passes (`lock-order`, `panic-path`, `atomics-audit`)
//! assume when they walk fn bodies.

use moped_lint::lexer::lex;
use moped_lint::structure::{build, ItemTree};
use proptest::prelude::*;
use proptest::TestCaseError;

/// A token soup biased toward structural trouble: braces (balanced or
/// not), item introducers with and without names, signature `impl`,
/// semicolons that clear pending introducers, and ordinary filler.
const PIECES: &[&str] = &[
    "{", "}", "{", "}", ";", "fn", "mod", "impl", "trait", "for", "name", "x", "(", ")", "<", ">",
    "=", ",", "&", "if", "match", "let", "0", "\"s\"", "//c\n", "#", "[", "]",
];

fn soup(idx: &[usize]) -> String {
    idx.iter()
        .map(|&i| PIECES[i % PIECES.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Structural well-formedness shared by every property below.
fn assert_tree_invariants(tree: &ItemTree) -> Result<(), TestCaseError> {
    for (i, item) in tree.items.iter().enumerate() {
        let (open, close) = item.body;
        prop_assert!(open <= close, "item {i} has inverted span {open}..{close}");
        if let Some(p) = item.parent {
            let (po, pc) = tree.items[p].body;
            prop_assert!(
                po < open && close <= pc,
                "item {i} ({open}..{close}) escapes parent {p} ({po}..{pc})"
            );
            prop_assert!(tree.items[p].children.contains(&i));
        } else {
            prop_assert!(tree.roots.contains(&i));
        }
        // Siblings are disjoint and in source order.
        let siblings = match item.parent {
            Some(p) => &tree.items[p].children,
            None => &tree.roots,
        };
        for pair in siblings.windows(2) {
            let a = tree.items[pair[0]].body;
            let b = tree.items[pair[1]].body;
            prop_assert!(a.1 < b.0, "siblings overlap: {a:?} vs {b:?}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder is total: arbitrary token soup — including wildly
    /// unbalanced braces — never panics, and the tree it produces keeps
    /// the span invariants.
    fn arbitrary_soup_never_panics(
        idx in prop::collection::vec(0usize..PIECES.len(), 0..120),
    ) {
        let src = soup(&idx);
        let tree = build(&lex(&src).tokens);
        assert_tree_invariants(&tree)?;
    }

    /// For *balanced* input, every `{` opens exactly one node: node
    /// count equals open-brace count and every node is closed (its `}`
    /// is a real token, not the EOF backstop).
    fn balanced_braces_open_one_node_each(
        depths in prop::collection::vec(1usize..5, 1..8),
    ) {
        // Build nested balanced groups: fn f { { { } } } mod m { } ...
        let mut src = String::new();
        for (i, &d) in depths.iter().enumerate() {
            let intro = ["fn f", "mod m", "impl T", "trait Q", ""][i % 5];
            src.push_str(intro);
            src.push_str(&" {".repeat(d));
            src.push_str(&" }".repeat(d));
            src.push(' ');
        }
        let tokens = lex(&src).tokens;
        let opens = tokens.iter().filter(|t| t.is_punct("{")).count();
        let tree = build(&tokens);
        prop_assert_eq!(tree.items.len(), opens, "src {:?}", src);
        for item in &tree.items {
            let closed = tokens[item.body.1].is_punct("}");
            prop_assert!(closed, "node not closed by a real brace token");
        }
        assert_tree_invariants(&tree)?;
    }

    /// Unbalanced prefixes of a balanced stream still produce a tree
    /// whose spans respect the invariants (unclosed nodes end at the
    /// last token).
    fn truncation_keeps_spans_ordered(
        depth in 1usize..7,
        cut in 0usize..14,
    ) {
        let full = format!("mod outer {{ fn inner ( ) {}", "{ x ; } ".repeat(depth));
        let tokens = lex(&full).tokens;
        let cut = cut.min(tokens.len());
        let tree = build(&tokens[..tokens.len() - cut]);
        assert_tree_invariants(&tree)?;
    }
}
