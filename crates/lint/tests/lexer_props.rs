//! Property tests for the hand-rolled lexer: randomized string
//! payloads, raw-string hash counts, nested block comments, lifetime vs
//! char-literal disambiguation, int/float classification, and line
//! accounting. Each property encodes an invariant the rules depend on
//! (e.g. "text inside a string can never become an identifier token").

use moped_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Characters that are legal inside every string flavor used below (no
/// `"`, no `\`, no newline) but look like trouble: comment openers,
/// braces, a stray quote for char literals.
const PAYLOAD: &[char] = &[
    'a', 'b', 'z', 'I', ' ', '/', '*', ':', '(', ')', '{', '}', '\'', '#',
];

/// Letters only — safe inside nested block comments (cannot form `*/`
/// or `/*`) and inside raw-string terminator probes.
const LETTERS: &[char] = &['a', 'b', 'c', 'x', 'y', 'z'];

fn from_indices(idx: &[usize], alphabet: &[char]) -> String {
    idx.iter().map(|&i| alphabet[i % alphabet.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever a string contains, it lexes as exactly one `Str` token:
    /// no identifiers, comments, or braces leak out of the quotes.
    fn string_contents_never_become_tokens(
        idx in prop::collection::vec(0usize..PAYLOAD.len(), 0..24),
        variant in 0usize..4,
    ) {
        let payload = from_indices(&idx, PAYLOAD);
        let literal = match variant {
            0 => format!("\"{payload}\""),
            1 => format!("r\"{payload}\""),
            2 => format!("r##\"{payload}\"##"),
            _ => format!("b\"{payload}\""),
        };
        let src = format!("let s = {literal}; Instant");
        let lexed = lex(&src);
        let kinds: Vec<TokenKind> = lexed.tokens.iter().map(|t| t.kind).collect();
        prop_assert_eq!(
            kinds,
            vec![
                TokenKind::Ident, // let
                TokenKind::Ident, // s
                TokenKind::Punct, // =
                TokenKind::Str,
                TokenKind::Punct, // ;
                TokenKind::Ident, // Instant
            ],
            "payload {payload:?} via variant {variant}"
        );
        prop_assert!(lexed.comments.is_empty());
        prop_assert_eq!(&lexed.tokens[3].text, &literal);
    }

    /// A raw string closed by `"` + n hashes ignores any embedded
    /// `"` + fewer-than-n hashes.
    fn raw_string_hash_counts(
        n in 1usize..5,
        a in prop::collection::vec(0usize..LETTERS.len(), 0..10),
        b in prop::collection::vec(0usize..LETTERS.len(), 0..10),
    ) {
        let hashes = "#".repeat(n);
        let inner = format!(
            "{}\"{}{}",
            from_indices(&a, LETTERS),
            "#".repeat(n - 1),
            from_indices(&b, LETTERS)
        );
        let src = format!("r{hashes}\"{inner}\"{hashes} fin");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.tokens.len(), 2, "src {src:?}");
        prop_assert_eq!(lexed.tokens[0].kind, TokenKind::Str);
        prop_assert!(lexed.tokens[1].is_ident("fin"));
    }

    /// Block comments nest to arbitrary depth and swallow their whole
    /// body into one `Comment`, leaving the token stream untouched.
    fn nested_block_comments_are_trivia(
        depth in 1usize..6,
        idx in prop::collection::vec(0usize..LETTERS.len(), 0..12),
    ) {
        let payload = from_indices(&idx, LETTERS);
        let src = format!(
            "fn f ( ) {} {} {} {{ }}",
            "/*".repeat(depth),
            payload,
            "*/".repeat(depth)
        );
        let lexed = lex(&src);
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(texts, vec!["fn", "f", "(", ")", "{", "}"], "src {src:?}");
        prop_assert_eq!(lexed.comments.len(), 1);
        prop_assert!(!lexed.comments[0].is_line);
    }

    /// `'ident` is a lifetime; `'c'` is a char literal — never confused,
    /// for any identifier and any single-char body.
    fn lifetimes_vs_char_literals(
        life in 0usize..5,
        ch in 0usize..6,
    ) {
        let life = ["a", "b", "de", "foo", "outer"][life];
        let ch = ['x', 'Z', '7', '(', ' ', '*'][ch];
        let src = format!("fn f<'{life}>(x: &'{life} str) {{ let c = '{ch}'; }}");
        let lexed = lex(&src);
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        let expect_life = format!("'{life}");
        prop_assert_eq!(lifetimes, vec![expect_life.as_str(), expect_life.as_str()]);
        prop_assert_eq!(chars, vec![format!("'{ch}'")]);
    }

    /// `a..b` stays two ints around a range operator; dotted, exponent,
    /// and `f`-suffixed forms classify as floats, `u`-suffixed as int.
    fn int_float_classification(a in 0u32..100_000, b in 0u32..100_000) {
        let src = format!(
            "let r = {a}..{b}; let f = {a}.5; let g = {a}e3; let h = {a}_u64; let i = {b}f32;"
        );
        let lexed = lex(&src);
        let of_kind = |k: TokenKind| -> Vec<&str> {
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == k)
                .map(|t| t.text.as_str())
                .collect()
        };
        prop_assert_eq!(
            of_kind(TokenKind::Int),
            vec![a.to_string(), b.to_string(), format!("{a}_u64")]
        );
        prop_assert_eq!(
            of_kind(TokenKind::Float),
            vec![format!("{a}.5"), format!("{a}e3"), format!("{b}f32")]
        );
        prop_assert!(lexed.tokens.iter().any(|t| t.is_punct("..")));
    }

    /// Newlines inside a multi-line string still advance the line
    /// counter, so diagnostics after the string point at the right line.
    fn line_numbers_track_newlines_in_strings(k in 1u32..8) {
        let body = "x\n".repeat(k as usize);
        let src = format!("let s = \"{body}\";\nfn f() {{}}");
        let lexed = lex(&src);
        let s = lexed.tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        prop_assert_eq!(s.line, 1);
        let f = lexed.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        prop_assert_eq!(f.line, k + 2);
    }
}
