//! Self-check: the engine runs over the real workspace and must report
//! nothing. This is the executable form of the acceptance criterion
//! "the workspace lints clean" — if a contract violation lands, this
//! test fails alongside the `scripts/verify.sh` lint stage.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected workspace root at {}",
        root.display()
    );
    let findings = moped_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
