//! The MOPED serving layer: a concurrent, fault-tolerant batch planning
//! engine.
//!
//! The core crates answer one plan request on one thread. This crate
//! turns them into a *service*: many [`PlanRequest`]s are admitted into a
//! bounded queue, scheduled across a fixed pool of worker threads, and
//! answered with [`PlanOutcome`]s carrying either the planner's result
//! plus queue/service timing, or a typed failure. Design points:
//!
//! * **Shared immutable snapshots** — each environment is registered once
//!   in an [`EnvironmentCatalog`]; its scenario and bulk-loaded obstacle
//!   R-tree live behind an `Arc` shared by every worker, so admission is
//!   O(1) and no obstacle field is ever re-sorted per request.
//! * **Epoch-versioned hot swap** — a slot's snapshot can be replaced
//!   while the service runs ([`PlanService::swap_env`]); each swap bumps
//!   the slot's epoch, new admissions see the replacement, in-flight
//!   requests keep the immutable snapshot they were admitted with, and
//!   every [`PlanResponse`] records the epoch it planned against.
//! * **Determinism under concurrency** — planning state is confined to
//!   the worker; a request's result is a pure function of its
//!   `(environment, params, variant)` triple, byte-identical to a serial
//!   [`moped_core::plan_variant`] run with the same inputs. On tuned
//!   services the triple's variant slot is the resolved profile instead,
//!   with the same guarantee against `moped_tune::plan_with_profile`.
//! * **Autotuning** — an optional [`Tuner`] ([`ServiceConfig::tuner`])
//!   resolves each environment's precomputed request class against a
//!   calibrated `moped_tune::ProfileTable` at admission; the decision
//!   picks the worker's engine/index stack, is stamped into the
//!   [`PlanResponse`], and is counted per class in [`metrics::Metrics`].
//!   Every [`PlanService::swap_env`] is an epoch boundary where the
//!   tuner's hysteresis adapter may rewrite a class's profile from the
//!   observed `moped-obs` collision-vs-NN bottleneck split.
//! * **Deadlines and cancellation** — cooperative: the planner's stop
//!   hook is polled every few sampling rounds, and an expired or
//!   cancelled request returns its best-so-far anytime result instead of
//!   running away or killing a thread.
//! * **Admission control** — the queue is bounded (one global capacity
//!   across all shards); a full queue rejects with
//!   [`RejectReason::QueueFull`] rather than buffering unboundedly.
//! * **Contention-free dispatch** — admission round-robins jobs onto
//!   per-worker deques; a worker dequeues from its own shard and steals
//!   the oldest job from a sibling when its shard runs dry, so the pool
//!   never serializes on a shared queue lock and no request waits
//!   behind one idle worker. Responses resolve through per-request
//!   one-shot slots, and hot metrics counters are sharded per worker.
//! * **Fault tolerance** — every planning attempt runs inside a panic
//!   guard, so a panicking request resolves its ticket with a typed
//!   [`PlanFailure`] instead of wedging the client; a supervisor thread
//!   respawns workers that die outright, so capacity is never silently
//!   lost; an optional bounded [`RetryPolicy`] re-attempts panicked
//!   requests (with jittered backoff, and never blindly re-running a
//!   panic that has already proven deterministic); and a compiled-in but
//!   inert-by-default [`FaultPlan`] can inject panics, latency, and
//!   forced rejections at named sites for chaos testing.
//! * **Graceful shutdown** — [`PlanService::shutdown`] stops admission,
//!   drains everything already queued, and joins the workers; every
//!   outstanding ticket resolves, with a typed shutdown failure if the
//!   whole pool died mid-drain.
//! * **Observability** — a lock-free [`metrics::Metrics`] registry counts
//!   every admission outcome (including failures, caught panics, retries,
//!   and respawns), aggregates per-stage op ledgers, and tracks latency
//!   in fixed-bucket histograms with text/JSON dumps.
//!
//! Only `std` is used: threads + channels, no external runtime.
//!
//! # Example
//!
//! ```
//! use moped_service::{EnvironmentCatalog, PlanRequest, PlanService, ServiceConfig};
//! use moped_core::PlannerParams;
//! use moped_robot::Robot;
//!
//! let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
//! let env = catalog.find("open-meadow").unwrap();
//! let service = PlanService::start(catalog, ServiceConfig { workers: 2, ..Default::default() });
//! let params = PlannerParams { max_samples: 200, seed: 7, ..Default::default() };
//! let ticket = service.submit(PlanRequest::new(env, params)).unwrap();
//! let response = ticket.wait().into_result().expect("request served");
//! assert!(response.result.stats.samples <= 200);
//! let metrics = service.shutdown();
//! assert_eq!(metrics.accepted(), 1);
//! ```

#![deny(missing_docs)]

pub mod fault;
pub mod metrics;
mod queue;
mod supervisor;

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use moped_core::{PlanResult, PlannerParams, Variant};
use moped_env::catalog::{build as build_scene, NamedScene};
use moped_env::Scenario;
use moped_obs::Bottleneck;
use moped_robot::Robot;
use moped_rtree::RTree;
use moped_tune::{Adapter, AdapterConfig, ProfileSwitch, ProfileTable, RequestClass, Resolution};

pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use metrics::Metrics;

use queue::{PushRefused, Responder, ResponseSlot, ShardedQueue, TryTake};
use supervisor::{Pool, WorkerShared};

/// R-tree fanout used for environment snapshots (the paper's default).
const SNAPSHOT_RTREE_FANOUT: usize = 4;

/// An immutable, shareable environment: the scenario plus its obstacle
/// R-tree, bulk-loaded once at registration and shared by every worker.
#[derive(Clone, Debug)]
pub struct EnvSnapshot {
    /// Catalog name of this environment.
    pub name: String,
    /// Version of this environment slot: 0 at registration, bumped by
    /// every [`EnvironmentCatalog::swap`]. In-flight requests keep the
    /// snapshot (`Arc`) they were admitted with; the epoch in their
    /// [`PlanResponse`] records which version they actually planned
    /// against.
    pub epoch: u64,
    /// The planning scenario (robot, obstacles, default start/goal).
    pub scenario: Scenario,
    /// STR-bulk-loaded R-tree over the scenario's obstacles.
    pub rtree: RTree,
    /// Precomputed SoA obstacle field for the batched narrow phase
    /// (centers / half-extents / axes extracted once at registration).
    pub soa: moped_geometry::sat::ObbSoa,
    /// The request class this environment buckets into (robot ×
    /// obstacle/density signature), computed once at registration so
    /// per-request profile resolution is a map lookup, never a scene
    /// scan.
    pub class: String,
}

impl EnvSnapshot {
    /// Builds a snapshot at epoch 0, paying the R-tree bulk load and the
    /// SoA obstacle extraction once.
    pub fn new(name: impl Into<String>, scenario: Scenario) -> Self {
        EnvSnapshot::at_epoch(name, scenario, 0)
    }

    /// Builds a snapshot carrying an explicit epoch (used by
    /// [`EnvironmentCatalog::swap`] to version replacements).
    pub fn at_epoch(name: impl Into<String>, scenario: Scenario, epoch: u64) -> Self {
        let rtree = RTree::build(&scenario.obstacles, SNAPSHOT_RTREE_FANOUT);
        let soa = scenario.prepared_obstacles();
        let class = RequestClass::of_scenario(&scenario).id();
        EnvSnapshot {
            name: name.into(),
            epoch,
            scenario,
            rtree,
            soa,
            class,
        }
    }
}

/// Handle to a registered environment (index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EnvId(usize);

impl EnvId {
    /// The catalog slot this id refers to.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The set of environments a service instance can plan in.
///
/// The slot *list* is fixed once the service starts, but each slot's
/// snapshot can be hot-swapped ([`EnvironmentCatalog::swap`]) while the
/// service runs: lookups hand out owned `Arc`s, so in-flight requests
/// keep planning against the snapshot they were admitted with while new
/// admissions see the replacement. Every swap bumps the slot's epoch.
#[derive(Debug, Default)]
pub struct EnvironmentCatalog {
    envs: Vec<RwLock<Arc<EnvSnapshot>>>,
}

/// Reads a catalog slot, recovering the (immutable, always-valid) `Arc`
/// even if a prior writer panicked and poisoned the lock.
fn read_slot(slot: &RwLock<Arc<EnvSnapshot>>) -> Arc<EnvSnapshot> {
    match slot.read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

impl EnvironmentCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        EnvironmentCatalog::default()
    }

    /// A catalog holding every named benchmark scene for `robot`.
    pub fn standard(robot: &Robot) -> Self {
        let mut cat = EnvironmentCatalog::new();
        for scene in NamedScene::ALL {
            cat.register(scene.name(), build_scene(scene, robot.clone()));
        }
        cat
    }

    /// Registers an environment at epoch 0, returning its id.
    pub fn register(&mut self, name: impl Into<String>, scenario: Scenario) -> EnvId {
        self.envs
            .push(RwLock::new(Arc::new(EnvSnapshot::new(name, scenario))));
        EnvId(self.envs.len() - 1)
    }

    /// Looks up the current snapshot of a slot. The returned `Arc` stays
    /// valid (and immutable) across later swaps of the same slot.
    pub fn get(&self, id: EnvId) -> Option<Arc<EnvSnapshot>> {
        self.envs.get(id.0).map(read_slot)
    }

    /// Replaces a slot's environment with a new scenario, keeping the
    /// slot's name and bumping its epoch by one. Returns the new epoch.
    ///
    /// The snapshot (R-tree bulk load, SoA extraction) is built while
    /// holding the slot's write lock, so concurrent swaps of one slot
    /// serialize and each epoch is used exactly once; other slots and
    /// already-admitted requests are unaffected.
    pub fn swap(&self, id: EnvId, scenario: Scenario) -> Option<u64> {
        let slot = self.envs.get(id.0)?;
        let mut guard = match slot.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let epoch = guard.epoch + 1;
        *guard = Arc::new(EnvSnapshot::at_epoch(guard.name.clone(), scenario, epoch));
        Some(epoch)
    }

    /// Finds an environment id by name.
    pub fn find(&self, name: &str) -> Option<EnvId> {
        self.envs
            .iter()
            .position(|e| read_slot(e).name == name)
            .map(EnvId)
    }

    /// Number of registered environments.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// All registered ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = EnvId> + '_ {
        (0..self.envs.len()).map(EnvId)
    }
}

/// One planning request.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// Which environment to plan in.
    pub env: EnvId,
    /// Which kernel stack to run (defaults to full MOPED, V4).
    pub variant: Variant,
    /// Planner knobs — `params.seed` makes the request deterministic.
    pub params: PlannerParams,
    /// Wall-clock budget measured from admission; `None` means the
    /// sampling budget alone bounds the run.
    pub deadline: Option<Duration>,
}

impl PlanRequest {
    /// A full-MOPED request with no deadline.
    pub fn new(env: EnvId, params: PlannerParams) -> Self {
        PlanRequest {
            env,
            variant: Variant::V4Lci,
            params,
            deadline: None,
        }
    }

    /// Sets the wall-clock deadline.
    #[must_use = "builder method returns the updated request; it does not mutate in place"]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Selects a specific ablation variant.
    #[must_use = "builder method returns the updated request; it does not mutate in place"]
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }
}

/// How a served request left the planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to its full sampling budget.
    Completed,
    /// Stopped by its deadline; `result` is the best-so-far answer.
    DeadlineExpired,
    /// Stopped by [`PlanTicket::cancel`]; `result` is the best-so-far
    /// answer.
    Cancelled,
}

/// The answer to one successfully served [`PlanRequest`].
#[derive(Clone, Debug)]
pub struct PlanResponse {
    /// Service-assigned request id (admission order).
    pub id: u64,
    /// The environment planned in.
    pub env: EnvId,
    /// Epoch of the environment snapshot the request actually planned
    /// against (a concurrent [`EnvironmentCatalog::swap`] does not move
    /// a request off the snapshot it was admitted with).
    pub epoch: u64,
    /// How the request terminated.
    pub outcome: Outcome,
    /// The planner's result (path, cost, per-stage statistics).
    pub result: PlanResult,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time spent planning (dequeue to response), spanning every attempt
    /// including retry backoff.
    pub service_time: Duration,
    /// Index of the worker that served the request.
    pub worker: usize,
    /// Planning attempts consumed (1 unless earlier attempts panicked
    /// and the retry policy re-ran the request).
    pub attempts: u32,
    /// The profile decision this request planned under: the resolved
    /// class, profile, and reason. `None` on untuned services
    /// ([`ServiceConfig::tuner`] unset), where the request's [`Variant`]
    /// drives the stack exactly as before.
    pub profile: Option<Resolution>,
}

/// Why an admitted request terminally failed instead of being served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// Every permitted planning attempt panicked; `message` is the last
    /// panic payload.
    Panic {
        /// The panic payload, rendered as a string.
        message: String,
    },
    /// The worker serving the request died before responding (its panic
    /// escaped the per-job guard). The supervisor respawns the worker;
    /// the request itself is not replayed.
    WorkerDied,
    /// The service shut down with the whole pool dead before any worker
    /// picked the request up.
    ShutdownDrained,
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Panic { message } => {
                write!(f, "planning attempt panicked: {message}")
            }
            FailureReason::WorkerDied => write!(f, "the serving worker died before responding"),
            FailureReason::ShutdownDrained => {
                write!(f, "service shut down before the request was served")
            }
        }
    }
}

/// A terminal failure: the request was admitted but no [`PlanResult`]
/// exists for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanFailure {
    /// Service-assigned request id (admission order).
    pub id: u64,
    /// The environment the request targeted.
    pub env: EnvId,
    /// Why the request failed.
    pub reason: FailureReason,
    /// Planning attempts consumed before giving up (0 when no attempt
    /// ran, e.g. a shutdown drain or a worker death).
    pub attempts: u32,
}

impl fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {} failed: {}", self.id, self.reason)
    }
}

impl std::error::Error for PlanFailure {}

/// The resolution of a [`PlanTicket`]: every admitted request ends in
/// exactly one of these — a served response or a typed failure. The
/// ticket API never panics and never hangs on a dead worker.
// The size gap between variants is deliberate: an outcome is built once
// per request and moved over the ticket channel exactly once, so boxing
// the response would trade a single 500-byte move for a heap allocation
// on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
#[must_use = "a PlanOutcome carries either the response or a typed failure; dropping it hides failures"]
pub enum PlanOutcome {
    /// The planner produced a result (completed, deadline-expired, or
    /// cancelled — see [`PlanResponse::outcome`]).
    Served(PlanResponse),
    /// The request terminally failed; see [`PlanFailure::reason`].
    Failed(PlanFailure),
}

impl PlanOutcome {
    /// Converts into a `Result`, for `?`-style handling.
    pub fn into_result(self) -> Result<PlanResponse, PlanFailure> {
        match self {
            PlanOutcome::Served(response) => Ok(response),
            PlanOutcome::Failed(failure) => Err(failure),
        }
    }

    /// The served response, if any.
    pub fn response(&self) -> Option<&PlanResponse> {
        match self {
            PlanOutcome::Served(response) => Some(response),
            PlanOutcome::Failed(_) => None,
        }
    }

    /// The failure, if any.
    pub fn failure(&self) -> Option<&PlanFailure> {
        match self {
            PlanOutcome::Served(_) => None,
            PlanOutcome::Failed(failure) => Some(failure),
        }
    }

    /// Whether the request was served with a planner result.
    pub fn is_served(&self) -> bool {
        matches!(self, PlanOutcome::Served(_))
    }

    /// Whether the request terminally failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, PlanOutcome::Failed(_))
    }
}

/// Why a request was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity; retry later or shed load.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request references an environment id the catalog lacks.
    UnknownEnvironment,
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::UnknownEnvironment => write!(f, "unknown environment id"),
            RejectReason::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Bounded retry for panicked planning attempts. Off by default
/// (`max_attempts == 1`).
///
/// Retries are never blind: planning is deterministic in
/// `(environment, variant, params)`, so when two consecutive attempts
/// panic with an identical message the failure has proven itself
/// deterministic and the worker gives up immediately, whatever
/// `max_attempts` allows. Backoff between attempts is
/// `backoff + U[0, jitter)`, with the jitter drawn deterministically
/// from the `(request id, attempt)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total planning attempts per request, including the first;
    /// 1 disables retries. Clamped to at least 1.
    pub max_attempts: u32,
    /// Fixed pause before each retry attempt.
    pub backoff: Duration,
    /// Upper bound of the extra uniformly distributed pause added to
    /// `backoff`.
    pub jitter: Duration,
}

impl Default for RetryPolicy {
    /// No retries, no backoff.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts with no backoff.
    #[must_use]
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Sets the fixed backoff between attempts.
    #[must_use = "builder method returns the updated policy; it does not mutate in place"]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the jitter bound added to the backoff.
    #[must_use = "builder method returns the updated policy; it does not mutate in place"]
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }
}

/// Locks a mutex, recovering the guard even if a prior holder panicked —
/// both tuner structures stay internally consistent across a poisoned
/// unwind (the table is replaced atomically under its lock; the adapter
/// only mutates plain integer streaks).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The service-side autotuner: a hot [`ProfileTable`] resolved on every
/// admission, plus the epoch-boundary [`Adapter`] that rewrites it under
/// hysteresis when the observed collision-vs-NN bottleneck flips.
///
/// Install one via [`ServiceConfig::tuner`]. Admissions then resolve the
/// environment's request class against the table ([`Tuner::resolve`]);
/// the decision rides on the job, selects the worker's engine/index
/// stack, and is stamped into the [`PlanResponse`]. Every
/// [`PlanService::swap_env`] is an epoch boundary: the tuner consumes
/// the current `moped-obs` stage-profile snapshot for the outgoing
/// snapshot's class and may switch that class's profile
/// ([`Tuner::observe`]).
///
/// Determinism: with a pinned table and no adapter input, resolution is
/// a pure map lookup, so every auto-tuned plan stays bit-identical and
/// journal-replayable. Adapter switches are themselves pure functions of
/// the quantized observation sequence — wall clock never enters.
#[derive(Debug)]
pub struct Tuner {
    table: RwLock<ProfileTable>,
    adapter: Mutex<Adapter>,
}

impl Tuner {
    /// A tuner over `table` with the default hysteresis thresholds.
    pub fn new(table: ProfileTable) -> Self {
        Tuner::with_adapter(table, AdapterConfig::default())
    }

    /// A tuner over `table` with explicit adapter thresholds.
    pub fn with_adapter(table: ProfileTable, cfg: AdapterConfig) -> Self {
        Tuner {
            table: RwLock::new(table),
            adapter: Mutex::new(Adapter::new(cfg)),
        }
    }

    /// Resolves a request class against the current table (read lock;
    /// admission-path cost is one map lookup plus the profile clone).
    pub fn resolve(&self, class_id: &str) -> Resolution {
        let table = match self.table.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        table.resolve(class_id)
    }

    /// A point-in-time copy of the table (pin it to reproduce runs).
    pub fn table(&self) -> ProfileTable {
        match self.table.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Feeds one epoch-boundary bottleneck observation for `class_id`
    /// through the hysteresis adapter, rewriting the table on a switch.
    /// In-flight requests keep the resolution they were admitted with;
    /// only later admissions see the new profile — the same isolation
    /// rule environment swaps follow.
    pub fn observe(&self, class_id: &str, b: &Bottleneck) -> Option<ProfileSwitch> {
        let mut adapter = lock_unpoisoned(&self.adapter);
        let mut table = match self.table.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        adapter.observe(&mut table, class_id, b)
    }
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded queue capacity; admissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How many sampling rounds between deadline/cancellation polls.
    pub stop_poll_every: usize,
    /// Retry policy for panicked planning attempts (off by default).
    pub retry: RetryPolicy,
    /// Optional fault-injection plan (chaos testing); `None` — the
    /// default — makes the harness completely inert.
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional autotuner; `None` — the default — keeps the classic
    /// variant-driven planning path byte-identical to earlier releases.
    /// When set, every admission resolves its environment's request
    /// class to a [`PlannerProfile`](moped_tune::PlannerProfile) and the
    /// worker plans with that profile's engine/index stack instead of
    /// the request's [`Variant`].
    pub tuner: Option<Arc<Tuner>>,
}

impl Default for ServiceConfig {
    /// 4 workers, a 64-deep queue, polling every 64 rounds, no retries,
    /// no fault injection, no autotuner.
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            stop_poll_every: 64,
            retry: RetryPolicy::default(),
            faults: None,
            tuner: None,
        }
    }
}

/// A pending request: await the resolution, or cancel the work.
///
/// Every ticket resolves exactly once — with a served response, or with
/// a typed [`PlanFailure`] if the request panicked, its worker died, or
/// the service shut down around it. Neither [`wait`](PlanTicket::wait)
/// nor [`poll`](PlanTicket::poll) ever panics or hangs on a dead worker.
#[derive(Debug)]
#[must_use = "dropping a ticket discards the request's resolution; call wait() or poll()"]
pub struct PlanTicket {
    id: u64,
    env: EnvId,
    cancel: Arc<AtomicBool>,
    slot: Arc<ResponseSlot>,
    resolved: Cell<bool>,
}

impl PlanTicket {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation; the resolution (best-so-far)
    /// still arrives through [`PlanTicket::wait`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the request resolves. If the serving worker died
    /// without responding (its responder was dropped unsent), this
    /// returns a [`FailureReason::WorkerDied`] failure instead of
    /// panicking.
    pub fn wait(self) -> PlanOutcome {
        self.slot
            .wait_take()
            .unwrap_or_else(|| PlanOutcome::Failed(self.disconnect_failure()))
    }

    /// Returns the resolution if it is already available, without
    /// blocking. Yields `Some` exactly once: `None` before resolution
    /// and again after the resolution has been taken. A worker that died
    /// without responding resolves the ticket with a terminal
    /// [`FailureReason::WorkerDied`] failure rather than leaving the
    /// caller polling forever.
    pub fn poll(&self) -> Option<PlanOutcome> {
        if self.resolved.get() {
            return None;
        }
        match self.slot.try_take() {
            TryTake::Pending => None,
            TryTake::Resolved(outcome) => {
                self.resolved.set(true);
                Some(outcome)
            }
            TryTake::Abandoned => {
                self.resolved.set(true);
                Some(PlanOutcome::Failed(self.disconnect_failure()))
            }
        }
    }

    fn disconnect_failure(&self) -> PlanFailure {
        PlanFailure {
            id: self.id,
            env: self.env,
            reason: FailureReason::WorkerDied,
            attempts: 0,
        }
    }
}

/// One unit of queued work.
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) env_id: EnvId,
    pub(crate) env: Arc<EnvSnapshot>,
    pub(crate) variant: Variant,
    pub(crate) params: PlannerParams,
    pub(crate) deadline_at: Option<Instant>,
    pub(crate) cancel: Arc<AtomicBool>,
    pub(crate) enqueued: Instant,
    pub(crate) respond: Responder,
    /// Admission-time profile resolution (tuned services only). Frozen
    /// here so a concurrent table rewrite can never move an in-flight
    /// request off the profile it was admitted with.
    pub(crate) profile: Option<Resolution>,
}

/// The concurrent batch planning engine. See the crate docs for the
/// architecture; construct with [`PlanService::start`].
pub struct PlanService {
    queue: Arc<ShardedQueue>,
    pool: Pool,
    metrics: Arc<Metrics>,
    catalog: Arc<EnvironmentCatalog>,
    next_id: AtomicU64,
    config: ServiceConfig,
}

impl PlanService {
    /// Spawns the worker pool (plus its supervisor) and starts admitting
    /// requests.
    pub fn start(catalog: EnvironmentCatalog, config: ServiceConfig) -> Self {
        supervisor::install_quiet_panic_hook();
        let workers_n = config.workers.max(1);
        let metrics = Arc::new(Metrics::with_workers(workers_n));
        let queue = Arc::new(ShardedQueue::new(workers_n, config.queue_capacity.max(1)));
        let shared = Arc::new(WorkerShared {
            queue: Arc::clone(&queue),
            metrics: Arc::clone(&metrics),
            poll_every: config.stop_poll_every.max(1),
            retry: config.retry,
            faults: config.faults.clone(),
            shutting_down: AtomicBool::new(false),
        });
        let pool = Pool::start(workers_n, shared);
        PlanService {
            queue,
            pool,
            metrics,
            catalog: Arc::new(catalog),
            next_id: AtomicU64::new(0),
            config,
        }
    }

    /// The shared environment catalog.
    pub fn catalog(&self) -> &EnvironmentCatalog {
        &self.catalog
    }

    /// Hot-swaps an environment slot while the service runs: requests
    /// admitted after this call plan against `scenario`; requests already
    /// queued or planning keep the snapshot they were admitted with.
    /// Returns the slot's new epoch (also reported per-request in
    /// [`PlanResponse::epoch`]).
    pub fn swap_env(&self, id: EnvId, scenario: Scenario) -> Result<u64, RejectReason> {
        let outgoing_class = self.catalog.get(id).map(|snap| snap.class.clone());
        let epoch = self
            .catalog
            .swap(id, scenario)
            .ok_or(RejectReason::UnknownEnvironment)?;
        // A swap is an epoch boundary: feed the tuner the stage-profile
        // bottleneck accumulated under the outgoing snapshot's class.
        // Workers publish their span data when idle (and every few
        // jobs), so the snapshot reflects recently served requests; with
        // tracing off the snapshot is empty and this is a no-op.
        if let (Some(tuner), Some(class)) = (self.config.tuner.as_deref(), outgoing_class) {
            if moped_obs::enabled() {
                moped_obs::flush();
                if let Some(b) = moped_obs::snapshot().bottleneck() {
                    if tuner.observe(&class, &b).is_some() {
                        self.metrics.inc_profile_switches();
                    }
                }
            }
        }
        Ok(epoch)
    }

    /// The live metrics registry (shared; clone the `Arc` to keep reading
    /// after shutdown).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The configured pool size.
    pub fn worker_count(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Worker threads currently running. Transiently below
    /// [`worker_count`](PlanService::worker_count) between a worker death
    /// and its supervisor respawn; equal to it in steady state.
    pub fn alive_workers(&self) -> usize {
        self.pool.alive()
    }

    /// Admits one request. O(1): resolves the environment snapshot and
    /// enqueues onto one shard; planning happens on a worker. Rejection
    /// (with reason) is immediate when the queue is full, the
    /// environment is unknown, or the service is shutting down.
    pub fn submit(&self, request: PlanRequest) -> Result<PlanTicket, RejectReason> {
        let _span = moped_obs::span(moped_obs::Stage::Admission);
        if self.queue.is_closed() {
            self.metrics.inc_rejected();
            return Err(RejectReason::ShuttingDown);
        }
        let Some(env) = self.catalog.get(request.env) else {
            self.metrics.inc_rejected();
            return Err(RejectReason::UnknownEnvironment);
        };
        // Admission-site fault injection (inert unless configured). A
        // `Panic` rule here unwinds the *calling* thread, by design.
        if let Some(plan) = self.config.faults.as_deref() {
            match plan.fire(FaultSite::Admission) {
                None => {}
                Some(FaultKind::QueueFull) => {
                    self.metrics.inc_faults_injected();
                    self.metrics.inc_rejected();
                    return Err(RejectReason::QueueFull {
                        capacity: self.config.queue_capacity.max(1),
                    });
                }
                Some(FaultKind::Delay(d)) => {
                    self.metrics.inc_faults_injected();
                    std::thread::sleep(d);
                }
                Some(FaultKind::Panic) => {
                    self.metrics.inc_faults_injected();
                    // moped-lint: allow(panic-path) chaos injection: an admission-site fault unwinds the caller by design
                    panic!("{}", FaultPlan::panic_message(FaultSite::Admission));
                }
            }
        }
        // Tuned services resolve the environment's class to a profile at
        // admission — a map lookup against the precomputed class id —
        // and count the decision on the (non-worker) admission path.
        let profile = self.config.tuner.as_deref().map(|tuner| {
            let resolution = tuner.resolve(&env.class);
            self.metrics
                .record_profile_decision(&resolution.class_id, resolution.from_table);
            resolution
        });
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = Arc::new(AtomicBool::new(false));
        // One-shot resolution slot: every ticket receives exactly one
        // resolution (worker response, failure, or shutdown drain); a
        // responder dropped unsent marks the slot abandoned so the
        // ticket surfaces a typed WorkerDied failure.
        let (slot, responder) = ResponseSlot::pair();
        let now = Instant::now();
        let job = Job {
            id,
            env_id: request.env,
            env,
            variant: request.variant,
            params: request.params,
            deadline_at: request.deadline.map(|d| now + d),
            cancel: Arc::clone(&cancel),
            enqueued: now,
            respond: responder,
            profile,
        };
        // The gauge must go up *before* the job becomes visible to the
        // pool: a worker can dequeue and decrement within nanoseconds of
        // `push` returning, and the decrement clamps at zero — an
        // increment arriving after it would strand the gauge at 1.
        self.metrics.queue_entered();
        match self.queue.push(job) {
            Ok(()) => {
                self.metrics.inc_accepted();
                Ok(PlanTicket {
                    id,
                    env: request.env,
                    cancel,
                    slot,
                    resolved: Cell::new(false),
                })
            }
            Err(PushRefused::Full) => {
                self.metrics.queue_left();
                self.metrics.inc_rejected();
                Err(RejectReason::QueueFull {
                    capacity: self.config.queue_capacity.max(1),
                })
            }
            Err(PushRefused::Closed) => {
                self.metrics.queue_left();
                self.metrics.inc_rejected();
                Err(RejectReason::ShuttingDown)
            }
        }
    }

    /// Submits a batch and blocks until every admitted request resolves.
    /// Per-request admission failures are reported in place; order
    /// matches the input.
    pub fn run_batch(
        &self,
        requests: impl IntoIterator<Item = PlanRequest>,
    ) -> Vec<Result<PlanOutcome, RejectReason>> {
        let tickets: Vec<Result<PlanTicket, RejectReason>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        tickets
            .into_iter()
            .map(|t| t.map(PlanTicket::wait))
            .collect()
    }

    /// Stops admission, drains every queued request, joins the workers,
    /// and returns the metrics registry. Outstanding [`PlanTicket`]s all
    /// resolve before this returns — with drained responses in the
    /// normal case, or typed shutdown failures if the whole pool died
    /// mid-drain.
    pub fn shutdown(mut self) -> Arc<Metrics> {
        self.drain_and_join();
        Arc::clone(&self.metrics)
    }

    fn drain_and_join(&mut self) {
        // Stop the supervisor first so graceful worker exits below are
        // not mistaken for deaths and respawned.
        self.pool.begin_shutdown();
        // Closing the queue stops admission and wakes parked workers;
        // they drain what was already admitted, then exit.
        self.queue.close();
        self.pool.join_workers();
        // If every worker died before the queue emptied, resolve the
        // leftovers with typed failures so no ticket ever hangs.
        self.pool.fail_leftovers();
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(samples: usize, seed: u64) -> PlannerParams {
        PlannerParams {
            max_samples: samples,
            seed,
            ..PlannerParams::default()
        }
    }

    #[test]
    fn catalog_registers_and_finds() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        assert_eq!(cat.len(), NamedScene::ALL.len());
        for scene in NamedScene::ALL {
            let id = cat.find(scene.name()).expect("registered");
            let snap = cat.get(id).unwrap();
            assert_eq!(snap.name, scene.name());
            assert_eq!(snap.rtree.len(), snap.scenario.obstacles.len());
        }
        assert!(cat.find("nope").is_none());
    }

    #[test]
    fn swap_bumps_epoch_and_new_requests_see_it() {
        let mut cat = EnvironmentCatalog::new();
        let epochs = moped_scenarios::dynamic_epochs(moped_robot::RobotModel::Mobile2d, 3, 3, 2.5);
        let env = cat.register("drifting-clutter", epochs[0].clone());
        assert_eq!(cat.get(env).unwrap().epoch, 0);

        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let before = service
            .submit(PlanRequest::new(env, small_params(150, 3)))
            .unwrap()
            .wait()
            .into_result()
            .expect("served");
        assert_eq!(before.epoch, 0);

        for (i, snap) in epochs.iter().enumerate().skip(1) {
            assert_eq!(service.swap_env(env, snap.clone()), Ok(i as u64));
        }
        let cat = service.catalog();
        let current = cat.get(env).unwrap();
        assert_eq!(current.epoch, 2);
        assert_eq!(current.name, "drifting-clutter");
        assert_eq!(current.rtree.len(), current.scenario.obstacles.len());

        let after = service
            .submit(PlanRequest::new(env, small_params(150, 3)))
            .unwrap()
            .wait()
            .into_result()
            .expect("served");
        assert_eq!(after.epoch, 2);
        // Same params, different environment snapshot — the response
        // epoch is what distinguishes the two results.
        assert_eq!(
            service.swap_env(EnvId(99), epochs[0].clone()),
            Err(RejectReason::UnknownEnvironment)
        );
        service.shutdown();
    }

    #[test]
    fn in_flight_requests_keep_their_admitted_snapshot() {
        let mut cat = EnvironmentCatalog::new();
        let epochs = moped_scenarios::dynamic_epochs(moped_robot::RobotModel::Mobile2d, 5, 2, 2.5);
        let env = cat.register("drifting-clutter", epochs[0].clone());
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                stop_poll_every: 16,
                ..Default::default()
            },
        );
        // Admit a long-running request, swap underneath it, then cancel:
        // its response must report the epoch it was admitted with.
        let hog = service
            .submit(PlanRequest::new(env, small_params(50_000_000, 1)))
            .unwrap();
        assert_eq!(service.swap_env(env, epochs[1].clone()), Ok(1));
        hog.cancel();
        let response = hog.wait().into_result().expect("served");
        assert_eq!(response.epoch, 0);
        service.shutdown();
    }

    #[test]
    fn unknown_environment_is_rejected() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let service = PlanService::start(cat, ServiceConfig::default());
        let bogus = EnvId(99);
        let err = service
            .submit(PlanRequest::new(bogus, small_params(10, 1)))
            .unwrap_err();
        assert_eq!(err, RejectReason::UnknownEnvironment);
        let metrics = service.shutdown();
        assert_eq!(metrics.rejected(), 1);
        assert_eq!(metrics.accepted(), 0);
    }

    #[test]
    fn single_request_round_trips() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let ticket = service
            .submit(PlanRequest::new(env, small_params(300, 3)))
            .unwrap();
        let response = ticket.wait().into_result().expect("served");
        assert_eq!(response.outcome, Outcome::Completed);
        assert_eq!(response.result.stats.samples, 300);
        assert_eq!(response.attempts, 1);
        assert!(!response.result.stats.stopped_early);
        // Untuned services never stamp a profile decision.
        assert!(response.profile.is_none());
        let metrics = service.shutdown();
        assert_eq!(metrics.accepted(), 1);
        assert_eq!(metrics.completed(), 1);
        assert_eq!(metrics.failed(), 0);
        assert_eq!(metrics.queue_depth(), 0);
        assert_eq!(metrics.service_latency().count(), 1);
    }

    #[test]
    fn pool_reports_full_capacity_when_healthy() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 3,
                ..Default::default()
            },
        );
        assert_eq!(service.worker_count(), 3);
        assert_eq!(service.alive_workers(), 3);
        let metrics = service.shutdown();
        assert_eq!(metrics.worker_respawns(), 0);
    }

    #[test]
    fn cancellation_returns_best_so_far() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("pillar-forest").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                stop_poll_every: 16,
                ..Default::default()
            },
        );
        // A budget that would take minutes — cancellation must cut it.
        let ticket = service
            .submit(PlanRequest::new(env, small_params(50_000_000, 9)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        ticket.cancel();
        let response = ticket.wait().into_result().expect("served");
        assert_eq!(response.outcome, Outcome::Cancelled);
        assert!(response.result.stats.stopped_early);
        assert!(response.result.stats.samples < 50_000_000);
        let metrics = service.shutdown();
        assert_eq!(metrics.cancelled(), 1);
    }

    #[test]
    fn queue_full_rejects_with_reason() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("slalom-corridor").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                stop_poll_every: 16,
                ..Default::default()
            },
        );
        // One long job occupies the worker; capacity-1 queue holds one
        // more; further admissions must bounce.
        let hog = service
            .submit(PlanRequest::new(env, small_params(50_000_000, 1)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(10)); // let the worker dequeue the hog
        let queued = service
            .submit(PlanRequest::new(env, small_params(10, 2)))
            .unwrap();
        let mut saw_full = false;
        for seed in 3..13 {
            if let Err(RejectReason::QueueFull { capacity }) =
                service.submit(PlanRequest::new(env, small_params(10, seed)))
            {
                assert_eq!(capacity, 1);
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "bounded queue must reject when full");
        hog.cancel();
        assert_eq!(
            hog.wait().into_result().unwrap().outcome,
            Outcome::Cancelled
        );
        assert_eq!(
            queued.wait().into_result().unwrap().outcome,
            Outcome::Completed
        );
        let metrics = service.shutdown();
        assert!(metrics.rejected() >= 1);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                stop_poll_every: 64,
                ..Default::default()
            },
        );
        let tickets: Vec<PlanTicket> = (0..8)
            .map(|seed| {
                service
                    .submit(PlanRequest::new(env, small_params(200, seed)))
                    .unwrap()
            })
            .collect();
        let metrics = service.shutdown(); // must drain, not drop, the 8 jobs
        let responses: Vec<PlanResponse> = tickets
            .into_iter()
            .map(|t| t.wait().into_result().expect("drained, not dropped"))
            .collect();
        assert_eq!(responses.len(), 8);
        assert!(responses.iter().all(|r| r.outcome == Outcome::Completed));
        assert_eq!(metrics.accepted(), 8);
        assert_eq!(metrics.completed(), 8);
        assert_eq!(metrics.queue_depth(), 0);
    }

    #[test]
    fn baseline_variant_requests_run() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let req = PlanRequest::new(env, small_params(150, 5)).with_variant(Variant::V0Baseline);
        let response = service.submit(req).unwrap().wait().into_result().unwrap();
        assert_eq!(response.outcome, Outcome::Completed);
        assert_eq!(response.result.stats.samples, 150);
        service.shutdown();
    }

    #[test]
    fn tuned_requests_resolve_profiles_and_stamp_responses() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let class = cat.get(env).unwrap().class.clone();
        let mut table = ProfileTable::static_default();
        table.insert(
            &class,
            moped_tune::PlannerProfile {
                engine: moped_core::Engine::RrtConnect,
                ..moped_tune::PlannerProfile::static_default()
            },
            "pinned for test",
        );
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                tuner: Some(Arc::new(Tuner::new(table))),
                ..Default::default()
            },
        );
        let params = small_params(300, 3);
        let response = service
            .submit(PlanRequest::new(env, params.clone()))
            .unwrap()
            .wait()
            .into_result()
            .expect("served");
        let res = response.profile.as_ref().expect("tuned services stamp");
        assert!(res.from_table);
        assert_eq!(res.class_id, class);
        assert_eq!(res.reason, "pinned for test");
        assert_eq!(res.profile.engine, moped_core::Engine::RrtConnect);

        // Byte-identical to the serial profile path on the same inputs.
        let scenario = service.catalog().get(env).unwrap().scenario.clone();
        let serial = moped_tune::plan_with_profile(&scenario, &res.profile, &params);
        assert_eq!(response.result.solved(), serial.solved());
        assert_eq!(
            response.result.path_cost.to_bits(),
            serial.path_cost.to_bits()
        );
        assert_eq!(response.result.stats.samples, serial.stats.samples);

        let metrics = service.shutdown();
        assert_eq!(metrics.profile_decisions(), vec![(class.clone(), 1, 1)]);
        assert_eq!(metrics.profile_switches(), 0);
        let text = metrics.dump_text();
        assert!(text.contains("profile_switches 0"));
        assert!(text.contains(&format!(
            "profile_decisions{{class=\"{class}\"}} 1 (1 from table)"
        )));
        let json = metrics.dump_json();
        assert!(json.contains("\"profile_decisions\":[{\"class\":"));
    }

    #[test]
    fn tuner_observe_applies_hysteresis_then_rewrites_the_table() {
        let tuner = Tuner::new(ProfileTable::static_default());
        let class = "mobile_2d/d3/o-few/v-thin";
        let collision_bound = Bottleneck {
            collision_q256: 220,
            nn_q256: 10,
            instrumented_ticks: 5_000,
        };
        // Hysteresis: the first epoch arms the streak, the second commits.
        assert!(tuner.observe(class, &collision_bound).is_none());
        let switch = tuner
            .observe(class, &collision_bound)
            .expect("switch on the second consecutive epoch");
        assert_eq!(switch.to.engine, moped_core::Engine::RrtConnect);
        let res = tuner.resolve(class);
        assert!(res.from_table);
        assert!(res.reason.starts_with("adapter: "));
        // The snapshot copy carries the rewrite.
        assert!(tuner.table().resolve(class).from_table);
    }

    #[test]
    fn swap_env_with_a_tuner_is_an_epoch_boundary_noop_without_traces() {
        let mut cat = EnvironmentCatalog::new();
        let epochs = moped_scenarios::dynamic_epochs(moped_robot::RobotModel::Mobile2d, 2, 3, 2.5);
        let env = cat.register("drifting-clutter", epochs[0].clone());
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                tuner: Some(Arc::new(Tuner::new(ProfileTable::static_default()))),
                ..Default::default()
            },
        );
        // With obs tracing off there is no bottleneck evidence, so the
        // swap must succeed without consulting the adapter.
        assert_eq!(service.swap_env(env, epochs[1].clone()), Ok(1));
        let metrics = service.shutdown();
        assert_eq!(metrics.profile_switches(), 0);
    }

    #[test]
    fn poll_reports_pending_then_resolution() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let ticket = service
            .submit(PlanRequest::new(env, small_params(100, 4)))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let outcome = loop {
            if let Some(outcome) = ticket.poll() {
                break outcome;
            }
            assert!(Instant::now() < deadline, "poll must resolve");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert!(outcome.is_served());
        // The resolution was taken; later polls report nothing new.
        assert!(ticket.poll().is_none());
        service.shutdown();
    }
}
