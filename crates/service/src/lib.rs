//! The MOPED serving layer: a concurrent batch planning engine.
//!
//! The core crates answer one plan request on one thread. This crate
//! turns them into a *service*: many [`PlanRequest`]s are admitted into a
//! bounded queue, scheduled across a fixed pool of worker threads, and
//! answered with [`PlanResponse`]s carrying the planner's result plus
//! queue/service timing. Design points:
//!
//! * **Shared immutable snapshots** — each environment is registered once
//!   in an [`EnvironmentCatalog`]; its scenario and bulk-loaded obstacle
//!   R-tree live behind an `Arc` shared by every worker, so admission is
//!   O(1) and no obstacle field is ever re-sorted per request.
//! * **Determinism under concurrency** — planning state is confined to
//!   the worker; a request's result is a pure function of its
//!   `(environment, params, variant)` triple, byte-identical to a serial
//!   [`moped_core::plan_variant`] run with the same inputs.
//! * **Deadlines and cancellation** — cooperative: the planner's stop
//!   hook is polled every few sampling rounds, and an expired or
//!   cancelled request returns its best-so-far anytime result instead of
//!   running away or killing a thread.
//! * **Admission control** — the queue is bounded; a full queue rejects
//!   with [`RejectReason::QueueFull`] rather than buffering unboundedly.
//! * **Graceful shutdown** — [`PlanService::shutdown`] stops admission,
//!   drains everything already queued, and joins the workers.
//! * **Observability** — a lock-free [`metrics::Metrics`] registry counts
//!   every admission outcome, aggregates per-stage op ledgers, and tracks
//!   latency in fixed-bucket histograms with text/JSON dumps.
//!
//! Only `std` is used: threads + channels, no external runtime.
//!
//! # Example
//!
//! ```
//! use moped_service::{EnvironmentCatalog, PlanRequest, PlanService, ServiceConfig};
//! use moped_core::PlannerParams;
//! use moped_robot::Robot;
//!
//! let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
//! let env = catalog.find("open-meadow").unwrap();
//! let service = PlanService::start(catalog, ServiceConfig { workers: 2, ..Default::default() });
//! let params = PlannerParams { max_samples: 200, seed: 7, ..Default::default() };
//! let ticket = service.submit(PlanRequest::new(env, params)).unwrap();
//! let response = ticket.wait();
//! assert!(response.result.stats.samples <= 200);
//! let metrics = service.shutdown();
//! assert_eq!(metrics.accepted(), 1);
//! ```

#![deny(missing_docs)]

pub mod metrics;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use moped_collision::{NaiveChecker, SecondStage, TwoStageChecker};
use moped_core::{
    variant_components, LinearIndex, PlanResult, PlanStats, PlannerParams, RrtStar, SimbrIndex,
    Variant,
};
use moped_env::catalog::{build as build_scene, NamedScene};
use moped_env::Scenario;
use moped_robot::Robot;
use moped_rtree::RTree;

pub use metrics::Metrics;

/// R-tree fanout used for environment snapshots (the paper's default).
const SNAPSHOT_RTREE_FANOUT: usize = 4;

/// An immutable, shareable environment: the scenario plus its obstacle
/// R-tree, bulk-loaded once at registration and shared by every worker.
#[derive(Clone, Debug)]
pub struct EnvSnapshot {
    /// Catalog name of this environment.
    pub name: String,
    /// The planning scenario (robot, obstacles, default start/goal).
    pub scenario: Scenario,
    /// STR-bulk-loaded R-tree over the scenario's obstacles.
    pub rtree: RTree,
}

impl EnvSnapshot {
    /// Builds a snapshot, paying the R-tree bulk load once.
    pub fn new(name: impl Into<String>, scenario: Scenario) -> Self {
        let rtree = RTree::build(&scenario.obstacles, SNAPSHOT_RTREE_FANOUT);
        EnvSnapshot {
            name: name.into(),
            scenario,
            rtree,
        }
    }
}

/// Handle to a registered environment (index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EnvId(usize);

impl EnvId {
    /// The catalog slot this id refers to.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The set of environments a service instance can plan in.
///
/// Registration happens before the service starts; afterwards the catalog
/// is immutable and shared (`Arc`) with every worker.
#[derive(Debug, Default)]
pub struct EnvironmentCatalog {
    envs: Vec<Arc<EnvSnapshot>>,
}

impl EnvironmentCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        EnvironmentCatalog::default()
    }

    /// A catalog holding every named benchmark scene for `robot`.
    pub fn standard(robot: &Robot) -> Self {
        let mut cat = EnvironmentCatalog::new();
        for scene in NamedScene::ALL {
            cat.register(scene.name(), build_scene(scene, robot.clone()));
        }
        cat
    }

    /// Registers an environment, returning its id.
    pub fn register(&mut self, name: impl Into<String>, scenario: Scenario) -> EnvId {
        self.envs.push(Arc::new(EnvSnapshot::new(name, scenario)));
        EnvId(self.envs.len() - 1)
    }

    /// Looks up a snapshot by id.
    pub fn get(&self, id: EnvId) -> Option<&Arc<EnvSnapshot>> {
        self.envs.get(id.0)
    }

    /// Finds an environment id by name.
    pub fn find(&self, name: &str) -> Option<EnvId> {
        self.envs.iter().position(|e| e.name == name).map(EnvId)
    }

    /// Number of registered environments.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// All registered ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = EnvId> + '_ {
        (0..self.envs.len()).map(EnvId)
    }
}

/// One planning request.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// Which environment to plan in.
    pub env: EnvId,
    /// Which kernel stack to run (defaults to full MOPED, V4).
    pub variant: Variant,
    /// Planner knobs — `params.seed` makes the request deterministic.
    pub params: PlannerParams,
    /// Wall-clock budget measured from admission; `None` means the
    /// sampling budget alone bounds the run.
    pub deadline: Option<Duration>,
}

impl PlanRequest {
    /// A full-MOPED request with no deadline.
    pub fn new(env: EnvId, params: PlannerParams) -> Self {
        PlanRequest {
            env,
            variant: Variant::V4Lci,
            params,
            deadline: None,
        }
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Selects a specific ablation variant.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }
}

/// How a request left the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to its full sampling budget.
    Completed,
    /// Stopped by its deadline; `result` is the best-so-far answer.
    DeadlineExpired,
    /// Stopped by [`PlanTicket::cancel`]; `result` is the best-so-far
    /// answer.
    Cancelled,
}

/// The answer to one [`PlanRequest`].
#[derive(Clone, Debug)]
pub struct PlanResponse {
    /// Service-assigned request id (admission order).
    pub id: u64,
    /// The environment planned in.
    pub env: EnvId,
    /// How the request terminated.
    pub outcome: Outcome,
    /// The planner's result (path, cost, per-stage statistics).
    pub result: PlanResult,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time spent planning (dequeue to response).
    pub service_time: Duration,
    /// Index of the worker that served the request.
    pub worker: usize,
}

/// Why a request was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity; retry later or shed load.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request references an environment id the catalog lacks.
    UnknownEnvironment,
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::UnknownEnvironment => write!(f, "unknown environment id"),
            RejectReason::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded queue capacity; admissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How many sampling rounds between deadline/cancellation polls.
    pub stop_poll_every: usize,
}

impl Default for ServiceConfig {
    /// 4 workers, a 64-deep queue, polling every 64 rounds.
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            stop_poll_every: 64,
        }
    }
}

/// A pending request: await the response, or cancel the work.
#[derive(Debug)]
pub struct PlanTicket {
    id: u64,
    cancel: Arc<AtomicBool>,
    rx: Receiver<PlanResponse>,
}

impl PlanTicket {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation; the response (best-so-far) still
    /// arrives through [`PlanTicket::wait`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the serving worker disappeared without responding
    /// (a worker panic — a bug, not a load condition).
    pub fn wait(self) -> PlanResponse {
        self.rx
            .recv()
            .expect("worker always responds before exiting")
    }

    /// Returns the response if it is already available.
    pub fn poll(&self) -> Option<PlanResponse> {
        self.rx.try_recv().ok()
    }
}

/// One unit of queued work.
struct Job {
    id: u64,
    env_id: EnvId,
    env: Arc<EnvSnapshot>,
    variant: Variant,
    params: PlannerParams,
    deadline_at: Option<Instant>,
    cancel: Arc<AtomicBool>,
    enqueued: Instant,
    respond: mpsc::Sender<PlanResponse>,
}

/// The concurrent batch planning engine. See the crate docs for the
/// architecture; construct with [`PlanService::start`].
pub struct PlanService {
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    catalog: Arc<EnvironmentCatalog>,
    next_id: AtomicU64,
    config: ServiceConfig,
}

impl PlanService {
    /// Spawns the worker pool and starts admitting requests.
    pub fn start(catalog: EnvironmentCatalog, config: ServiceConfig) -> Self {
        let workers_n = config.workers.max(1);
        let metrics = Arc::new(Metrics::default());
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let shared_rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(workers_n);
        for worker_idx in 0..workers_n {
            let rx = Arc::clone(&shared_rx);
            let metrics = Arc::clone(&metrics);
            let poll_every = config.stop_poll_every.max(1);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("moped-worker-{worker_idx}"))
                    .spawn(move || worker_loop(worker_idx, rx, metrics, poll_every))
                    .expect("spawning a worker thread"),
            );
        }
        PlanService {
            queue: Some(tx),
            workers,
            metrics,
            catalog: Arc::new(catalog),
            next_id: AtomicU64::new(0),
            config,
        }
    }

    /// The shared environment catalog.
    pub fn catalog(&self) -> &EnvironmentCatalog {
        &self.catalog
    }

    /// The live metrics registry (shared; clone the `Arc` to keep reading
    /// after shutdown).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Admits one request. O(1): resolves the environment snapshot and
    /// enqueues; planning happens on a worker. Rejection (with reason) is
    /// immediate when the queue is full, the environment is unknown, or
    /// the service is shutting down.
    pub fn submit(&self, request: PlanRequest) -> Result<PlanTicket, RejectReason> {
        let Some(queue) = self.queue.as_ref() else {
            self.metrics.inc_rejected();
            return Err(RejectReason::ShuttingDown);
        };
        let Some(env) = self.catalog.get(request.env) else {
            self.metrics.inc_rejected();
            return Err(RejectReason::UnknownEnvironment);
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job {
            id,
            env_id: request.env,
            env: Arc::clone(env),
            variant: request.variant,
            params: request.params,
            deadline_at: request.deadline.map(|d| now + d),
            cancel: Arc::clone(&cancel),
            enqueued: now,
            respond: tx,
        };
        match queue.try_send(job) {
            Ok(()) => {
                self.metrics.inc_accepted();
                self.metrics.queue_entered();
                Ok(PlanTicket { id, cancel, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.inc_rejected();
                Err(RejectReason::QueueFull {
                    capacity: self.config.queue_capacity.max(1),
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.inc_rejected();
                Err(RejectReason::ShuttingDown)
            }
        }
    }

    /// Submits a batch and blocks until every admitted request responds.
    /// Per-request admission failures are reported in place; order
    /// matches the input.
    pub fn run_batch(
        &self,
        requests: impl IntoIterator<Item = PlanRequest>,
    ) -> Vec<Result<PlanResponse, RejectReason>> {
        let tickets: Vec<Result<PlanTicket, RejectReason>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        tickets
            .into_iter()
            .map(|t| t.map(PlanTicket::wait))
            .collect()
    }

    /// Stops admission, drains every queued request, joins the workers,
    /// and returns the metrics registry. Outstanding [`PlanTicket`]s all
    /// receive their responses before this returns.
    pub fn shutdown(mut self) -> Arc<Metrics> {
        self.drain_and_join();
        Arc::clone(&self.metrics)
    }

    fn drain_and_join(&mut self) {
        // Dropping the sender closes the queue; workers drain what was
        // already admitted, then their recv() errors out and they exit.
        self.queue = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// A worker: pull a job, plan it, respond, repeat until the queue closes.
fn worker_loop(
    worker_idx: usize,
    rx: Arc<Mutex<Receiver<Job>>>,
    metrics: Arc<Metrics>,
    poll_every: usize,
) {
    // Per-worker cache of two-stage checkers: the R-tree inside is a
    // structural clone of the snapshot's shared build (no re-sort), and
    // the scratch buffers stay thread-local, keeping the checker hot
    // across requests to the same environment.
    let mut checkers: HashMap<EnvId, TwoStageChecker> = HashMap::new();
    loop {
        let job = {
            let guard = rx.lock().expect("queue receiver poisoned");
            guard.recv()
        };
        let Ok(job) = job else {
            break; // queue closed and drained: graceful exit
        };
        metrics.queue_left();
        let started = Instant::now();
        let queue_wait = started.duration_since(job.enqueued);
        metrics.queue_wait.record(queue_wait);

        let result = execute(&job, &mut checkers, poll_every, started);
        let outcome = if result.stats.stopped_early {
            if job.cancel.load(Ordering::Relaxed) {
                metrics.inc_cancelled();
                Outcome::Cancelled
            } else {
                metrics.inc_deadline_expired();
                Outcome::DeadlineExpired
            }
        } else {
            metrics.inc_completed();
            Outcome::Completed
        };
        metrics.record_stats(&result.stats, result.solved());
        let service_time = started.elapsed();
        metrics.service_latency.record(service_time);

        // A dropped ticket just discards the response.
        let _ = job.respond.send(PlanResponse {
            id: job.id,
            env: job.env_id,
            outcome,
            result,
            queue_wait,
            service_time,
            worker: worker_idx,
        });
    }
}

/// Runs one request's plan, wiring the variant's kernel stack exactly
/// like `moped_core::plan_variant` (so results are byte-identical to a
/// serial run) but reusing the shared R-tree snapshot for the two-stage
/// checker.
fn execute(
    job: &Job,
    checkers: &mut HashMap<EnvId, TwoStageChecker>,
    poll_every: usize,
    started: Instant,
) -> PlanResult {
    // Deadline already blown while queued: answer immediately with an
    // empty best-so-far result instead of burning worker time.
    if job.deadline_at.is_some_and(|d| started >= d) {
        let mut stats = PlanStats::default();
        stats.stopped_early = true;
        return PlanResult {
            path: None,
            path_cost: f64::INFINITY,
            stats,
        };
    }

    let scenario = &job.env.scenario;
    let dim = scenario.robot.dof();
    let (two_stage, simbr, sias, lci) = variant_components(job.variant);
    let cancel = Arc::clone(&job.cancel);
    let deadline_at = job.deadline_at;
    let stop =
        move || cancel.load(Ordering::Relaxed) || deadline_at.is_some_and(|d| Instant::now() >= d);

    // The naive checker only exists for baseline-variant comparisons; the
    // serving path proper is the cached two-stage checker.
    let naive;
    let checker: &dyn moped_collision::CollisionChecker = if two_stage {
        checkers.entry(job.env_id).or_insert_with(|| {
            TwoStageChecker::with_prebuilt(
                job.env.rtree.clone(),
                scenario.obstacles.clone(),
                SecondStage::ObbExact,
            )
        })
    } else {
        naive = NaiveChecker::new(scenario.obstacles.clone());
        &naive
    };

    if simbr {
        let index = SimbrIndex::new(dim, 6, sias, lci);
        RrtStar::new(scenario, checker, index, job.params.clone())
            .with_stop_hook(poll_every, stop)
            .plan()
    } else {
        RrtStar::new(scenario, checker, LinearIndex::new(), job.params.clone())
            .with_stop_hook(poll_every, stop)
            .plan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(samples: usize, seed: u64) -> PlannerParams {
        PlannerParams {
            max_samples: samples,
            seed,
            ..PlannerParams::default()
        }
    }

    #[test]
    fn catalog_registers_and_finds() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        assert_eq!(cat.len(), NamedScene::ALL.len());
        for scene in NamedScene::ALL {
            let id = cat.find(scene.name()).expect("registered");
            let snap = cat.get(id).unwrap();
            assert_eq!(snap.name, scene.name());
            assert_eq!(snap.rtree.len(), snap.scenario.obstacles.len());
        }
        assert!(cat.find("nope").is_none());
    }

    #[test]
    fn unknown_environment_is_rejected() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let service = PlanService::start(cat, ServiceConfig::default());
        let bogus = EnvId(99);
        let err = service
            .submit(PlanRequest::new(bogus, small_params(10, 1)))
            .unwrap_err();
        assert_eq!(err, RejectReason::UnknownEnvironment);
        let metrics = service.shutdown();
        assert_eq!(metrics.rejected(), 1);
        assert_eq!(metrics.accepted(), 0);
    }

    #[test]
    fn single_request_round_trips() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let ticket = service
            .submit(PlanRequest::new(env, small_params(300, 3)))
            .unwrap();
        let response = ticket.wait();
        assert_eq!(response.outcome, Outcome::Completed);
        assert_eq!(response.result.stats.samples, 300);
        assert!(!response.result.stats.stopped_early);
        let metrics = service.shutdown();
        assert_eq!(metrics.accepted(), 1);
        assert_eq!(metrics.completed(), 1);
        assert_eq!(metrics.queue_depth(), 0);
        assert_eq!(metrics.service_latency.count(), 1);
    }

    #[test]
    fn cancellation_returns_best_so_far() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("pillar-forest").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                stop_poll_every: 16,
                ..Default::default()
            },
        );
        // A budget that would take minutes — cancellation must cut it.
        let ticket = service
            .submit(PlanRequest::new(env, small_params(50_000_000, 9)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        ticket.cancel();
        let response = ticket.wait();
        assert_eq!(response.outcome, Outcome::Cancelled);
        assert!(response.result.stats.stopped_early);
        assert!(response.result.stats.samples < 50_000_000);
        let metrics = service.shutdown();
        assert_eq!(metrics.cancelled(), 1);
    }

    #[test]
    fn queue_full_rejects_with_reason() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("slalom-corridor").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                stop_poll_every: 16,
            },
        );
        // One long job occupies the worker; capacity-1 queue holds one
        // more; further admissions must bounce.
        let hog = service
            .submit(PlanRequest::new(env, small_params(50_000_000, 1)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(10)); // let the worker dequeue the hog
        let queued = service
            .submit(PlanRequest::new(env, small_params(10, 2)))
            .unwrap();
        let mut saw_full = false;
        for seed in 3..13 {
            match service.submit(PlanRequest::new(env, small_params(10, seed))) {
                Err(RejectReason::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_full = true;
                    break;
                }
                Ok(_) | Err(_) => {}
            }
        }
        assert!(saw_full, "bounded queue must reject when full");
        hog.cancel();
        assert_eq!(hog.wait().outcome, Outcome::Cancelled);
        assert_eq!(queued.wait().outcome, Outcome::Completed);
        let metrics = service.shutdown();
        assert!(metrics.rejected() >= 1);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                stop_poll_every: 64,
            },
        );
        let tickets: Vec<PlanTicket> = (0..8)
            .map(|seed| {
                service
                    .submit(PlanRequest::new(env, small_params(200, seed)))
                    .unwrap()
            })
            .collect();
        let metrics = service.shutdown(); // must drain, not drop, the 8 jobs
        let responses: Vec<PlanResponse> = tickets.into_iter().map(PlanTicket::wait).collect();
        assert_eq!(responses.len(), 8);
        assert!(responses.iter().all(|r| r.outcome == Outcome::Completed));
        assert_eq!(metrics.accepted(), 8);
        assert_eq!(metrics.completed(), 8);
        assert_eq!(metrics.queue_depth(), 0);
    }

    #[test]
    fn baseline_variant_requests_run() {
        let cat = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let env = cat.find("open-meadow").unwrap();
        let service = PlanService::start(
            cat,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let req = PlanRequest::new(env, small_params(150, 5)).with_variant(Variant::V0Baseline);
        let response = service.submit(req).unwrap().wait();
        assert_eq!(response.outcome, Outcome::Completed);
        assert_eq!(response.result.stats.samples, 150);
        service.shutdown();
    }
}
