//! The sharded, work-stealing admission queue and the one-shot response
//! slot that resolves each ticket.
//!
//! The pool's original admission path was a single bounded
//! `sync_channel` whose receiver sat behind one `Mutex` shared by every
//! worker: each dequeue took a pool-wide lock, so adding workers added
//! contention instead of throughput (BENCH_service.json showed 8 workers
//! *slower* than 1). This module replaces it with one FIFO deque *per
//! worker*:
//!
//! * **Admission** reserves a slot against a single global capacity
//!   atomic (reject-don't-buffer is preserved exactly), then round-robins
//!   the job onto a shard. The push touches one shard lock and — while
//!   the pool is busy — nothing else.
//! * **Dequeue** pops the worker's own shard, contending only with
//!   admission to that shard and the occasional stealer, never with the
//!   rest of the pool.
//! * **Stealing**: a worker whose shard runs dry takes the *oldest* job
//!   from a sibling shard (FIFO steal — this is a latency-bound service,
//!   not a fork-join pool, so oldest-first minimises queue-wait tails).
//!   No queued request ever waits behind one idle worker.
//! * **Parking** is two-phase so the wake machinery stays off the hot
//!   path: a worker that finds every shard empty registers itself in the
//!   sleeper count, re-scans, and only then parks on the condvar.
//!   Admission consults the sleeper count with one atomic load and skips
//!   the wake lock entirely when nobody sleeps (the saturated steady
//!   state). The count is incremented *before* the re-scan, so a push
//!   that misses the count is guaranteed to be seen by the re-scan — no
//!   lost wakeups; a bounded park timeout is kept as belt and braces.
//!
//! The response path is likewise per-request: a [`ResponseSlot`] is a
//! one-shot mutex+condvar cell. The worker's [`Responder`] half delivers
//! exactly one resolution; dropping it unsent (a worker death mid-job)
//! marks the slot abandoned, which the ticket surfaces as a typed
//! `WorkerDied` failure — the same guarantee the old sender-drop
//! semantics gave, without allocating channel machinery per request.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::{Job, PlanOutcome};

/// Locks a mutex, recovering the guard if another thread died while
/// holding it — every structure in this module tolerates a panicked
/// holder (a worker death can abandon a guard at any point), and
/// refusing the lock would wedge the pool.
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Belt-and-braces park bound. Wakeups are edge-triggered through the
/// sleeper count (see the module docs for why no edge can be missed);
/// the timeout only bounds the cost of a missed edge if that reasoning
/// is ever broken by a refactor.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Why a push was refused (the job itself is dropped; its responder
/// marks the slot abandoned, which is harmless because no ticket has
/// been handed out for a refused admission).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PushRefused {
    /// The queue is at its global capacity bound.
    Full,
    /// The queue is closed (service shutting down).
    Closed,
}

/// One worker's deque.
struct Shard {
    jobs: Mutex<VecDeque<Job>>,
}

/// A dequeued job plus how it was obtained.
pub(crate) struct Popped {
    pub(crate) job: Job,
    /// Whether the job came off another worker's shard.
    pub(crate) stolen: bool,
}

/// The sharded admission queue. See the module docs.
pub(crate) struct ShardedQueue {
    shards: Box<[Shard]>,
    /// Jobs currently queued across all shards; enforces `capacity`.
    queued: AtomicUsize,
    capacity: usize,
    /// Round-robin admission cursor.
    next_shard: AtomicUsize,
    closed: AtomicBool,
    /// Workers parked (or committed to parking) on `wake`.
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl ShardedQueue {
    /// A queue with one shard per worker and a global capacity bound.
    pub(crate) fn new(workers: usize, capacity: usize) -> Self {
        let shards: Box<[Shard]> = (0..workers.max(1))
            .map(|_| Shard {
                jobs: Mutex::new(VecDeque::new()),
            })
            .collect();
        ShardedQueue {
            shards,
            queued: AtomicUsize::new(0),
            capacity: capacity.max(1),
            next_shard: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Whether [`close`](ShardedQueue::close) has been called.
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Admits one job: O(1), reject-don't-buffer. On refusal the job is
    /// dropped (no ticket exists for it yet).
    pub(crate) fn push(&self, job: Job) -> Result<(), PushRefused> {
        if self.is_closed() {
            return Err(PushRefused::Closed);
        }
        // Reserve a slot against the global bound before touching any
        // shard, so capacity is exact under concurrent admission.
        if self
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                (q < self.capacity).then_some(q + 1)
            })
            .is_err()
        {
            return Err(PushRefused::Full);
        }
        let cursor = self.next_shard.fetch_add(1, Ordering::Relaxed);
        // moped-lint: allow(panic-path) modulo the shard count, which `new` clamps to >= 1 — in-bounds by construction
        let shard = &self.shards[cursor % self.shards.len()];
        lock_ignore_poison(&shard.jobs).push_back(job);
        // Wake one sleeper, if any. The SeqCst load orders after the
        // shard insert: a worker that registered as a sleeper before
        // this load will re-scan and find the job; a worker that
        // registers after it is counted here and woken.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _wake_guard = lock_ignore_poison(&self.sleep);
            self.wake.notify_one();
        }
        Ok(())
    }

    /// Non-blocking dequeue for `worker`: its own shard first (FIFO),
    /// then an oldest-first steal from the other shards.
    pub(crate) fn try_pop(&self, worker: usize) -> Option<Popped> {
        let n = self.shards.len();
        // moped-lint: allow(panic-path) modulo the shard count, which `new` clamps to >= 1
        let own = worker % n;
        // Ring sweep: the worker's own shard first (k == 0, a plain
        // FIFO pop), then an oldest-first steal from each sibling.
        for (k, shard) in self.shards.iter().cycle().skip(own).take(n).enumerate() {
            let mut jobs = lock_ignore_poison(&shard.jobs);
            if let Some(job) = jobs.pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(Popped { job, stolen: k > 0 });
            }
        }
        None
    }

    /// Blocking dequeue: parks until a job arrives or the queue is
    /// closed *and* drained. `None` means the worker should exit.
    pub(crate) fn pop_blocking(&self, worker: usize) -> Option<Popped> {
        loop {
            if let Some(popped) = self.try_pop(worker) {
                return Some(popped);
            }
            // Two-phase park: register as a sleeper *before* the
            // re-scan, so any push that skipped the wake (it read
            // sleepers == 0) necessarily landed before our registration
            // and is found by the re-scan below.
            let guard = lock_ignore_poison(&self.sleep);
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let rescanned = self.try_pop(worker);
            if let Some(popped) = rescanned {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return Some(popped);
            }
            if self.is_closed() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return None;
            }
            let (guard, _timed_out) = self
                .wake
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(PoisonError::into_inner);
            drop(guard);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Stops admission and wakes every parked worker; workers drain
    /// whatever is already queued, then exit.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _wake_guard = lock_ignore_poison(&self.sleep);
        self.wake.notify_all();
    }

    /// Removes and returns every job still queued (used after the whole
    /// pool has exited, to resolve leftovers with typed failures).
    pub(crate) fn drain_remaining(&self) -> Vec<Job> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            // Take the whole deque in one motion and release the shard
            // lock before accounting — nothing else is appended while a
            // guard is held.
            let drained: Vec<Job> = lock_ignore_poison(&shard.jobs).drain(..).collect();
            self.queued.fetch_sub(drained.len(), Ordering::SeqCst);
            out.extend(drained);
        }
        out
    }
}

/// State of one request's resolution slot.
// The size gap between variants is deliberate: a resolution is built
// once per request and moved through the slot exactly once, so boxing
// the outcome would trade a single move for a heap allocation on the
// hot path (same reasoning as `PlanOutcome` itself).
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SlotState {
    /// No resolution yet.
    Pending,
    /// Resolution delivered, not yet taken by the ticket.
    Ready(PlanOutcome),
    /// Resolution taken by the ticket.
    Taken,
    /// The responder was dropped without sending (worker died mid-job).
    Abandoned,
}

/// Result of a non-blocking slot probe.
// Same deliberate size gap as `SlotState`: the outcome is moved out at
// the poll site exactly once, so boxing it would only add a heap
// allocation to the response path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum TryTake {
    /// Nothing delivered yet.
    Pending,
    /// The resolution, taken exactly once.
    Resolved(PlanOutcome),
    /// The responder is gone and no resolution will ever arrive.
    Abandoned,
}

/// A one-shot resolution cell: one mutex + condvar per request, no
/// channel machinery. See the module docs.
#[derive(Debug)]
pub(crate) struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResponseSlot {
    /// A fresh slot and its (single) responder half.
    pub(crate) fn pair() -> (Arc<ResponseSlot>, Responder) {
        let slot = Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        });
        let responder = Responder {
            slot: Arc::clone(&slot),
            sent: false,
        };
        (slot, responder)
    }

    /// Blocks until the slot resolves. `None` means the responder was
    /// dropped unsent — the caller maps that to a `WorkerDied` failure.
    pub(crate) fn wait_take(&self) -> Option<PlanOutcome> {
        let mut state = lock_ignore_poison(&self.state);
        loop {
            if matches!(*state, SlotState::Pending) {
                state = self
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            return match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(outcome) => Some(outcome),
                _ => None,
            };
        }
    }

    /// Non-blocking probe; yields the resolution at most once.
    pub(crate) fn try_take(&self) -> TryTake {
        let mut state = lock_ignore_poison(&self.state);
        match &*state {
            SlotState::Pending => TryTake::Pending,
            SlotState::Abandoned | SlotState::Taken => TryTake::Abandoned,
            SlotState::Ready(_) => {
                let SlotState::Ready(outcome) = std::mem::replace(&mut *state, SlotState::Taken)
                else {
                    return TryTake::Abandoned; // just matched Ready above
                };
                TryTake::Resolved(outcome)
            }
        }
    }
}

/// The worker-side half of a [`ResponseSlot`]: delivers exactly one
/// resolution, or — if dropped unsent by an unwinding worker — marks
/// the slot abandoned so the ticket resolves as `WorkerDied` instead of
/// hanging.
pub(crate) struct Responder {
    slot: Arc<ResponseSlot>,
    sent: bool,
}

impl Responder {
    /// Delivers the resolution and wakes the waiting ticket, if any.
    pub(crate) fn send(mut self, outcome: PlanOutcome) {
        self.sent = true;
        {
            let mut state = lock_ignore_poison(&self.slot.state);
            if matches!(*state, SlotState::Pending) {
                *state = SlotState::Ready(outcome);
            }
        }
        self.slot.ready.notify_all();
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        {
            let mut state = lock_ignore_poison(&self.slot.state);
            if matches!(*state, SlotState::Pending) {
                *state = SlotState::Abandoned;
            }
        }
        self.slot.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_round_trips_a_resolution() {
        let (slot, responder) = ResponseSlot::pair();
        assert!(matches!(slot.try_take(), TryTake::Pending));
        responder.send(PlanOutcome::Failed(crate::PlanFailure {
            id: 7,
            env: crate::EnvId(0),
            reason: crate::FailureReason::ShutdownDrained,
            attempts: 0,
        }));
        let TryTake::Resolved(outcome) = slot.try_take() else {
            panic!("resolution must be available");
        };
        assert_eq!(outcome.failure().map(|f| f.id), Some(7));
        // Taken exactly once.
        assert!(matches!(slot.try_take(), TryTake::Abandoned));
    }

    #[test]
    fn dropped_responder_abandons_the_slot() {
        let (slot, responder) = ResponseSlot::pair();
        drop(responder);
        assert!(matches!(slot.try_take(), TryTake::Abandoned));
        assert!(slot.wait_take().is_none());
    }
}
