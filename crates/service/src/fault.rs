//! Fault-injection harness for the serving layer.
//!
//! A [`FaultPlan`] names *sites* in the serving path and attaches rules
//! to them: panic, sleep, or force a queue-full rejection on every Nth
//! hit of the site, optionally capped to a total number of firings. The
//! harness is compiled in unconditionally but completely inert unless a
//! plan is installed in [`ServiceConfig::faults`](crate::ServiceConfig)
//! — the unconfigured cost is one `Option` branch per site.
//!
//! Site semantics (see DESIGN §7):
//!
//! * [`FaultSite::Admission`] fires in the *client* thread inside
//!   [`PlanService::submit`](crate::PlanService::submit); it is the only
//!   site where [`FaultKind::QueueFull`] applies.
//! * [`FaultSite::Planning`] fires inside the worker's panic guard: an
//!   injected panic is caught and resolved as a typed
//!   [`FailureReason::Panic`](crate::FailureReason) response (or
//!   retried, per the configured [`RetryPolicy`](crate::RetryPolicy)).
//! * [`FaultSite::Dequeue`], [`FaultSite::Steal`] and
//!   [`FaultSite::Respond`] fire *outside* the guard: an injected panic
//!   kills the worker thread itself, which exercises the supervisor's
//!   respawn path and the client-side
//!   [`FailureReason::WorkerDied`](crate::FailureReason) resolution.
//!   `Steal` is the narrowest of the three: it is hit only when the
//!   dequeued job came off *another* worker's shard, so it targets the
//!   work-stealing path specifically.
//!
//! Hit counters are shared across the pool, so "every Nth" means every
//! Nth hit of the site service-wide, not per worker. Injected panic
//! messages are stable per site on purpose: the retry loop treats two
//! consecutive identical panics as deterministic and stops retrying.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A named instrumentation point in the serving path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Inside `PlanService::submit`, before the queue send (client thread).
    Admission,
    /// In the worker loop, right after a job is pulled off the queue and
    /// *outside* the panic guard — a panic here kills the worker.
    Dequeue,
    /// In the worker loop, hit only when the dequeued job was *stolen*
    /// from another worker's shard; *outside* the panic guard — a panic
    /// here kills the thief mid-steal.
    Steal,
    /// At the start of a planning attempt, *inside* the panic guard — a
    /// panic here becomes a typed failure response.
    Planning,
    /// After planning, before the response is sent and *outside* the
    /// panic guard — a panic here kills the worker with the response
    /// unsent.
    Respond,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::Admission => "admission",
            FaultSite::Dequeue => "dequeue",
            FaultSite::Steal => "steal",
            FaultSite::Planning => "planning",
            FaultSite::Respond => "respond",
        };
        f.write_str(name)
    }
}

/// What happens when a rule fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Panic at the site (caught or worker-killing, per site semantics).
    Panic,
    /// Sleep for the given duration (artificial latency).
    Delay(Duration),
    /// Force a `RejectReason::QueueFull` rejection; only meaningful at
    /// [`FaultSite::Admission`], ignored elsewhere.
    QueueFull,
}

/// One injection rule: fire `kind` on every `every`-th hit of `site`,
/// at most `limit` times in total.
#[derive(Debug)]
struct FaultRule {
    site: FaultSite,
    kind: FaultKind,
    every: u64,
    limit: u64,
    hits: AtomicU64,
    fired: AtomicU64,
}

/// A set of fault-injection rules shared (via `Arc`) by the admission
/// path and every worker. See the module docs for site semantics.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty (inert) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a rule firing `kind` on every `every`-th hit of `site`, with
    /// no cap on total firings. `every` is clamped to at least 1.
    pub fn with_rule(self, site: FaultSite, kind: FaultKind, every: u64) -> Self {
        self.with_rule_limited(site, kind, every, u64::MAX)
    }

    /// Adds a rule firing `kind` on every `every`-th hit of `site`, at
    /// most `limit` times in total.
    pub fn with_rule_limited(
        mut self,
        site: FaultSite,
        kind: FaultKind,
        every: u64,
        limit: u64,
    ) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            every: every.max(1),
            limit,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Panic on every `every`-th hit of `site`.
    pub fn panic_every(self, site: FaultSite, every: u64) -> Self {
        self.with_rule(site, FaultKind::Panic, every)
    }

    /// Panic exactly once, on the first hit of `site`.
    pub fn panic_once(self, site: FaultSite) -> Self {
        self.with_rule_limited(site, FaultKind::Panic, 1, 1)
    }

    /// Sleep `delay` on every `every`-th hit of `site`.
    pub fn delay_every(self, site: FaultSite, delay: Duration, every: u64) -> Self {
        self.with_rule(site, FaultKind::Delay(delay), every)
    }

    /// Force a queue-full rejection on every `every`-th admission.
    pub fn queue_full_every(self, every: u64) -> Self {
        self.with_rule(FaultSite::Admission, FaultKind::QueueFull, every)
    }

    /// Kill the serving worker on every `every`-th dequeue (a panic
    /// outside the per-job guard), at most `limit` times.
    pub fn kill_worker_every(self, every: u64, limit: u64) -> Self {
        self.with_rule_limited(FaultSite::Dequeue, FaultKind::Panic, every, limit)
    }

    /// Kill the thief on every `every`-th *successful steal* (a panic
    /// outside the per-job guard, hit only when the job came off another
    /// worker's shard), at most `limit` times.
    pub fn kill_worker_on_steal(self, every: u64, limit: u64) -> Self {
        self.with_rule_limited(FaultSite::Steal, FaultKind::Panic, every, limit)
    }

    /// Whether the plan has no rules (and is therefore inert).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Records one hit of `site` against every matching rule and returns
    /// the action of the first rule whose cadence and limit allow it to
    /// fire, if any.
    pub(crate) fn fire(&self, site: FaultSite) -> Option<FaultKind> {
        let mut action = None;
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
            // moped-lint: allow(panic-path) `every` is clamped to >= 1 at rule construction
            if hit % rule.every == 0 {
                let prior = rule.fired.fetch_add(1, Ordering::Relaxed);
                if prior < rule.limit && action.is_none() {
                    action = Some(rule.kind);
                }
            }
        }
        action
    }

    /// The panic message used for injected panics at `site`; stable per
    /// site so the retry loop can recognise a repeat.
    pub(crate) fn panic_message(site: FaultSite) -> String {
        format!("moped-fault: injected panic at {site}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for _ in 0..100 {
            assert_eq!(plan.fire(FaultSite::Planning), None);
        }
    }

    #[test]
    fn cadence_fires_every_nth_hit() {
        let plan = FaultPlan::new().panic_every(FaultSite::Planning, 3);
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.fire(FaultSite::Planning).is_some())
            .collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        // Hits on other sites do not advance the counter.
        assert_eq!(plan.fire(FaultSite::Dequeue), None);
    }

    #[test]
    fn limit_caps_total_firings() {
        let plan = FaultPlan::new().with_rule_limited(FaultSite::Dequeue, FaultKind::Panic, 2, 1);
        let fired: Vec<bool> = (0..8)
            .map(|_| plan.fire(FaultSite::Dequeue).is_some())
            .collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 1);
        assert!(fired[1], "first firing is on the second hit");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new()
            .delay_every(FaultSite::Admission, Duration::from_millis(1), 1)
            .queue_full_every(1);
        assert_eq!(
            plan.fire(FaultSite::Admission),
            Some(FaultKind::Delay(Duration::from_millis(1)))
        );
    }

    #[test]
    fn zero_cadence_is_clamped() {
        let plan = FaultPlan::new().panic_every(FaultSite::Respond, 0);
        assert!(plan.fire(FaultSite::Respond).is_some());
    }

    #[test]
    fn sites_render() {
        assert_eq!(FaultSite::Admission.to_string(), "admission");
        assert_eq!(FaultSite::Steal.to_string(), "steal");
        assert_eq!(
            FaultPlan::panic_message(FaultSite::Planning),
            "moped-fault: injected panic at planning"
        );
    }
}
