//! Worker-pool supervision and the panic-isolated worker loop.
//!
//! Each planning attempt runs inside `catch_unwind`, so a panicking
//! request resolves as a typed [`PlanOutcome::Failed`] response instead
//! of taking the worker (and every in-flight ticket) with it. Panics
//! that do escape the guard — deliberate worker-kill faults, or bugs in
//! the loop itself — are absorbed by the supervisor: a monitor thread
//! joins the dead worker and respawns a replacement in the same slot,
//! so pool capacity is never silently lost.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use moped_collision::{NaiveChecker, SecondStage, TwoStageChecker};
use moped_core::{variant_components, LinearIndex, PlanResult, PlanStats, RrtStar, SimbrIndex};

use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::metrics::Metrics;
use crate::queue::{lock_ignore_poison, ShardedQueue};
use crate::{
    EnvId, FailureReason, Job, Outcome, PlanFailure, PlanOutcome, PlanResponse, RetryPolicy,
};

/// How often the monitor thread scans the pool for dead workers.
const MONITOR_POLL: Duration = Duration::from_millis(2);

/// Jobs served between obs flushes while a worker stays busy. The flush
/// takes the global obs registry lock, so it must stay off the per-job
/// path; idle workers flush immediately before parking instead, which
/// keeps profile snapshots fresh whenever the pool has slack.
const FLUSH_EVERY: usize = 32;

/// State shared by every worker, the monitor, and the service handle.
pub(crate) struct WorkerShared {
    /// The sharded work-stealing admission queue.
    pub(crate) queue: Arc<ShardedQueue>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) poll_every: usize,
    pub(crate) retry: RetryPolicy,
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Set (before the queue closes) to tell the monitor that worker
    /// exits are expected and must not trigger respawns.
    pub(crate) shutting_down: AtomicBool,
}

thread_local! {
    /// Set around code whose panics are expected (the per-job guard,
    /// injected worker kills) so the process-wide hook stays silent for
    /// them while genuine panics elsewhere still report normally.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses output for
/// panics the serving layer expects and handles; all other panics are
/// forwarded to the previously installed hook.
pub(crate) fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` under `catch_unwind` with panic output suppressed.
fn catch_quietly<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    QUIET_PANICS.with(|q| q.set(true));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET_PANICS.with(|q| q.set(false));
    out
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker pool plus its monitor thread.
pub(crate) struct Pool {
    slots: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    monitor: Option<JoinHandle<()>>,
    shared: Arc<WorkerShared>,
}

impl Pool {
    /// Spawns `workers` worker threads and the monitor that keeps that
    /// many alive until shutdown.
    pub(crate) fn start(workers: usize, shared: Arc<WorkerShared>) -> Self {
        let slots: Vec<Option<JoinHandle<()>>> = (0..workers)
            .map(|idx| Some(spawn_worker(idx, &shared)))
            .collect();
        let slots = Arc::new(Mutex::new(slots));
        let monitor = {
            let slots = Arc::clone(&slots);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("moped-supervisor".into())
                .spawn(move || monitor_loop(&slots, &shared))
                // moped-lint: allow(panic-path) OS thread-spawn failure at startup is resource exhaustion with no caller to report to; no request is in flight yet
                .expect("spawning the supervisor thread")
        };
        Pool {
            slots,
            monitor: Some(monitor),
            shared,
        }
    }

    /// Number of worker threads currently running.
    pub(crate) fn alive(&self) -> usize {
        lock_ignore_poison(&self.slots)
            .iter()
            .filter(|slot| slot.as_ref().is_some_and(|h| !h.is_finished()))
            .count()
    }

    /// Marks the pool as shutting down and stops the monitor, so worker
    /// exits from here on are treated as expected (no respawns).
    pub(crate) fn begin_shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            monitor.thread().unpark();
            let _ = monitor.join();
        }
    }

    /// Joins every worker thread. Call after the queue is closed.
    pub(crate) fn join_workers(&mut self) {
        let handles: Vec<JoinHandle<()>> = lock_ignore_poison(&self.slots)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Resolves any jobs still sitting in the queue after every worker
    /// has exited (possible only when the whole pool died during a
    /// drain): each leftover ticket gets a typed shutdown failure
    /// instead of hanging forever.
    pub(crate) fn fail_leftovers(&self) {
        for job in self.shared.queue.drain_remaining() {
            self.shared.metrics.queue_left();
            self.shared.metrics.service_shard().inc_failed();
            let failure = PlanFailure {
                id: job.id,
                env: job.env_id,
                reason: FailureReason::ShutdownDrained,
                attempts: 0,
            };
            job.respond.send(PlanOutcome::Failed(failure));
        }
    }
}

/// Monitor: scan the pool, respawn any dead worker in place, and join
/// the corpses only after releasing the slot table — `join` can block
/// on thread teardown, and `alive()`/`join_workers()` contend for the
/// same lock.
fn monitor_loop(slots: &Mutex<Vec<Option<JoinHandle<()>>>>, shared: &Arc<WorkerShared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        let mut dead: Vec<JoinHandle<()>> = Vec::new();
        {
            let mut slots = lock_ignore_poison(slots);
            for (idx, slot) in slots.iter_mut().enumerate() {
                if let Some(handle) = slot.take_if(|h| h.is_finished()) {
                    dead.push(handle);
                    shared.metrics.inc_worker_respawns();
                    *slot = Some(spawn_worker(idx, shared));
                }
            }
        }
        for handle in dead {
            // Join result intentionally discarded: the worker is dead
            // either way, and the panic payload (if any) was already
            // surfaced through the job's ticket.
            let _ = handle.join();
        }
        thread::park_timeout(MONITOR_POLL);
    }
}

fn spawn_worker(worker_idx: usize, shared: &Arc<WorkerShared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("moped-worker-{worker_idx}"))
        .spawn(move || worker_loop(worker_idx, &shared))
        // moped-lint: allow(panic-path) OS thread-spawn failure is resource exhaustion; returning an error here would leave the slot silently empty, which is worse than failing loudly
        .expect("spawning a worker thread")
}

/// Fires any configured fault at a site that lies *outside* the per-job
/// panic guard: an injected panic here unwinds the worker thread itself
/// (quietly — the death is the point, not the backtrace).
fn apply_worker_fault(shared: &WorkerShared, site: FaultSite) {
    let Some(plan) = shared.faults.as_deref() else {
        return;
    };
    match plan.fire(site) {
        None | Some(FaultKind::QueueFull) => {}
        Some(FaultKind::Delay(d)) => {
            shared.metrics.inc_faults_injected();
            thread::sleep(d);
        }
        Some(FaultKind::Panic) => {
            shared.metrics.inc_faults_injected();
            QUIET_PANICS.with(|q| q.set(true));
            // moped-lint: allow(panic-path) chaos injection: the panic IS the configured fault; inert unless a FaultPlan is installed
            panic!("{}", FaultPlan::panic_message(site));
        }
    }
}

/// A worker: pull a job off its own shard (or steal one), serve it
/// (panic-isolated, with retries), repeat until the queue closes.
fn worker_loop(worker_idx: usize, shared: &Arc<WorkerShared>) {
    // Per-worker cache of two-stage checkers: the R-tree inside is a
    // structural clone of the snapshot's shared build (no re-sort), and
    // the scratch buffers stay thread-local, keeping the checker hot
    // across requests to the same environment.
    let mut checkers: HashMap<EnvId, TwoStageChecker> = HashMap::new();
    let mut since_flush = 0usize;
    loop {
        let popped = match shared.queue.try_pop(worker_idx) {
            Some(popped) => popped,
            None => {
                // About to go idle: publish this worker's span data to
                // the global registry while nobody is waiting on it, so
                // profile snapshots taken from the API thread see
                // completed jobs without joining the pool.
                moped_obs::flush();
                since_flush = 0;
                match shared.queue.pop_blocking(worker_idx) {
                    Some(popped) => popped,
                    None => break, // queue closed and drained: graceful exit
                }
            }
        };
        // The job left the queue the moment it was popped: settle the
        // gauge before any kill site can take this worker down, so a
        // death between pop and serve cannot leak queue depth.
        shared.metrics.queue_left();
        if popped.stolen {
            // The steal-specific kill site: outside the per-job guard,
            // so an injected panic here takes the thief down with the
            // stolen job's response unsent (the dropped responder then
            // resolves the ticket as WorkerDied).
            apply_worker_fault(shared, FaultSite::Steal);
        }
        serve_job(worker_idx, popped.job, shared, &mut checkers);
        // Amortized flush: the global registry lock is off the per-job
        // path, but long busy stretches still publish periodically.
        since_flush += 1;
        if since_flush >= FLUSH_EVERY {
            moped_obs::flush();
            since_flush = 0;
        }
    }
    moped_obs::flush();
}

/// Serves one job: planning attempts under `catch_unwind`, bounded
/// retries per policy, and exactly one resolution on the ticket's slot —
/// unless a worker-kill fault fires, in which case the dropped responder
/// itself resolves the ticket as `WorkerDied`.
fn serve_job(
    worker_idx: usize,
    job: Job,
    shared: &WorkerShared,
    checkers: &mut HashMap<EnvId, TwoStageChecker>,
) {
    // Hot per-request counters go to this worker's private shard; the
    // caller already settled the shared queue-depth gauge at pop time.
    let shard = shared.metrics.worker(worker_idx);
    let started = Instant::now();
    // Queue wait is admission → dequeue, sampled before any attempt
    // runs, so planning time can never leak into it.
    let queue_wait = started.duration_since(job.enqueued);
    shard.record_queue_wait(queue_wait);
    // Queue wait spans two threads, so it is recorded as a synthesized
    // duration rather than an enter/exit pair on either thread.
    moped_obs::record_duration(
        moped_obs::Stage::QueueWait,
        moped_obs::duration_ticks(queue_wait),
    );

    apply_worker_fault(shared, FaultSite::Dequeue);

    let mut attempt: u32 = 0;
    let mut last_panic: Option<String> = None;
    let result = loop {
        attempt += 1;
        let attempt_span = moped_obs::span(moped_obs::Stage::Attempt);
        let attempt_result = catch_quietly(|| {
            if let Some(plan) = shared.faults.as_deref() {
                match plan.fire(FaultSite::Planning) {
                    None | Some(FaultKind::QueueFull) => {}
                    Some(FaultKind::Delay(d)) => {
                        shared.metrics.inc_faults_injected();
                        thread::sleep(d);
                    }
                    Some(FaultKind::Panic) => {
                        shared.metrics.inc_faults_injected();
                        // moped-lint: allow(panic-path) chaos injection: this panic exercises the per-attempt catch_unwind guard
                        panic!("{}", FaultPlan::panic_message(FaultSite::Planning));
                    }
                }
            }
            execute(&job, checkers, shared.poll_every, started)
        });
        drop(attempt_span);
        match attempt_result {
            Ok(result) => break result,
            Err(payload) => {
                let message = panic_message(payload);
                shard.inc_panics_caught();
                // The cached checker may have been mid-use when the
                // attempt unwound; rebuild it from the immutable
                // snapshot rather than trust its scratch state.
                checkers.remove(&job.env_id);

                // Planning is deterministic in (env, variant, params),
                // so a repeat of the *same* panic will not heal on its
                // own: retry once to rule out a transient cause, then
                // give up as soon as the failure proves itself stable.
                let identical = last_panic.as_deref() == Some(message.as_str());
                let deadline_blown = job.deadline_at.is_some_and(|d| Instant::now() >= d);
                if attempt < shared.retry.max_attempts && !identical && !deadline_blown {
                    shard.inc_retries();
                    last_panic = Some(message);
                    let pause = retry_pause(&shared.retry, job.id, attempt);
                    if !pause.is_zero() {
                        let _retry = moped_obs::span(moped_obs::Stage::Retry);
                        thread::sleep(pause);
                    }
                    continue;
                }

                shard.inc_failed();
                shard.record_service_latency(started.elapsed());
                apply_worker_fault(shared, FaultSite::Respond);
                // A dropped ticket just discards the resolution.
                let failure = PlanFailure {
                    id: job.id,
                    env: job.env_id,
                    reason: FailureReason::Panic { message },
                    attempts: attempt,
                };
                job.respond.send(PlanOutcome::Failed(failure));
                return;
            }
        }
    };

    let outcome = if result.stats.stopped_early {
        if job.cancel.load(Ordering::Relaxed) {
            shard.inc_cancelled();
            Outcome::Cancelled
        } else {
            shard.inc_deadline_expired();
            Outcome::DeadlineExpired
        }
    } else {
        shard.inc_completed();
        Outcome::Completed
    };
    shard.record_stats(&result.stats, result.solved());
    // Spans every attempt, including retry backoff.
    let service_time = started.elapsed();
    shard.record_service_latency(service_time);

    apply_worker_fault(shared, FaultSite::Respond);
    let response = PlanResponse {
        id: job.id,
        env: job.env_id,
        epoch: job.env.epoch,
        outcome,
        result,
        queue_wait,
        service_time,
        worker: worker_idx,
        attempts: attempt,
        profile: job.profile.clone(),
    };
    job.respond.send(PlanOutcome::Served(response));
}

/// Backoff before retry `attempt` of job `id`: the fixed base plus a
/// deterministic per-(job, attempt) fraction of the jitter bound.
fn retry_pause(policy: &RetryPolicy, id: u64, attempt: u32) -> Duration {
    let mut pause = policy.backoff;
    if !policy.jitter.is_zero() {
        let mut state = id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt));
        pause += policy.jitter.mul_f64(splitmix64(&mut state));
    }
    pause
}

/// One step of splitmix64, folded to a float in `[0, 1)`.
fn splitmix64(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs one request's plan, wiring the variant's kernel stack exactly
/// like `moped_core::plan_variant` (so results are byte-identical to a
/// serial run) but reusing the shared R-tree snapshot for the two-stage
/// checker.
fn execute(
    job: &Job,
    checkers: &mut HashMap<EnvId, TwoStageChecker>,
    poll_every: usize,
    started: Instant,
) -> PlanResult {
    // Deadline already blown while queued: answer immediately with an
    // empty best-so-far result instead of burning worker time.
    if job.deadline_at.is_some_and(|d| started >= d) {
        return PlanResult {
            path: None,
            path_cost: f64::INFINITY,
            stats: PlanStats {
                stopped_early: true,
                ..PlanStats::default()
            },
        };
    }

    let scenario = &job.env.scenario;
    let dim = scenario.robot.dof();
    let (two_stage, simbr, sias, lci) = variant_components(job.variant);
    // A resolved profile overrides the variant's stack and always runs
    // the full two-stage collision path (profiles only vary the engine
    // and neighbor index — the tuner's levers).
    let two_stage = two_stage || job.profile.is_some();
    let cancel = Arc::clone(&job.cancel);
    let deadline_at = job.deadline_at;
    let stop =
        move || cancel.load(Ordering::Relaxed) || deadline_at.is_some_and(|d| Instant::now() >= d);

    // The naive checker only exists for baseline-variant comparisons; the
    // serving path proper is the cached two-stage checker.
    let naive;
    let checker: &dyn moped_collision::CollisionChecker = if two_stage {
        checkers.entry(job.env_id).or_insert_with(|| {
            TwoStageChecker::with_prebuilt_soa(
                job.env.rtree.clone(),
                job.env.soa.clone(),
                SecondStage::ObbExact,
            )
        })
    } else {
        naive = NaiveChecker::new(scenario.obstacles.clone());
        &naive
    };

    if let Some(resolution) = &job.profile {
        // The tuned path: the admission-time resolution picks the
        // engine, neighbor backend, and parameter policies. Identical to
        // a serial `moped_tune::plan_with_profile` run modulo the shared
        // checker snapshot.
        let profile = &resolution.profile;
        RrtStar::new(
            scenario,
            checker,
            profile.build_index(dim),
            profile.apply(&job.params),
        )
        .with_engine(profile.engine)
        .with_stop_hook(poll_every, stop)
        .plan()
    } else if simbr {
        let index = SimbrIndex::new(dim, 6, sias, lci);
        RrtStar::new(scenario, checker, index, job.params.clone())
            .with_stop_hook(poll_every, stop)
            .plan()
    } else {
        RrtStar::new(scenario, checker, LinearIndex::new(), job.params.clone())
            .with_stop_hook(poll_every, stop)
            .plan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_unit_range() {
        let mut a = 42u64;
        let mut b = 42u64;
        let (x, y) = (splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(x, y);
        assert!((0.0..1.0).contains(&x));
        // Streams advance.
        assert_ne!(splitmix64(&mut a), x);
    }

    #[test]
    fn retry_pause_is_bounded_by_backoff_plus_jitter() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(4),
            jitter: Duration::from_millis(2),
        };
        for id in 0..64u64 {
            let p = retry_pause(&policy, id, 1);
            assert!(p >= Duration::from_millis(4));
            assert!(p < Duration::from_millis(6));
        }
        // Deterministic per (id, attempt).
        assert_eq!(retry_pause(&policy, 7, 2), retry_pause(&policy, 7, 2));
    }

    #[test]
    fn panic_messages_downcast() {
        install_quiet_panic_hook();
        let p = catch_quietly(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p), "boom");
        let p = catch_quietly(|| panic!("{}", String::from("owned"))).unwrap_err();
        assert_eq!(panic_message(p), "owned");
    }
}
