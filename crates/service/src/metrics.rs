//! Lock-free service observability: atomic counters, gauges, and
//! fixed-bucket latency histograms with text/JSON dumps.
//!
//! Every instrument is a plain `AtomicU64`, so workers record without
//! locks and readers see monotonically consistent (if racy by a few
//! events) values — the usual contract of a scrape-style registry.
//!
//! # Sharding
//!
//! Counters that workers bump on every request (completions, latency
//! samples, op ledgers) are *sharded per worker*: each worker owns a
//! cache-line-aligned [`WorkerMetrics`] block and records into it with
//! zero cross-worker traffic; readers aggregate across shards on demand.
//! Before sharding, every worker's `fetch_add`s landed on the same
//! cache lines, so the metrics registry itself was a serialization
//! point on the per-request path — measurable once the admission queue
//! stopped being the bottleneck. Counters bumped on the *admission*
//! path (accepted/rejected, the queue-depth gauge) or rarely
//! (respawns, injected faults) stay global: they are touched by the
//! client thread or the supervisor, not the hot worker loop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use moped_core::PlanStats;

/// Upper bucket bounds in microseconds; one overflow bucket follows.
/// Spans 50µs .. 13s on a ~×1.6 geometric grid (a 1-2-3-5-8-13 ladder
/// per decade). The previous grid stepped ×3 per bucket, which collapsed
/// p50 and p99 onto the same bound for any unimodal latency
/// distribution narrower than one bucket — exactly what service plans
/// in the low tens of milliseconds produced.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 28] = [
    50, 80, 130, 200, 320, 500, 800, 1_300, 2_000, 3_200, 5_000, 8_000, 13_000, 20_000, 32_000,
    50_000, 80_000, 130_000, 200_000, 320_000, 500_000, 800_000, 1_300_000, 2_000_000, 3_200_000,
    5_000_000, 8_000_000, 13_000_000,
];

const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket histogram of durations (microsecond resolution).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKETS - 1);
        if let Some(slot) = self.counts.get(bucket) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram, for quantile math and
    /// cross-shard merging.
    pub fn snapshot(&self) -> LatencyStats {
        LatencyStats {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The largest recorded observation.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us.load(Ordering::Relaxed))
    }

    /// Mean of all observations (zero when empty).
    pub fn mean(&self) -> Duration {
        self.snapshot().mean()
    }

    /// Within-bucket interpolated estimate of the `q`-quantile; see
    /// [`LatencyStats::quantile`].
    pub fn quantile(&self, q: f64) -> Duration {
        self.snapshot().quantile(q)
    }
}

/// An owned, mergeable snapshot of a [`LatencyHistogram`] (or of several
/// shards' histograms summed together).
#[derive(Clone, Copy, Debug)]
pub struct LatencyStats {
    counts: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            counts: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyStats {
    /// Folds another snapshot into this one (bucket-wise sum).
    fn merge(&mut self, other: &LatencyStats) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded observation.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Mean of all observations (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us / self.count)
    }

    /// Estimate of the `q`-quantile (`0.0 ..= 1.0`) with *linear
    /// interpolation inside the bucket* holding the target rank: the
    /// rank's position within the bucket's count places it between the
    /// bucket's lower and upper bounds (the upper bound clamped to the
    /// observed max, which also gives the unbounded overflow bucket a
    /// finite ceiling). Interpolation is what keeps p50 and p99
    /// distinguishable when most observations share one bucket.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= rank && c > 0 {
                let lower = if i == 0 {
                    0
                } else {
                    LATENCY_BUCKET_BOUNDS_US[i - 1]
                };
                let upper = if i < LATENCY_BUCKET_BOUNDS_US.len() {
                    LATENCY_BUCKET_BOUNDS_US[i].min(self.max_us)
                } else {
                    self.max_us
                };
                let upper = upper.max(lower);
                let frac = (rank - seen) as f64 / c as f64;
                let us = lower as f64 + (upper - lower) as f64 * frac;
                return Duration::from_micros(us.round() as u64);
            }
            seen += c;
        }
        Duration::from_micros(self.max_us)
    }

    /// Per-bucket counts (the overflow bucket last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.to_vec()
    }
}

/// One worker's private metrics shard. Padded to two cache lines so
/// adjacent shards never share a line — the whole point of sharding is
/// that worker A's `fetch_add` does not bounce worker B's line.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct WorkerMetrics {
    completed: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    panics_caught: AtomicU64,
    retries: AtomicU64,
    samples: AtomicU64,
    nodes: AtomicU64,
    rewires: AtomicU64,
    solved: AtomicU64,
    ns_macs: AtomicU64,
    cc_macs: AtomicU64,
    insert_macs: AtomicU64,
    other_macs: AtomicU64,
    /// Wall time from dequeue to response.
    pub(crate) service_latency: LatencyHistogram,
    /// Wall time from admission to dequeue (planning time excluded by
    /// construction: the sample is taken the moment the job leaves the
    /// queue, before any attempt runs).
    pub(crate) queue_wait: LatencyHistogram,
}

macro_rules! shard_counter_api {
    ($($(#[$doc:meta])* $name:ident / $inc:ident),* $(,)?) => {
        impl WorkerMetrics {
            $(pub(crate) fn $inc(&self) {
                self.$name.fetch_add(1, Ordering::Relaxed);
            })*
        }

        impl Metrics {
            $(
                $(#[$doc])*
                pub fn $name(&self) -> u64 {
                    self.shards.iter().map(|s| s.$name.load(Ordering::Relaxed)).sum()
                }
            )*
        }
    };
}

shard_counter_api! {
    /// Requests that ran to their full sampling budget.
    completed / inc_completed,
    /// Requests cut short by their deadline (best-so-far returned).
    deadline_expired / inc_deadline_expired,
    /// Requests cut short by explicit cancellation.
    cancelled / inc_cancelled,
    /// Requests resolved as typed failures (exhausted panicking
    /// attempts, or a shutdown drain with the pool dead).
    failed / inc_failed,
    /// Planning attempts that panicked and were caught by the
    /// worker's per-job guard.
    panics_caught / inc_panics_caught,
    /// Retry attempts scheduled after a caught panic.
    retries / inc_retries,
}

impl WorkerMetrics {
    /// Folds one plan's statistics into this shard's op ledgers.
    pub(crate) fn record_stats(&self, stats: &PlanStats, solved: bool) {
        self.samples
            .fetch_add(stats.samples as u64, Ordering::Relaxed);
        self.nodes.fetch_add(stats.nodes as u64, Ordering::Relaxed);
        self.rewires.fetch_add(stats.rewires, Ordering::Relaxed);
        if solved {
            self.solved.fetch_add(1, Ordering::Relaxed);
        }
        self.ns_macs
            .fetch_add(stats.ns_ops.mac_equiv(), Ordering::Relaxed);
        self.cc_macs
            .fetch_add(stats.collision.total_ops().mac_equiv(), Ordering::Relaxed);
        self.insert_macs
            .fetch_add(stats.insert_ops.mac_equiv(), Ordering::Relaxed);
        self.other_macs
            .fetch_add(stats.other_ops.mac_equiv(), Ordering::Relaxed);
    }

    /// Records a dequeue-to-response service time.
    pub(crate) fn record_service_latency(&self, d: Duration) {
        self.service_latency.record(d);
    }

    /// Records an admission-to-dequeue queue wait.
    pub(crate) fn record_queue_wait(&self, d: Duration) {
        self.queue_wait.record(d);
    }
}

/// The service-wide metrics registry.
///
/// Request accounting obeys `accepted = completed + deadline_expired +
/// cancelled + failed + in_flight_or_queued`; `rejected` counts
/// admissions that never entered the queue. After a drain
/// (`PlanService::shutdown`) the in-flight term is zero, which the
/// integration tests assert. The one exception: a request whose worker
/// died before responding resolves *client-side* (as a `WorkerDied`
/// failure on the ticket) and is counted by no terminal counter here —
/// `worker_respawns` is the server-side trace of those events.
///
/// Hot per-request counters live in per-worker [`WorkerMetrics`] shards
/// (plus one extra *service shard* for the admission thread and the
/// shutdown drain); readers aggregate across shards. See the module
/// docs.
#[derive(Debug)]
pub struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    worker_respawns: AtomicU64,
    faults_injected: AtomicU64,
    queue_depth: AtomicU64,
    profile_switches: AtomicU64,
    probe_time_us: AtomicU64,
    /// Profile decisions by request class (admission path only — the
    /// client thread takes this lock, never a worker; the map is the one
    /// string-keyed instrument in the registry, so it lives behind a
    /// mutex instead of forcing classes into a fixed table). BTreeMap
    /// keeps dumps in stable class order.
    profile_decisions: Mutex<BTreeMap<String, (u64, u64)>>,
    shards: Box<[WorkerMetrics]>,
}

impl Default for Metrics {
    /// A registry for a single-worker pool.
    fn default() -> Self {
        Metrics::with_workers(1)
    }
}

macro_rules! global_counter_api {
    ($($(#[$doc:meta])* $name:ident / $inc:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Relaxed)
        }

        pub(crate) fn $inc(&self) {
            self.$name.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl Metrics {
    /// A registry with one metrics shard per worker, plus the service
    /// shard.
    pub fn with_workers(workers: usize) -> Self {
        let shards: Box<[WorkerMetrics]> = (0..workers.max(1) + 1)
            .map(|_| WorkerMetrics::default())
            .collect();
        Metrics {
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            profile_switches: AtomicU64::new(0),
            probe_time_us: AtomicU64::new(0),
            profile_decisions: Mutex::new(BTreeMap::new()),
            shards,
        }
    }

    global_counter_api! {
        /// Requests admitted into the queue.
        accepted / inc_accepted,
        /// Requests refused at admission (full queue, unknown env, shutdown).
        rejected / inc_rejected,
        /// Worker threads respawned by the supervisor after an
        /// unexpected death.
        worker_respawns / inc_worker_respawns,
        /// Faults fired by the configured `FaultPlan` (always zero when
        /// the harness is unconfigured).
        faults_injected / inc_faults_injected,
        /// Profile switches committed by the autotuner's epoch-boundary
        /// adapter (always zero on untuned services).
        profile_switches / inc_profile_switches,
    }

    /// Records one admission-time profile decision for `class_id`
    /// (`from_table` marks calibrated hits vs. default fallbacks).
    /// Admission path only: workers never touch the decision map.
    pub(crate) fn record_profile_decision(&self, class_id: &str, from_table: bool) {
        let mut map = match self.profile_decisions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let entry = map.entry(class_id.to_string()).or_insert((0, 0));
        entry.0 += 1;
        if from_table {
            entry.1 += 1;
        }
    }

    /// Profile decisions by request class, in class order:
    /// `(class, decisions, table_hits)`. Empty on untuned services.
    pub fn profile_decisions(&self) -> Vec<(String, u64, u64)> {
        let map = match self.profile_decisions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.iter().map(|(k, &(n, h))| (k.clone(), n, h)).collect()
    }

    /// Adds calibration-probe wall time (callers time their
    /// `Calibrator::calibrate` run and deposit it here — probe latency
    /// is an observation about calibration, never an input to it).
    pub fn record_probe_time(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.probe_time_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total calibration-probe wall time recorded.
    pub fn probe_time(&self) -> Duration {
        Duration::from_micros(self.probe_time_us.load(Ordering::Relaxed))
    }

    /// Worker `idx`'s private shard (clamped, so a respawned worker with
    /// a stale index can never reach past the shard table; the service
    /// shard is the fallback, unreachable after the clamp).
    pub(crate) fn worker(&self, idx: usize) -> &WorkerMetrics {
        let workers = self.shards.len().saturating_sub(1);
        self.shards
            .get(idx.min(workers.saturating_sub(1)))
            .unwrap_or_else(|| self.service_shard())
    }

    /// The extra shard used by non-worker threads (admission faults,
    /// shutdown drains, tests).
    pub(crate) fn service_shard(&self) -> &WorkerMetrics {
        // moped-lint: allow(panic-path) the shard table always holds >= 2 entries (`with_workers` allocates workers.max(1) + 1)
        &self.shards[self.shards.len() - 1]
    }

    /// Requests currently queued (admitted, not yet dequeued).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn queue_entered(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn queue_left(&self) {
        // Guarded decrement: a crash-recovery path (worker death,
        // shutdown drain) may try to balance an increment that never
        // happened; clamping at zero beats wrapping to u64::MAX.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Requests whose response carried a start-to-goal path.
    pub fn solved(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.solved.load(Ordering::Relaxed))
            .sum()
    }

    /// Total sampling rounds executed across all responses.
    pub fn samples(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.samples.load(Ordering::Relaxed))
            .sum()
    }

    /// MAC-equivalent work split `(collision, neighbor-search, insert,
    /// other)` aggregated across all responses.
    pub fn mac_breakdown(&self) -> (u64, u64, u64, u64) {
        let mut out = (0, 0, 0, 0);
        for s in self.shards.iter() {
            out.0 += s.cc_macs.load(Ordering::Relaxed);
            out.1 += s.ns_macs.load(Ordering::Relaxed);
            out.2 += s.insert_macs.load(Ordering::Relaxed);
            out.3 += s.other_macs.load(Ordering::Relaxed);
        }
        out
    }

    fn nodes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.nodes.load(Ordering::Relaxed))
            .sum()
    }

    fn rewires(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.rewires.load(Ordering::Relaxed))
            .sum()
    }

    /// Dequeue-to-response latency, aggregated across every worker
    /// shard.
    pub fn service_latency(&self) -> LatencyStats {
        let mut merged = LatencyStats::default();
        for s in self.shards.iter() {
            merged.merge(&s.service_latency.snapshot());
        }
        merged
    }

    /// Admission-to-dequeue queue wait, aggregated across every worker
    /// shard.
    pub fn queue_wait(&self) -> LatencyStats {
        let mut merged = LatencyStats::default();
        for s in self.shards.iter() {
            merged.merge(&s.queue_wait.snapshot());
        }
        merged
    }

    /// Human-readable dump (one `key value` pair per line).
    pub fn dump_text(&self) -> String {
        let (cc, ns, ins, other) = self.mac_breakdown();
        let latency = self.service_latency();
        let queue_wait = self.queue_wait();
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v);
            out.push('\n');
        };
        kv("requests_accepted", self.accepted().to_string());
        kv("requests_rejected", self.rejected().to_string());
        kv("requests_completed", self.completed().to_string());
        kv(
            "requests_deadline_expired",
            self.deadline_expired().to_string(),
        );
        kv("requests_cancelled", self.cancelled().to_string());
        kv("requests_failed", self.failed().to_string());
        kv("requests_solved", self.solved().to_string());
        kv("panics_caught", self.panics_caught().to_string());
        kv("retries", self.retries().to_string());
        kv("worker_respawns", self.worker_respawns().to_string());
        kv("faults_injected", self.faults_injected().to_string());
        kv("queue_depth", self.queue_depth().to_string());
        kv("samples_total", self.samples().to_string());
        kv("nodes_total", self.nodes().to_string());
        kv("rewires_total", self.rewires().to_string());
        kv("macs_collision", cc.to_string());
        kv("macs_neighbor_search", ns.to_string());
        kv("macs_insert", ins.to_string());
        kv("macs_other", other.to_string());
        kv(
            "latency_p50_us",
            latency.quantile(0.50).as_micros().to_string(),
        );
        kv(
            "latency_p95_us",
            latency.quantile(0.95).as_micros().to_string(),
        );
        kv(
            "latency_p99_us",
            latency.quantile(0.99).as_micros().to_string(),
        );
        kv("latency_max_us", latency.max().as_micros().to_string());
        kv("latency_mean_us", latency.mean().as_micros().to_string());
        kv(
            "queue_wait_p95_us",
            queue_wait.quantile(0.95).as_micros().to_string(),
        );
        kv(
            "queue_wait_p99_us",
            queue_wait.quantile(0.99).as_micros().to_string(),
        );
        // Autotuner decisions (aggregate-on-read: the per-class map is
        // folded here, never on the per-request path).
        kv("profile_switches", self.profile_switches().to_string());
        kv("probe_time_us", self.probe_time().as_micros().to_string());
        for (class, decisions, hits) in self.profile_decisions() {
            kv(
                &format!("profile_decisions{{class=\"{class}\"}}"),
                format!("{decisions} ({hits} from table)"),
            );
        }
        // When stage tracing is on, the dump carries the merged per-stage
        // profile (admission, queue wait, attempts, and every planner
        // stage the workers recorded).
        if moped_obs::enabled() {
            out.push_str("\n# stage profile (moped-obs)\n");
            out.push_str(&moped_obs::snapshot().render_text());
        }
        out
    }

    /// Machine-readable dump (a flat JSON object; hand-rolled because the
    /// workspace deliberately has no serialization dependency).
    pub fn dump_json(&self) -> String {
        let (cc, ns, ins, other) = self.mac_breakdown();
        let latency = self.service_latency();
        let queue_wait = self.queue_wait();
        let mut fields: Vec<(String, String)> = vec![
            ("requests_accepted".into(), self.accepted().to_string()),
            ("requests_rejected".into(), self.rejected().to_string()),
            ("requests_completed".into(), self.completed().to_string()),
            (
                "requests_deadline_expired".into(),
                self.deadline_expired().to_string(),
            ),
            ("requests_cancelled".into(), self.cancelled().to_string()),
            ("requests_failed".into(), self.failed().to_string()),
            ("requests_solved".into(), self.solved().to_string()),
            ("panics_caught".into(), self.panics_caught().to_string()),
            ("retries".into(), self.retries().to_string()),
            ("worker_respawns".into(), self.worker_respawns().to_string()),
            ("faults_injected".into(), self.faults_injected().to_string()),
            ("queue_depth".into(), self.queue_depth().to_string()),
            ("samples_total".into(), self.samples().to_string()),
            ("macs_collision".into(), cc.to_string()),
            ("macs_neighbor_search".into(), ns.to_string()),
            ("macs_insert".into(), ins.to_string()),
            ("macs_other".into(), other.to_string()),
            (
                "latency_p50_us".into(),
                latency.quantile(0.50).as_micros().to_string(),
            ),
            (
                "latency_p95_us".into(),
                latency.quantile(0.95).as_micros().to_string(),
            ),
            (
                "latency_p99_us".into(),
                latency.quantile(0.99).as_micros().to_string(),
            ),
            (
                "latency_max_us".into(),
                latency.max().as_micros().to_string(),
            ),
            (
                "queue_wait_p99_us".into(),
                queue_wait.quantile(0.99).as_micros().to_string(),
            ),
        ];
        fields.push((
            "profile_switches".into(),
            self.profile_switches().to_string(),
        ));
        fields.push((
            "probe_time_us".into(),
            self.probe_time().as_micros().to_string(),
        ));
        let decisions = self
            .profile_decisions()
            .iter()
            .map(|(class, n, hits)| {
                format!("{{\"class\":\"{class}\",\"decisions\":{n},\"table_hits\":{hits}}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        fields.push(("profile_decisions".into(), format!("[{decisions}]")));
        let buckets = latency
            .bucket_counts()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        fields.push(("latency_buckets".into(), format!("[{buckets}]")));
        if moped_obs::enabled() {
            fields.push(("stage_profile".into(), moped_obs::snapshot().to_json()));
        }
        let body = fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered() {
        let h = LatencyHistogram::default();
        for ms in [1u64, 2, 3, 10, 20, 40, 80, 200, 500, 900] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.max());
        assert_eq!(h.max(), Duration::from_millis(900));
        assert!(h.mean() >= Duration::from_millis(100));
    }

    /// Interpolation sanity on a known distribution: 10,000 evenly
    /// spaced observations over 0..100ms must put p50 near 50ms and p99
    /// near 99ms — and, critically, *apart* from each other. (The old
    /// ×3-step grid put both on the same bucket bound.)
    #[test]
    fn interpolated_quantiles_track_a_uniform_distribution() {
        let h = LatencyHistogram::default();
        for i in 0..10_000u64 {
            h.record(Duration::from_micros(i * 10));
        }
        let p50 = h.quantile(0.50).as_micros() as u64;
        let p99 = h.quantile(0.99).as_micros() as u64;
        assert!((45_000..=55_000).contains(&p50), "p50 = {p50}us");
        assert!((94_000..=100_000).contains(&p99), "p99 = {p99}us");
        assert!(p50 < p99, "interpolation must separate p50 from p99");
        // Monotone across the whole quantile range.
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q).as_micros() as u64)
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    /// p50 and p99 must stay distinguishable even when every
    /// observation lands in one bucket — the exact symptom the
    /// BENCH_service.json artifact showed (p50 == p99 == 13350).
    #[test]
    fn quantiles_separate_within_a_single_bucket() {
        let h = LatencyHistogram::default();
        // 13350us sat in the old (5ms, 15ms] bucket; the new grid puts
        // it in (13ms, 20ms]. Spread observations inside one bucket.
        for i in 0..1000u64 {
            h.record(Duration::from_micros(13_100 + i * 6)); // 13.1ms..19.1ms
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99, "p50 {p50:?} must be below p99 {p99:?}");
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(30)); // beyond the last bound
        assert_eq!(h.quantile(0.99), Duration::from_secs(30));
    }

    /// Percentile estimation on an *empty* histogram is fully defined:
    /// every quantile (including the extremes), the mean, and the max
    /// are exactly zero — no division by the zero count, no garbage
    /// bucket bound.
    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
        }
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn queue_depth_gauge_never_underflows() {
        let m = Metrics::default();
        // An unmatched decrement (panic/early-reject recovery path)
        // must clamp at zero, not wrap to u64::MAX.
        m.queue_left();
        assert_eq!(m.queue_depth(), 0);
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        m.queue_left();
        m.queue_left();
        assert_eq!(m.queue_depth(), 0);
        m.queue_entered();
        assert_eq!(m.queue_depth(), 1);
    }

    /// Shards aggregate: counters bumped on different worker shards (and
    /// the service shard) all surface through the same readers.
    #[test]
    fn sharded_counters_aggregate_on_read() {
        let m = Metrics::with_workers(4);
        m.worker(0).inc_completed();
        m.worker(3).inc_completed();
        m.service_shard().inc_completed();
        assert_eq!(m.completed(), 3);

        m.worker(1).record_service_latency(Duration::from_millis(5));
        m.worker(2)
            .record_service_latency(Duration::from_millis(50));
        assert_eq!(m.service_latency().count(), 2);
        assert_eq!(m.service_latency().max(), Duration::from_millis(50));

        m.worker(0).record_queue_wait(Duration::from_micros(300));
        assert_eq!(m.queue_wait().count(), 1);

        // Out-of-range worker indices clamp onto the last worker shard
        // rather than reaching the service shard or panicking.
        m.worker(99).inc_failed();
        assert_eq!(m.failed(), 1);
    }

    #[test]
    fn dumps_contain_counters() {
        let m = Metrics::default();
        m.inc_accepted();
        m.worker(0).inc_completed();
        m.worker(0).inc_failed();
        m.worker(0).inc_panics_caught();
        m.worker(0).inc_retries();
        m.inc_worker_respawns();
        m.worker(0).record_service_latency(Duration::from_millis(3));
        let text = m.dump_text();
        assert!(text.contains("requests_accepted 1"));
        assert!(text.contains("requests_completed 1"));
        assert!(text.contains("requests_failed 1"));
        assert!(text.contains("panics_caught 1"));
        assert!(text.contains("retries 1"));
        assert!(text.contains("worker_respawns 1"));
        assert!(text.contains("faults_injected 0"));
        assert!(text.contains("latency_p99_us"));
        assert!(text.contains("queue_wait_p99_us"));
        let json = m.dump_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_accepted\":1"));
        assert!(json.contains("\"requests_failed\":1"));
        assert!(json.contains("\"worker_respawns\":1"));
        assert!(json.contains("\"latency_buckets\":["));
        assert!(json.contains("\"queue_wait_p99_us\":"));
    }
}
