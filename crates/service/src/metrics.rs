//! Lock-free service observability: atomic counters, gauges, and
//! fixed-bucket latency histograms with text/JSON dumps.
//!
//! Every instrument is a plain `AtomicU64`, so workers record without
//! locks and readers see monotonically consistent (if racy by a few
//! events) values — the usual contract of a scrape-style registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use moped_core::PlanStats;

/// Upper bucket bounds in microseconds; one overflow bucket follows.
/// Spans 50µs .. 10s, roughly ×3 per step — enough resolution for p50/p95
/// on plans that take anywhere from a fraction of a millisecond to
/// seconds.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 12] = [
    50, 150, 500, 1_500, 5_000, 15_000, 50_000, 150_000, 500_000, 1_500_000, 5_000_000, 10_000_000,
];

const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket histogram of durations (microsecond resolution).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The largest recorded observation.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us.load(Ordering::Relaxed))
    }

    /// Mean of all observations (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us.load(Ordering::Relaxed) / n)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// bound of the first bucket whose cumulative count reaches
    /// `q * total`, clamped to the observed max (the overflow bucket has
    /// no upper bound, and the top occupied bucket's bound may exceed
    /// every real observation).
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let max_us = self.max_us.load(Ordering::Relaxed);
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < LATENCY_BUCKET_BOUNDS_US.len() {
                    Duration::from_micros(LATENCY_BUCKET_BOUNDS_US[i].min(max_us))
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// The service-wide metrics registry.
///
/// Request accounting obeys `accepted = completed + deadline_expired +
/// cancelled + failed + in_flight_or_queued`; `rejected` counts
/// admissions that never entered the queue. After a drain
/// (`PlanService::shutdown`) the in-flight term is zero, which the
/// integration tests assert. The one exception: a request whose worker
/// died before responding resolves *client-side* (as a `WorkerDied`
/// failure on the ticket) and is counted by no terminal counter here —
/// `worker_respawns` is the server-side trace of those events.
#[derive(Debug, Default)]
pub struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    panics_caught: AtomicU64,
    retries: AtomicU64,
    worker_respawns: AtomicU64,
    faults_injected: AtomicU64,
    queue_depth: AtomicU64,
    samples: AtomicU64,
    nodes: AtomicU64,
    rewires: AtomicU64,
    solved: AtomicU64,
    ns_macs: AtomicU64,
    cc_macs: AtomicU64,
    insert_macs: AtomicU64,
    other_macs: AtomicU64,
    /// Wall time from dequeue to response.
    pub service_latency: LatencyHistogram,
    /// Wall time from admission to dequeue.
    pub queue_wait: LatencyHistogram,
}

macro_rules! counter_api {
    ($($(#[$doc:meta])* $name:ident / $inc:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Relaxed)
        }

        pub(crate) fn $inc(&self) {
            self.$name.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl Metrics {
    counter_api! {
        /// Requests admitted into the queue.
        accepted / inc_accepted,
        /// Requests refused at admission (full queue, unknown env, shutdown).
        rejected / inc_rejected,
        /// Requests that ran to their full sampling budget.
        completed / inc_completed,
        /// Requests cut short by their deadline (best-so-far returned).
        deadline_expired / inc_deadline_expired,
        /// Requests cut short by explicit cancellation.
        cancelled / inc_cancelled,
        /// Requests resolved as typed failures (exhausted panicking
        /// attempts, or a shutdown drain with the pool dead).
        failed / inc_failed,
        /// Planning attempts that panicked and were caught by the
        /// worker's per-job guard.
        panics_caught / inc_panics_caught,
        /// Retry attempts scheduled after a caught panic.
        retries / inc_retries,
        /// Worker threads respawned by the supervisor after an
        /// unexpected death.
        worker_respawns / inc_worker_respawns,
        /// Faults fired by the configured `FaultPlan` (always zero when
        /// the harness is unconfigured).
        faults_injected / inc_faults_injected,
    }

    /// Requests currently queued (admitted, not yet dequeued).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn queue_entered(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn queue_left(&self) {
        // Guarded decrement: a crash-recovery path (worker death,
        // shutdown drain) may try to balance an increment that never
        // happened; clamping at zero beats wrapping to u64::MAX.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Requests whose response carried a start-to-goal path.
    pub fn solved(&self) -> u64 {
        self.solved.load(Ordering::Relaxed)
    }

    /// Folds one plan's statistics into the aggregate op ledgers.
    pub(crate) fn record_stats(&self, stats: &PlanStats, solved: bool) {
        self.samples
            .fetch_add(stats.samples as u64, Ordering::Relaxed);
        self.nodes.fetch_add(stats.nodes as u64, Ordering::Relaxed);
        self.rewires.fetch_add(stats.rewires, Ordering::Relaxed);
        if solved {
            self.solved.fetch_add(1, Ordering::Relaxed);
        }
        self.ns_macs
            .fetch_add(stats.ns_ops.mac_equiv(), Ordering::Relaxed);
        self.cc_macs
            .fetch_add(stats.collision.total_ops().mac_equiv(), Ordering::Relaxed);
        self.insert_macs
            .fetch_add(stats.insert_ops.mac_equiv(), Ordering::Relaxed);
        self.other_macs
            .fetch_add(stats.other_ops.mac_equiv(), Ordering::Relaxed);
    }

    /// Total sampling rounds executed across all responses.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// MAC-equivalent work split `(collision, neighbor-search, insert,
    /// other)` aggregated across all responses.
    pub fn mac_breakdown(&self) -> (u64, u64, u64, u64) {
        (
            self.cc_macs.load(Ordering::Relaxed),
            self.ns_macs.load(Ordering::Relaxed),
            self.insert_macs.load(Ordering::Relaxed),
            self.other_macs.load(Ordering::Relaxed),
        )
    }

    /// Human-readable dump (one `key value` pair per line).
    pub fn dump_text(&self) -> String {
        let (cc, ns, ins, other) = self.mac_breakdown();
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v);
            out.push('\n');
        };
        kv("requests_accepted", self.accepted().to_string());
        kv("requests_rejected", self.rejected().to_string());
        kv("requests_completed", self.completed().to_string());
        kv(
            "requests_deadline_expired",
            self.deadline_expired().to_string(),
        );
        kv("requests_cancelled", self.cancelled().to_string());
        kv("requests_failed", self.failed().to_string());
        kv("requests_solved", self.solved().to_string());
        kv("panics_caught", self.panics_caught().to_string());
        kv("retries", self.retries().to_string());
        kv("worker_respawns", self.worker_respawns().to_string());
        kv("faults_injected", self.faults_injected().to_string());
        kv("queue_depth", self.queue_depth().to_string());
        kv("samples_total", self.samples().to_string());
        kv(
            "nodes_total",
            self.nodes.load(Ordering::Relaxed).to_string(),
        );
        kv(
            "rewires_total",
            self.rewires.load(Ordering::Relaxed).to_string(),
        );
        kv("macs_collision", cc.to_string());
        kv("macs_neighbor_search", ns.to_string());
        kv("macs_insert", ins.to_string());
        kv("macs_other", other.to_string());
        kv(
            "latency_p50_us",
            self.service_latency.quantile(0.50).as_micros().to_string(),
        );
        kv(
            "latency_p95_us",
            self.service_latency.quantile(0.95).as_micros().to_string(),
        );
        kv(
            "latency_max_us",
            self.service_latency.max().as_micros().to_string(),
        );
        kv(
            "latency_mean_us",
            self.service_latency.mean().as_micros().to_string(),
        );
        kv(
            "queue_wait_p95_us",
            self.queue_wait.quantile(0.95).as_micros().to_string(),
        );
        // When stage tracing is on, the dump carries the merged per-stage
        // profile (admission, queue wait, attempts, and every planner
        // stage the workers recorded).
        if moped_obs::enabled() {
            out.push_str("\n# stage profile (moped-obs)\n");
            out.push_str(&moped_obs::snapshot().render_text());
        }
        out
    }

    /// Machine-readable dump (a flat JSON object; hand-rolled because the
    /// workspace deliberately has no serialization dependency).
    pub fn dump_json(&self) -> String {
        let (cc, ns, ins, other) = self.mac_breakdown();
        let mut fields: Vec<(String, String)> = vec![
            ("requests_accepted".into(), self.accepted().to_string()),
            ("requests_rejected".into(), self.rejected().to_string()),
            ("requests_completed".into(), self.completed().to_string()),
            (
                "requests_deadline_expired".into(),
                self.deadline_expired().to_string(),
            ),
            ("requests_cancelled".into(), self.cancelled().to_string()),
            ("requests_failed".into(), self.failed().to_string()),
            ("requests_solved".into(), self.solved().to_string()),
            ("panics_caught".into(), self.panics_caught().to_string()),
            ("retries".into(), self.retries().to_string()),
            ("worker_respawns".into(), self.worker_respawns().to_string()),
            ("faults_injected".into(), self.faults_injected().to_string()),
            ("queue_depth".into(), self.queue_depth().to_string()),
            ("samples_total".into(), self.samples().to_string()),
            ("macs_collision".into(), cc.to_string()),
            ("macs_neighbor_search".into(), ns.to_string()),
            ("macs_insert".into(), ins.to_string()),
            ("macs_other".into(), other.to_string()),
            (
                "latency_p50_us".into(),
                self.service_latency.quantile(0.50).as_micros().to_string(),
            ),
            (
                "latency_p95_us".into(),
                self.service_latency.quantile(0.95).as_micros().to_string(),
            ),
            (
                "latency_max_us".into(),
                self.service_latency.max().as_micros().to_string(),
            ),
        ];
        let buckets = self
            .service_latency
            .bucket_counts()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        fields.push(("latency_buckets".into(), format!("[{buckets}]")));
        if moped_obs::enabled() {
            fields.push(("stage_profile".into(), moped_obs::snapshot().to_json()));
        }
        let body = fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered() {
        let h = LatencyHistogram::default();
        for ms in [1u64, 2, 3, 10, 20, 40, 80, 200, 500, 900] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.max());
        assert_eq!(h.max(), Duration::from_millis(900));
        assert!(h.mean() >= Duration::from_millis(100));
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(30)); // beyond the last bound
        assert_eq!(h.quantile(0.99), Duration::from_secs(30));
    }

    /// Percentile estimation on an *empty* histogram is fully defined:
    /// every quantile (including the extremes), the mean, and the max
    /// are exactly zero — no division by the zero count, no garbage
    /// bucket bound.
    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
        }
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn queue_depth_gauge_never_underflows() {
        let m = Metrics::default();
        // An unmatched decrement (panic/early-reject recovery path)
        // must clamp at zero, not wrap to u64::MAX.
        m.queue_left();
        assert_eq!(m.queue_depth(), 0);
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        m.queue_left();
        m.queue_left();
        assert_eq!(m.queue_depth(), 0);
        m.queue_entered();
        assert_eq!(m.queue_depth(), 1);
    }

    #[test]
    fn dumps_contain_counters() {
        let m = Metrics::default();
        m.inc_accepted();
        m.inc_completed();
        m.inc_failed();
        m.inc_panics_caught();
        m.inc_retries();
        m.inc_worker_respawns();
        m.service_latency.record(Duration::from_millis(3));
        let text = m.dump_text();
        assert!(text.contains("requests_accepted 1"));
        assert!(text.contains("requests_completed 1"));
        assert!(text.contains("requests_failed 1"));
        assert!(text.contains("panics_caught 1"));
        assert!(text.contains("retries 1"));
        assert!(text.contains("worker_respawns 1"));
        assert!(text.contains("faults_injected 0"));
        let json = m.dump_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_accepted\":1"));
        assert!(json.contains("\"requests_failed\":1"));
        assert!(json.contains("\"worker_respawns\":1"));
        assert!(json.contains("\"latency_buckets\":["));
    }
}
