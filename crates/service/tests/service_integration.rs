//! End-to-end service tests: determinism under concurrency, deadline
//! enforcement, and metrics accounting across a full batch.

use std::time::Duration;

use moped_core::{plan_variant, PlannerParams, Variant};
use moped_robot::Robot;
use moped_service::{
    EnvironmentCatalog, Outcome, PlanRequest, PlanService, RejectReason, ServiceConfig,
};

const BATCH: usize = 32;

fn batch_requests(catalog: &EnvironmentCatalog) -> Vec<PlanRequest> {
    let env_ids: Vec<_> = catalog.ids().collect();
    (0..BATCH)
        .map(|i| {
            let params = PlannerParams {
                max_samples: 400,
                seed: i as u64,
                ..PlannerParams::default()
            };
            PlanRequest::new(env_ids[i % env_ids.len()], params)
        })
        .collect()
}

/// The acceptance-criteria batch: 32 requests over 4 workers, every
/// response byte-identical (cost and op counts) to a serial
/// `plan_variant` run with the same `(environment, params)` pair.
#[test]
fn concurrent_batch_matches_serial_bit_for_bit() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let requests = batch_requests(&catalog);

    // Serial reference first, against the same snapshots.
    let serial: Vec<_> = requests
        .iter()
        .map(|r| {
            let scenario = &catalog.get(r.env).unwrap().scenario;
            plan_variant(scenario, r.variant, &r.params)
        })
        .collect();

    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 4,
            queue_capacity: BATCH,
            stop_poll_every: 64,
            ..Default::default()
        },
    );
    let responses = service.run_batch(requests);
    let metrics = service.shutdown();

    assert_eq!(responses.len(), BATCH);
    let mut workers_seen = std::collections::HashSet::new();
    for (i, (resp, reference)) in responses.iter().zip(&serial).enumerate() {
        let resp = resp.as_ref().expect("batch fits the queue");
        let resp = resp.response().expect("no faults configured: served");
        assert_eq!(resp.outcome, Outcome::Completed, "request {i}");
        // Bit-identical, not approximately equal: same RNG stream, same
        // kernels, same tree.
        assert_eq!(
            resp.result.path_cost.to_bits(),
            reference.path_cost.to_bits(),
            "request {i}"
        );
        assert_eq!(resp.result.path, reference.path, "request {i}");
        assert_eq!(
            resp.result.stats.samples, reference.stats.samples,
            "request {i}"
        );
        assert_eq!(
            resp.result.stats.nodes, reference.stats.nodes,
            "request {i}"
        );
        assert_eq!(
            resp.result.stats.rewires, reference.stats.rewires,
            "request {i}"
        );
        assert_eq!(
            resp.result.stats.collision.total_ops().mac_equiv(),
            reference.stats.collision.total_ops().mac_equiv(),
            "request {i}"
        );
        workers_seen.insert(resp.worker);
    }
    assert!(
        workers_seen.len() > 1,
        "work must actually spread across the pool"
    );
    assert_eq!(metrics.accepted(), BATCH as u64);
    assert_eq!(metrics.completed(), BATCH as u64);
    assert_eq!(metrics.queue_depth(), 0);
}

/// Running the same batch twice yields identical results — the service
/// is a deterministic function of its requests, independent of worker
/// interleaving.
#[test]
fn repeated_batches_are_reproducible() {
    let run = || {
        let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
        let requests = batch_requests(&catalog);
        let service = PlanService::start(
            catalog,
            ServiceConfig {
                workers: 4,
                queue_capacity: BATCH,
                stop_poll_every: 32,
                ..Default::default()
            },
        );
        let responses = service.run_batch(requests);
        service.shutdown();
        responses
            .into_iter()
            .map(|r| {
                let r = r.unwrap().into_result().unwrap();
                (
                    r.result.path_cost.to_bits(),
                    r.result.stats.samples,
                    r.result.stats.nodes,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// A deadline-limited request must come back early with a best-so-far
/// answer instead of hanging the worker, and be counted as expired.
#[test]
fn deadline_is_enforced_with_best_so_far_result() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("pillar-forest").unwrap();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            stop_poll_every: 32,
            ..Default::default()
        },
    );

    // A sampling budget that would take minutes, and a 25ms wall clock.
    let params = PlannerParams {
        max_samples: 50_000_000,
        seed: 11,
        ..Default::default()
    };
    let ticket = service
        .submit(PlanRequest::new(env, params).with_deadline(Duration::from_millis(25)))
        .unwrap();
    let response = ticket.wait().into_result().expect("served");

    assert_eq!(response.outcome, Outcome::DeadlineExpired);
    assert!(response.result.stats.stopped_early);
    assert!(
        response.result.stats.samples < 50_000_000,
        "the budget cannot have been exhausted"
    );
    // Generous bound: polling every 32 rounds must stop the run well
    // within a few hundred ms even on a loaded machine.
    assert!(response.service_time < Duration::from_secs(5));

    let metrics = service.shutdown();
    assert_eq!(metrics.deadline_expired(), 1);
    assert_eq!(metrics.completed(), 0);
}

/// A request whose deadline elapses while it is still queued is answered
/// immediately with an empty best-so-far result.
#[test]
fn deadline_expired_in_queue_short_circuits() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    // One worker, hogged; the second request's deadline expires in queue.
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            stop_poll_every: 32,
            ..Default::default()
        },
    );
    let hog_params = PlannerParams {
        max_samples: 50_000_000,
        seed: 1,
        ..Default::default()
    };
    let hog = service.submit(PlanRequest::new(env, hog_params)).unwrap();

    let quick = PlannerParams {
        max_samples: 400,
        seed: 2,
        ..Default::default()
    };
    let starved = service
        .submit(PlanRequest::new(env, quick).with_deadline(Duration::from_millis(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    hog.cancel();
    assert_eq!(
        hog.wait().into_result().unwrap().outcome,
        Outcome::Cancelled
    );

    let response = starved.wait().into_result().expect("served");
    assert_eq!(response.outcome, Outcome::DeadlineExpired);
    assert!(response.result.path.is_none());
    assert_eq!(response.result.stats.samples, 0);
    service.shutdown();
}

/// Every admitted request is accounted for exactly once after a drain:
/// `accepted == completed + deadline_expired + cancelled` and the
/// latency histogram saw every served request.
#[test]
fn metrics_sum_correctly_over_mixed_batch() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 4,
            queue_capacity: BATCH,
            stop_poll_every: 32,
            ..Default::default()
        },
    );

    let mut tickets = Vec::new();
    let mut cancel_ids = Vec::new();
    for i in 0..BATCH as u64 {
        let env = env_ids[i as usize % env_ids.len()];
        let req = match i % 8 {
            // Every 8th request: huge budget with a short deadline.
            0 => {
                let p = PlannerParams {
                    max_samples: 50_000_000,
                    seed: i,
                    ..Default::default()
                };
                PlanRequest::new(env, p).with_deadline(Duration::from_millis(10))
            }
            // Every 8th+4: huge budget, cancelled from the client side.
            4 => {
                let p = PlannerParams {
                    max_samples: 50_000_000,
                    seed: i,
                    ..Default::default()
                };
                PlanRequest::new(env, p)
            }
            _ => {
                let p = PlannerParams {
                    max_samples: 300,
                    seed: i,
                    ..Default::default()
                };
                PlanRequest::new(env, p)
            }
        };
        let ticket = service.submit(req).unwrap();
        if i % 8 == 4 {
            cancel_ids.push(tickets.len());
        }
        tickets.push(ticket);
    }
    std::thread::sleep(Duration::from_millis(20));
    for &idx in &cancel_ids {
        tickets[idx].cancel();
    }
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().into_result().expect("served"))
        .collect();
    let metrics = service.shutdown();

    let completed = responses
        .iter()
        .filter(|r| r.outcome == Outcome::Completed)
        .count() as u64;
    let expired = responses
        .iter()
        .filter(|r| r.outcome == Outcome::DeadlineExpired)
        .count() as u64;
    let cancelled = responses
        .iter()
        .filter(|r| r.outcome == Outcome::Cancelled)
        .count() as u64;

    assert_eq!(metrics.accepted(), BATCH as u64);
    assert_eq!(metrics.completed(), completed);
    assert_eq!(metrics.deadline_expired(), expired);
    assert_eq!(metrics.cancelled(), cancelled);
    assert_eq!(completed + expired + cancelled, BATCH as u64);
    assert_eq!(metrics.queue_depth(), 0);
    // Served requests == histogram observations; queued-expired requests
    // are served (with an empty result), so counts line up exactly.
    assert_eq!(metrics.service_latency().count(), BATCH as u64);
    assert!(
        metrics.deadline_expired() >= 1,
        "the 10ms deadlines must bite"
    );

    let text = metrics.dump_text();
    assert!(text.contains(&format!("requests_accepted {BATCH}")));
    let json = metrics.dump_json();
    assert!(json.contains(&format!("\"requests_accepted\":{BATCH}")));
}

/// Submitting after shutdown is impossible by construction (shutdown
/// consumes the service), so the shutting-down path is reached via a
/// dropped queue; verify the reject taxonomy stays stable instead.
#[test]
fn reject_reasons_render() {
    assert_eq!(
        RejectReason::QueueFull { capacity: 4 }.to_string(),
        "queue full (capacity 4)"
    );
    assert_eq!(
        RejectReason::UnknownEnvironment.to_string(),
        "unknown environment id"
    );
    assert_eq!(
        RejectReason::ShuttingDown.to_string(),
        "service is shutting down"
    );
}

/// Variants other than full MOPED plan correctly through the service and
/// still match their serial counterparts.
#[test]
fn variant_ladder_matches_serial_through_service() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("slalom-corridor").unwrap();
    let scenario = catalog.get(env).unwrap().scenario.clone();

    let variants = [Variant::V0Baseline, Variant::V2Stns, Variant::V4Lci];
    let params = PlannerParams {
        max_samples: 250,
        seed: 21,
        ..Default::default()
    };
    let serial: Vec<_> = variants
        .iter()
        .map(|&v| plan_variant(&scenario, v, &params))
        .collect();

    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            stop_poll_every: 64,
            ..Default::default()
        },
    );
    let responses = service.run_batch(
        variants
            .iter()
            .map(|&v| PlanRequest::new(env, params.clone()).with_variant(v)),
    );
    service.shutdown();

    for ((resp, reference), variant) in responses.iter().zip(&serial).zip(&variants) {
        let resp = resp.as_ref().unwrap().response().expect("served");
        assert_eq!(
            resp.result.path_cost.to_bits(),
            reference.path_cost.to_bits(),
            "{variant:?}"
        );
        assert_eq!(
            resp.result.stats.samples, reference.stats.samples,
            "{variant:?}"
        );
    }
}

/// Queue-wait accounting is admission → dequeue only: a pool with idle
/// workers must report (near-)zero queue wait, because each request is
/// picked up the moment it lands on a shard — planning time never leaks
/// into the queue-wait histogram. (The closed-batch benchmark once
/// reported 320ms+ queue-wait p99 at every pool size; that was genuine
/// queueing of a 64-deep backlog, but this invariant is what makes the
/// number trustworthy.)
#[test]
fn idle_pool_reports_near_zero_queue_wait() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env = catalog.find("open-meadow").unwrap();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            stop_poll_every: 64,
            ..Default::default()
        },
    );
    // Strictly sequential: each request resolves before the next is
    // admitted, so a worker is always parked and hungry at submit time.
    for seed in 0..8u64 {
        let params = PlannerParams {
            max_samples: 300,
            seed,
            ..PlannerParams::default()
        };
        let response = service
            .submit(PlanRequest::new(env, params))
            .unwrap()
            .wait()
            .into_result()
            .expect("served");
        assert!(
            response.queue_wait < Duration::from_millis(50),
            "idle pool queued a request for {:?}",
            response.queue_wait
        );
    }
    let metrics = service.shutdown();
    let queue_wait = metrics.queue_wait();
    assert_eq!(queue_wait.count(), 8);
    // Generous bound for slow CI machines; the point is that this is
    // microseconds-to-low-milliseconds, not the planning time (tens of
    // milliseconds) and not a backlog (hundreds).
    assert!(
        queue_wait.quantile(0.99) < Duration::from_millis(50),
        "idle-pool queue-wait p99 was {:?}",
        queue_wait.quantile(0.99)
    );
}
