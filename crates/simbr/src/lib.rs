//! SI-MBR-Tree: the steering-informed minimal-bounding-rectangle tree.
//!
//! This is MOPED's data structure for neighbor search over the RRT\*
//! exploration tree (§III-B/§III-C). Leaf entries are exploration-tree
//! configurations; every non-leaf node stores the minimum bounding
//! rectangle (MBR) of its descendants. Three capabilities distinguish it
//! from a stock R-tree:
//!
//! 1. **MINDIST branch-and-bound nearest search** — subtrees are expanded
//!    in globally ascending MINDIST order (best-first) and skipped the
//!    moment their MINDIST exceeds the best distance found so far, since
//!    MINDIST lower bounds the distance to *every* leaf in the subtree.
//! 2. **Steering-informed approximated neighborhoods (SIAS)** — because
//!    `x_new` is steered a short step from `x_nearest`, the leaf group
//!    (siblings) of `x_nearest` approximates the `near()` set of `x_new`,
//!    eliminating the second neighbor search of each RRT\* round.
//! 3. **Low-cost O(1) insertion (LCI)** — `x_new` is inserted directly as
//!    a sibling of `x_nearest`, skipping the conventional root-to-leaf
//!    min-area-enlargement descent.
//!
//! # Layout and caching
//!
//! The tree is stored as a flat structure-of-arrays arena: rect planes
//! are contiguous `f64` slabs, child/entry slots are fixed-stride spans,
//! and leaf points live in one coordinate slab — no per-node `Vec`, no
//! pointer chasing on the search hot path. Two software analogs of the
//! paper's multi-level caches (§IV-C) ride on this layout:
//!
//! * **Pinned top-of-tree block** (Top NS Cache analog): whenever the
//!   root grows, the arena is repacked breadth-first so the top
//!   [`TOP_LEVELS`] levels occupy one contiguous prefix; pops landing in
//!   the prefix count as top-block hits.
//! * **Search-trace seed** (search-trace cache analog):
//!   [`SiMbrTree::nearest_with_hint`] accepts the previous round's winner
//!   and seeds the pruning bound with its exact distance — an attained
//!   distance is a valid upper bound, so exactness is preserved while the
//!   warm bound prunes the frontier from the first pop.
//!
//! Both the conventional insertion (for the V2/V3 ablations) and LCI (V4)
//! are implemented; every kernel charges an [`OpCount`] ledger.
//!
//! # Example
//!
//! ```
//! use moped_geometry::{Config, OpCount};
//! use moped_simbr::SiMbrTree;
//!
//! let mut tree = SiMbrTree::new(2, 4);
//! let mut ops = OpCount::default();
//! for (i, xy) in [[0.0, 0.0], [5.0, 5.0], [1.0, 0.5]].iter().enumerate() {
//!     tree.insert_conventional(i as u64, Config::new(xy), &mut ops);
//! }
//! let (id, d) = tree.nearest(&Config::new(&[0.9, 0.4]), &mut ops).unwrap();
//! assert_eq!(id, 2);
//! assert!(d < 0.2);
//! ```

#![deny(missing_docs)]

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BTreeMap;

use moped_geometry::{Config, OpCount, Rect};
use moped_obs::counters::{bump, Counter};

/// Number of tree levels held in the pinned top-of-tree block (the
/// software Top NS Cache). The prefix is refreshed on every root growth.
/// Four levels of a fanout-≤7 tree is at most 400 nodes — a few tens of
/// KiB of rect planes and slots, comfortably inside the on-chip SRAM the
/// paper budgets for its Top NS Cache.
pub const TOP_LEVELS: usize = 4;

/// Sentinel for "no parent" in the flat parent array.
const NO_NODE: u32 = u32::MAX;

/// Per-search traversal statistics, consumed by the hardware cache model
/// (top-of-tree visits become Top NS Cache hits) and the evaluation
/// figures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes whose children were examined.
    pub nodes_visited: u64,
    /// Subtrees skipped by the MINDIST bound.
    pub subtrees_skipped: u64,
    /// Leaf-entry exact distance computations.
    pub distance_calcs: u64,
    /// Node visits bucketed by depth (index 0 = root).
    pub visits_by_depth: Vec<u64>,
    /// Ordered node-id access trace of the search (filled only by
    /// [`SiMbrTree::nearest_traced`]; the hardware cache simulator
    /// replays it).
    pub access_trace: Vec<usize>,
}

impl SearchStats {
    fn bump_depth(&mut self, depth: usize) {
        if self.visits_by_depth.len() <= depth {
            self.visits_by_depth.resize(depth + 1, 0);
        }
        self.visits_by_depth[depth] += 1;
        self.nodes_visited += 1;
    }

    /// Merges another search's statistics into this one (traces append).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.subtrees_skipped += other.subtrees_skipped;
        self.distance_calcs += other.distance_calcs;
        for (i, v) in other.visits_by_depth.iter().enumerate() {
            if self.visits_by_depth.len() <= i {
                self.visits_by_depth.resize(i + 1, 0);
            }
            self.visits_by_depth[i] += v;
        }
        self.access_trace.extend_from_slice(&other.access_trace);
    }
}

/// Per-tree software cache effectiveness counters. Deterministic and
/// always on (plain `Cell` bumps); the process-global `moped-obs`
/// counters mirror these when tracing is enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Best-first pops that landed inside the pinned top block.
    pub top_hits: u64,
    /// Best-first pops outside the pinned top block.
    pub top_misses: u64,
    /// Queries whose hint entry was present and seeded the bound.
    pub seed_hits: u64,
    /// Queries whose hint entry was absent (or no hint given).
    pub seed_misses: u64,
}

/// A leaf entry: one exploration-tree node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// Caller-assigned identifier (the EXP-tree node id).
    pub id: u64,
    /// The configuration this entry indexes.
    pub point: Config,
}

/// One frontier element of the best-first search (also reused as the
/// explicit stack of the reference DFS).
#[derive(Clone, Copy, Debug)]
struct Frontier {
    md: f64,
    node: u32,
    depth: u32,
}

/// Total order on frontier elements: ascending MINDIST, ties broken by
/// node id so the traversal is deterministic.
#[inline]
fn frontier_before(a: &Frontier, b: &Frontier) -> bool {
    match a.md.partial_cmp(&b.md).expect("finite MINDIST") {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a.node < b.node,
    }
}

/// Binary min-heap push; every ordering probe is charged one `cmp`.
fn heap_push(h: &mut Vec<Frontier>, f: Frontier, ops: &mut OpCount) {
    h.push(f);
    let mut i = h.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        ops.cmp += 1;
        if frontier_before(&h[i], &h[p]) {
            h.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

/// Binary min-heap pop; every ordering probe is charged one `cmp`.
fn heap_pop(h: &mut Vec<Frontier>, ops: &mut OpCount) -> Option<Frontier> {
    let out = *h.first()?;
    let last = h.pop().expect("non-empty");
    if !h.is_empty() {
        h[0] = last;
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < h.len() {
                ops.cmp += 1;
                if frontier_before(&h[l], &h[m]) {
                    m = l;
                }
            }
            if r < h.len() {
                ops.cmp += 1;
                if frontier_before(&h[r], &h[m]) {
                    m = r;
                }
            }
            if m == i {
                break;
            }
            h.swap(i, m);
            i = m;
        }
    }
    Some(out)
}

/// The steering-informed MBR tree. See the crate-level docs.
#[derive(Clone, Debug)]
pub struct SiMbrTree {
    // --- flat SoA arena, all arrays indexed by node id ---
    /// Rect minimum planes, stride `dim`.
    lo: Vec<f64>,
    /// Rect maximum planes, stride `dim`.
    hi: Vec<f64>,
    /// Parent node id, `NO_NODE` for the root.
    parent: Vec<u32>,
    /// Leaf flag per node.
    is_leaf: Vec<bool>,
    /// Live child/entry count per node.
    count: Vec<u32>,
    /// Child node ids (inner) or entry ids (leaf), stride `cap`.
    slots: Vec<u64>,
    /// Leaf entry coordinates, stride `cap * dim`.
    pts: Vec<f64>,
    root: Option<usize>,
    // BTreeMap, not HashMap: this crate's results must be bit-reproducible
    // and hash iteration order is not (lint rule `hash-collections`).
    entry_leaf: BTreeMap<u64, usize>,
    dim: usize,
    max_entries: usize,
    /// Slots per node: `max_entries + 1` so a node can hold its overflow
    /// item for the instant between insertion and split.
    cap: usize,
    len: usize,
    /// Arena prefix length of the pinned top block (nodes in the top
    /// [`TOP_LEVELS`] levels as of the last repack).
    top_len: usize,
    /// Reusable best-first frontier / DFS stack: amortizes to zero heap
    /// allocation per query.
    frontier: RefCell<Vec<Frontier>>,
    cache_stats: Cell<CacheStats>,
}

impl SiMbrTree {
    /// Creates an empty tree for `dim`-dimensional configurations with at
    /// most `max_entries` entries (or children) per node.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 2` or `dim` is outside
    /// `1..=moped_geometry::MAX_DOF`.
    pub fn new(dim: usize, max_entries: usize) -> Self {
        assert!(
            (2..=32).contains(&max_entries),
            "node capacity must be in 2..=32 (hardware node records are small)"
        );
        assert!(
            (1..=moped_geometry::MAX_DOF).contains(&dim),
            "unsupported dimension {dim}"
        );
        SiMbrTree {
            lo: Vec::new(),
            hi: Vec::new(),
            parent: Vec::new(),
            is_leaf: Vec::new(),
            count: Vec::new(),
            slots: Vec::new(),
            pts: Vec::new(),
            root: None,
            entry_leaf: BTreeMap::new(),
            dim,
            max_entries,
            cap: max_entries + 1,
            len: 0,
            top_len: 0,
            frontier: RefCell::new(Vec::new()),
            cache_stats: Cell::new(CacheStats::default()),
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configuration-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Node capacity this tree was built with (`max_entries` in `new`).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Tree height (0 when empty, 1 when the root is a leaf).
    pub fn height(&self) -> usize {
        let Some(mut n) = self.root else { return 0 };
        let mut h = 1;
        while !self.is_leaf[n] {
            n = self.slots[n * self.cap] as usize;
            h += 1;
        }
        h
    }

    /// Total allocated node count.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Arena prefix length of the pinned top-of-tree block: every node id
    /// below this bound sat in the top [`TOP_LEVELS`] levels at the last
    /// breadth-first repack.
    pub fn top_block_len(&self) -> usize {
        self.top_len
    }

    /// Per-tree software cache counters (monotonic since construction).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats.get()
    }

    /// On-chip footprint in 16-bit words: each node MBR is `2d` words plus
    /// one pointer word per child/entry; each entry point is `d` words.
    pub fn memory_words(&self) -> u64 {
        let mut words = 0u64;
        for n in 0..self.node_count() {
            words += 2 * self.dim as u64;
            words += if self.is_leaf[n] {
                self.count[n] as u64 * (1 + self.dim as u64)
            } else {
                self.count[n] as u64
            };
        }
        words
    }

    // ------------------------------------------------------------------
    // Arena accessors
    // ------------------------------------------------------------------

    #[inline]
    fn lo_of(&self, n: usize) -> &[f64] {
        &self.lo[n * self.dim..n * self.dim + self.dim]
    }

    #[inline]
    fn hi_of(&self, n: usize) -> &[f64] {
        &self.hi[n * self.dim..n * self.dim + self.dim]
    }

    fn node_rect(&self, n: usize) -> Rect {
        Rect::new(Config::new(self.lo_of(n)), Config::new(self.hi_of(n)))
    }

    fn set_rect(&mut self, n: usize, r: &Rect) {
        let base = n * self.dim;
        self.lo[base..base + self.dim].copy_from_slice(r.lo().as_slice());
        self.hi[base..base + self.dim].copy_from_slice(r.hi().as_slice());
    }

    #[inline]
    fn kids_of(&self, n: usize) -> &[u64] {
        &self.slots[n * self.cap..n * self.cap + self.count[n] as usize]
    }

    #[inline]
    fn entry_pt(&self, n: usize, k: usize) -> &[f64] {
        let base = (n * self.cap + k) * self.dim;
        &self.pts[base..base + self.dim]
    }

    fn entry_config(&self, n: usize, k: usize) -> Config {
        Config::new(self.entry_pt(n, k))
    }

    /// Appends a fresh node to every arena column; returns its id.
    fn alloc_node(&mut self, parent: u32, is_leaf: bool) -> usize {
        let id = self.parent.len();
        self.lo.resize(self.lo.len() + self.dim, 0.0);
        self.hi.resize(self.hi.len() + self.dim, 0.0);
        self.parent.push(parent);
        self.is_leaf.push(is_leaf);
        self.count.push(0);
        self.slots.resize(self.slots.len() + self.cap, 0);
        self.pts.resize(self.pts.len() + self.cap * self.dim, 0.0);
        id
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Conventional R-tree insertion: descends from the root, picking at
    /// each level the child whose MBR needs the *minimum area enlargement*
    /// to absorb `point` (ties broken by smaller area). This is what the
    /// V2/V3 ablations pay for every sample (Fig 9, left).
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the tree dimension or `id` is
    /// already present.
    pub fn insert_conventional(&mut self, id: u64, point: Config, ops: &mut OpCount) {
        self.check_insert(id, &point);
        let Some(root) = self.root else {
            self.create_root(id, point);
            return;
        };
        let mut node = root;
        while !self.is_leaf[node] {
            // Min-area-enlargement choice, the costly part the paper's
            // LCI removes.
            let kids = self.kids_of(node);
            let mut best = kids[0] as usize;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for &k in kids {
                let rect = self.node_rect(k as usize);
                let enl = rect.enlargement_counted(&point, ops);
                let area = rect.measure();
                ops.cmp += 1;
                if enl < best_enl || (enl == best_enl && area < best_area) {
                    best = k as usize;
                    best_enl = enl;
                    best_area = area;
                }
            }
            // Reading each child MBR costs 2d words.
            ops.mem_words += self.count[node] as u64 * 2 * self.dim as u64;
            node = best;
        }
        self.push_entry(node, Entry { id, point }, ops);
    }

    /// Steering-informed low-cost insertion (LCI, §III-C): places `point`
    /// directly as a sibling of the existing entry `near_id` — the
    /// `x_nearest` that `point` was steered from — with no descent and no
    /// enlargement arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `near_id` is not in the tree, `id` is already present,
    /// or dimensions mismatch.
    pub fn insert_near(&mut self, id: u64, point: Config, near_id: u64, ops: &mut OpCount) {
        self.check_insert(id, &point);
        let leaf = *self
            .entry_leaf
            .get(&near_id)
            .unwrap_or_else(|| panic!("near_id {near_id} not present in SI-MBR-Tree"));
        self.push_entry(leaf, Entry { id, point }, ops);
    }

    fn check_insert(&self, id: u64, point: &Config) {
        assert_eq!(point.dim(), self.dim, "dimension mismatch");
        assert!(
            !self.entry_leaf.contains_key(&id),
            "duplicate SI-MBR-Tree entry id {id}"
        );
    }

    fn create_root(&mut self, id: u64, point: Config) {
        let n = self.alloc_node(NO_NODE, true);
        self.set_rect(n, &Rect::from_point(&point));
        self.write_entry(n, 0, id, &point);
        self.count[n] = 1;
        self.root = Some(n);
        self.entry_leaf.insert(id, n);
        self.len = 1;
        self.top_len = 1;
    }

    fn write_entry(&mut self, leaf: usize, slot: usize, id: u64, point: &Config) {
        self.slots[leaf * self.cap + slot] = id;
        let base = (leaf * self.cap + slot) * self.dim;
        self.pts[base..base + self.dim].copy_from_slice(point.as_slice());
    }

    fn push_entry(&mut self, leaf: usize, entry: Entry, ops: &mut OpCount) {
        debug_assert!(self.is_leaf[leaf]);
        let slot = self.count[leaf] as usize;
        debug_assert!(slot < self.cap, "leaf overfull before split");
        self.write_entry(leaf, slot, entry.id, &entry.point);
        self.count[leaf] += 1;
        self.entry_leaf.insert(entry.id, leaf);
        self.len += 1;
        // Extend ancestor MBRs in place; per level this is 2d min/max
        // compares and a 2d-word write-back.
        let mut n = leaf;
        loop {
            let base = n * self.dim;
            for i in 0..self.dim {
                let v = entry.point[i];
                if v < self.lo[base + i] {
                    self.lo[base + i] = v;
                }
                if v > self.hi[base + i] {
                    self.hi[base + i] = v;
                }
            }
            ops.cmp += 2 * self.dim as u64;
            ops.mem_words += 2 * self.dim as u64;
            if self.parent[n] == NO_NODE {
                break;
            }
            n = self.parent[n] as usize;
        }
        self.maybe_split(leaf, ops);
    }

    // ------------------------------------------------------------------
    // Splitting (Guttman quadratic split)
    // ------------------------------------------------------------------

    fn maybe_split(&mut self, mut node: usize, ops: &mut OpCount) {
        let mut grew = false;
        while self.count[node] as usize > self.max_entries {
            let (parent, grew_now) = self.split_node(node, ops);
            grew |= grew_now;
            node = parent;
        }
        if grew {
            // Root growth is the deterministic refill point of the pinned
            // top block: repack the arena breadth-first so the top levels
            // are one contiguous prefix. Charged as free, like the
            // paper's background cache fill.
            self.repack();
        }
    }

    /// Splits `node` in two; returns the parent that gained a child (and
    /// may itself now be overfull) plus whether the root grew.
    fn split_node(&mut self, node: usize, ops: &mut OpCount) -> (usize, bool) {
        let is_leaf = self.is_leaf[node];
        let n_items = self.count[node] as usize;
        let rects: Vec<Rect> = if is_leaf {
            (0..n_items)
                .map(|k| Rect::from_point(&self.entry_config(node, k)))
                .collect()
        } else {
            (0..n_items)
                .map(|k| self.node_rect(self.slots[node * self.cap + k] as usize))
                .collect()
        };
        let (ga, gb) = quadratic_split(&rects, ops);

        let slot_snap: Vec<u64> = self.kids_of(node).to_vec();
        let pt_snap: Vec<Config> = if is_leaf {
            (0..n_items).map(|k| self.entry_config(node, k)).collect()
        } else {
            Vec::new()
        };

        let new_node = self.alloc_node(self.parent[node], is_leaf);
        let group_rect = |group: &[usize]| -> Rect {
            group
                .iter()
                .map(|&i| rects[i])
                .reduce(|a, b| a.union(&b))
                .expect("split groups are non-empty")
        };
        let keep_rect = group_rect(&ga);
        let moved_rect = group_rect(&gb);

        // Rewrite the kept group in place, the moved group into the twin.
        for (slot, &i) in ga.iter().enumerate() {
            self.slots[node * self.cap + slot] = slot_snap[i];
            if is_leaf {
                let (id, p) = (slot_snap[i], pt_snap[i]);
                self.write_entry(node, slot, id, &p);
            }
        }
        self.count[node] = ga.len() as u32;
        self.set_rect(node, &keep_rect);
        for (slot, &i) in gb.iter().enumerate() {
            if is_leaf {
                self.write_entry(new_node, slot, slot_snap[i], &pt_snap[i]);
                self.entry_leaf.insert(slot_snap[i], new_node);
            } else {
                self.slots[new_node * self.cap + slot] = slot_snap[i];
                self.parent[slot_snap[i] as usize] = new_node as u32;
            }
        }
        self.count[new_node] = gb.len() as u32;
        self.set_rect(new_node, &moved_rect);

        if self.parent[node] == NO_NODE {
            // Grow a new root.
            let rect = keep_rect.union(&moved_rect);
            let root = self.alloc_node(NO_NODE, false);
            self.set_rect(root, &rect);
            self.slots[root * self.cap] = node as u64;
            self.slots[root * self.cap + 1] = new_node as u64;
            self.count[root] = 2;
            self.parent[node] = root as u32;
            self.parent[new_node] = root as u32;
            self.root = Some(root);
            (root, true)
        } else {
            let p = self.parent[node] as usize;
            debug_assert!(!self.is_leaf[p], "parent of a split node must be inner");
            let slot = self.count[p] as usize;
            debug_assert!(slot < self.cap, "parent overfull before split");
            self.slots[p * self.cap + slot] = new_node as u64;
            self.count[p] += 1;
            (p, false)
        }
    }

    /// Breadth-first arena repack: relabels every node so levels occupy
    /// contiguous index ranges (root = 0), then records the prefix length
    /// of the top [`TOP_LEVELS`] levels as the pinned block. Runs only on
    /// root growth, so the amortized cost over n insertions is O(log n)
    /// full passes.
    fn repack(&mut self) {
        let Some(root) = self.root else { return };
        let n = self.node_count();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut depth: Vec<u32> = Vec::with_capacity(n);
        order.push(root as u32);
        depth.push(0);
        let mut i = 0;
        while i < order.len() {
            let v = order[i] as usize;
            if !self.is_leaf[v] {
                for k in 0..self.count[v] as usize {
                    order.push(self.slots[v * self.cap + k] as u32);
                    depth.push(depth[i] + 1);
                }
            }
            i += 1;
        }
        debug_assert_eq!(order.len(), n, "splits never orphan nodes");

        let mut new_of: Vec<u32> = vec![NO_NODE; n];
        for (new_idx, &old) in order.iter().enumerate() {
            new_of[old as usize] = new_idx as u32;
        }

        let (dim, cap) = (self.dim, self.cap);
        let mut lo = vec![0.0; n * dim];
        let mut hi = vec![0.0; n * dim];
        let mut parent = vec![NO_NODE; n];
        let mut is_leaf = vec![false; n];
        let mut count = vec![0u32; n];
        let mut slots = vec![0u64; n * cap];
        let mut pts = vec![0.0; n * cap * dim];
        for (new_idx, &old_u) in order.iter().enumerate() {
            let old = old_u as usize;
            lo[new_idx * dim..(new_idx + 1) * dim].copy_from_slice(self.lo_of(old));
            hi[new_idx * dim..(new_idx + 1) * dim].copy_from_slice(self.hi_of(old));
            if self.parent[old] != NO_NODE {
                parent[new_idx] = new_of[self.parent[old] as usize];
            }
            is_leaf[new_idx] = self.is_leaf[old];
            count[new_idx] = self.count[old];
            let c = self.count[old] as usize;
            if self.is_leaf[old] {
                slots[new_idx * cap..new_idx * cap + c]
                    .copy_from_slice(&self.slots[old * cap..old * cap + c]);
                pts[new_idx * cap * dim..new_idx * cap * dim + c * dim]
                    .copy_from_slice(&self.pts[old * cap * dim..old * cap * dim + c * dim]);
                for k in 0..c {
                    let id = slots[new_idx * cap + k];
                    self.entry_leaf.insert(id, new_idx);
                }
            } else {
                for k in 0..c {
                    slots[new_idx * cap + k] = new_of[self.slots[old * cap + k] as usize] as u64;
                }
            }
        }
        self.lo = lo;
        self.hi = hi;
        self.parent = parent;
        self.is_leaf = is_leaf;
        self.count = count;
        self.slots = slots;
        self.pts = pts;
        self.root = Some(0);
        self.top_len = depth.iter().filter(|&&d| (d as usize) < TOP_LEVELS).count();
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Exact nearest neighbor of `query`: returns `(entry id, distance)`.
    ///
    /// Subtrees are expanded in globally ascending MINDIST order
    /// (best-first over a reusable frontier); a child is skipped the
    /// moment its MINDIST can no longer beat the current best — the
    /// §III-B pruning rule. Returns `None` on an empty tree. See
    /// [`SiMbrTree::nearest_with_stats`] for traversal detail.
    pub fn nearest(&self, query: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut stats = SearchStats::default();
        self.nearest_with_stats(query, ops, &mut stats)
    }

    /// Exact nearest neighbor with traversal statistics.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim()` differs from the tree dimension.
    pub fn nearest_with_stats(
        &self,
        query: &Config,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        self.nearest_with_hint(query, None, ops, stats)
    }

    /// Exact nearest neighbor with a search-trace cache seed: when `hint`
    /// names an indexed entry (typically the previous round's winner),
    /// its exact distance initializes the pruning bound *and* the best
    /// candidate, so the answer stays exact while the frontier is pruned
    /// from the first pop.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim()` differs from the tree dimension.
    pub fn nearest_with_hint(
        &self,
        query: &Config,
        hint: Option<u64>,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        self.root?;
        let _span = moped_obs::span(moped_obs::Stage::MbrDescent);
        self.search_best_first(query, hint, false, ops, stats)
    }

    /// Exact nearest neighbor that additionally records the ordered node
    /// access trace into `stats.access_trace` — the input the hardware
    /// cache simulator replays against the Top NS Cache model. Identical
    /// traversal (and result) to [`SiMbrTree::nearest_with_stats`].
    pub fn nearest_traced(
        &self,
        query: &Config,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        self.search_best_first(query, None, true, ops, stats)
    }

    /// The shared best-first core: pops the frontier node with the
    /// smallest MINDIST, expands it, and admits children only while their
    /// MINDIST beats the current bound. Terminates when the cheapest
    /// frontier element can no longer win — at which point *every*
    /// remaining element is provably skippable, which is what makes
    /// best-first visit-optimal (it expands exactly the nodes whose
    /// MINDIST is below the true nearest distance).
    fn search_best_first(
        &self,
        query: &Config,
        hint: Option<u64>,
        trace: bool,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        let root = self.root?;
        let mut cache = self.cache_stats.get();
        let mut best: Option<u64> = None;
        let mut best_d2 = f64::INFINITY;

        if let Some(hid) = hint {
            match self.entry_leaf.get(&hid) {
                Some(&leaf) => {
                    // Seed bound and candidate from the retained entry:
                    // an attained distance is a valid upper bound.
                    for k in 0..self.count[leaf] as usize {
                        ops.cmp += 1;
                        if self.slots[leaf * self.cap + k] == hid {
                            ops.mem_words += self.dim as u64;
                            best_d2 =
                                query.distance_sq_to_slice_counted(self.entry_pt(leaf, k), ops);
                            stats.distance_calcs += 1;
                            best = Some(hid);
                            break;
                        }
                    }
                    cache.seed_hits += 1;
                    bump(Counter::TraceSeedHit);
                }
                None => {
                    cache.seed_misses += 1;
                    bump(Counter::TraceSeedMiss);
                }
            }
        }

        let mut frontier = self.frontier.borrow_mut();
        frontier.clear();
        heap_push(
            &mut frontier,
            Frontier {
                md: 0.0,
                node: root as u32,
                depth: 0,
            },
            ops,
        );
        while let Some(f) = heap_pop(&mut frontier, ops) {
            ops.cmp += 1;
            if f.md >= best_d2 {
                // The cheapest frontier element already loses: everything
                // still queued is skippable.
                stats.subtrees_skipped += frontier.len() as u64 + 1;
                break;
            }
            let node = f.node as usize;
            if trace {
                stats.access_trace.push(node);
            }
            stats.bump_depth(f.depth as usize);
            if node < self.top_len {
                cache.top_hits += 1;
                bump(Counter::TopBlockHit);
            } else {
                cache.top_misses += 1;
                bump(Counter::TopBlockMiss);
            }
            if self.is_leaf[node] {
                for k in 0..self.count[node] as usize {
                    ops.mem_words += self.dim as u64;
                    let d2 = query.distance_sq_to_slice_counted(self.entry_pt(node, k), ops);
                    stats.distance_calcs += 1;
                    ops.cmp += 1;
                    if d2 < best_d2 {
                        best_d2 = d2;
                        best = Some(self.slots[node * self.cap + k]);
                    }
                }
            } else {
                for k in 0..self.count[node] as usize {
                    let child = self.slots[node * self.cap + k] as usize;
                    ops.mem_words += 2 * self.dim as u64;
                    let md =
                        Rect::mindist_sq_planes(self.lo_of(child), self.hi_of(child), query, ops);
                    ops.cmp += 1;
                    if md < best_d2 {
                        heap_push(
                            &mut frontier,
                            Frontier {
                                md,
                                node: child as u32,
                                depth: f.depth + 1,
                            },
                            ops,
                        );
                    } else {
                        stats.subtrees_skipped += 1;
                    }
                }
            }
        }
        self.cache_stats.set(cache);
        best.map(|id| (id, best_d2.sqrt()))
    }

    /// Pre-rewrite reference search: depth-first MINDIST descent with
    /// children sorted ascending per node — the traversal the recursive
    /// implementation performed, kept (iteratively, over an explicit
    /// stack) as the old-vs-new baseline for benches and `planner_bench`.
    /// Visits the same nodes and computes the same distances as the old
    /// recursion; exact like the best-first path.
    pub fn nearest_reference_dfs(
        &self,
        query: &Config,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        let root = self.root?;
        let _span = moped_obs::span(moped_obs::Stage::MbrDescent);
        let mut best: Option<u64> = None;
        let mut best_d2 = f64::INFINITY;
        let mut stack = self.frontier.borrow_mut();
        stack.clear();
        stack.push(Frontier {
            md: 0.0,
            node: root as u32,
            depth: 0,
        });
        while let Some(f) = stack.pop() {
            ops.cmp += 1;
            if f.md >= best_d2 {
                stats.subtrees_skipped += 1;
                continue;
            }
            let node = f.node as usize;
            stats.bump_depth(f.depth as usize);
            if self.is_leaf[node] {
                for k in 0..self.count[node] as usize {
                    ops.mem_words += self.dim as u64;
                    let d2 = query.distance_sq_to_slice_counted(self.entry_pt(node, k), ops);
                    stats.distance_calcs += 1;
                    ops.cmp += 1;
                    if d2 < best_d2 {
                        best_d2 = d2;
                        best = Some(self.slots[node * self.cap + k]);
                    }
                }
            } else {
                // MINDIST each child, sort ascending, push in reverse so
                // the nearest child is explored first (LIFO = the old
                // recursion order). The order buffer lives on the stack.
                const MAX_FANOUT: usize = 64;
                let n = self.count[node] as usize;
                debug_assert!(n <= MAX_FANOUT, "node fanout exceeds stack buffer");
                let mut order = [(0.0f64, 0u32); MAX_FANOUT];
                for (k, slot) in order.iter_mut().enumerate().take(n) {
                    let child = self.slots[node * self.cap + k] as usize;
                    ops.mem_words += 2 * self.dim as u64;
                    *slot = (
                        Rect::mindist_sq_planes(self.lo_of(child), self.hi_of(child), query, ops),
                        child as u32,
                    );
                }
                order[..n].sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite MINDIST"));
                ops.cmp += (n.saturating_sub(1)) as u64;
                for (md, k) in order[..n].iter().rev() {
                    stack.push(Frontier {
                        md: *md,
                        node: *k,
                        depth: f.depth + 1,
                    });
                }
            }
        }
        best.map(|id| (id, best_d2.sqrt()))
    }

    /// The depth (root = 0) of node `id` in the current structure, used
    /// by the cache model to classify trace entries. Returns `None` for
    /// an unknown node id.
    pub fn node_depth(&self, id: usize) -> Option<usize> {
        if id >= self.node_count() {
            return None;
        }
        let mut d = 0;
        let mut cur = id;
        while self.parent[cur] != NO_NODE {
            cur = self.parent[cur] as usize;
            d += 1;
        }
        Some(d)
    }

    /// Exact range search: all entries within `radius` of `query`,
    /// unsorted. Subtrees are pruned by `MINDIST > radius`. This is the
    /// *second* neighbor search of a stock RRT\* round, which SIAS
    /// replaces.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `radius` is negative.
    pub fn near(&self, query: &Config, radius: f64, ops: &mut OpCount) -> Vec<Entry> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let r2 = radius * radius;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            ops.mem_words += 2 * self.dim as u64;
            if Rect::mindist_sq_planes(self.lo_of(n), self.hi_of(n), query, ops) > r2 {
                continue;
            }
            if self.is_leaf[n] {
                for k in 0..self.count[n] as usize {
                    ops.mem_words += self.dim as u64;
                    let d2 = query.distance_sq_to_slice_counted(self.entry_pt(n, k), ops);
                    ops.cmp += 1;
                    if d2 <= r2 {
                        out.push(Entry {
                            id: self.slots[n * self.cap + k],
                            point: self.entry_config(n, k),
                        });
                    }
                }
            } else {
                stack.extend(self.kids_of(n).iter().map(|&k| k as usize));
            }
        }
        out
    }

    /// Steering-informed approximated neighborhood (SIAS, §III-B): the
    /// leaf group of `entry_id` — every entry sharing its parent node.
    /// The building procedure groups geometrically nearby configurations
    /// under the same parent, and steering keeps `x_new` close to
    /// `x_nearest`, so this set approximates `near(x_new, ·)` **at zero
    /// search cost** (only the leaf read is charged).
    ///
    /// # Panics
    ///
    /// Panics if `entry_id` is not present.
    pub fn leaf_group(&self, entry_id: u64, ops: &mut OpCount) -> Vec<Entry> {
        let leaf = *self
            .entry_leaf
            .get(&entry_id)
            .unwrap_or_else(|| panic!("entry {entry_id} not present in SI-MBR-Tree"));
        debug_assert!(self.is_leaf[leaf], "entry_leaf always maps to leaves");
        let n = self.count[leaf] as usize;
        ops.mem_words += n as u64 * (1 + self.dim as u64);
        (0..n)
            .map(|k| Entry {
                id: self.slots[leaf * self.cap + k],
                point: self.entry_config(leaf, k),
            })
            .collect()
    }

    /// Linear-scan nearest neighbor over all entries — the reference the
    /// property tests compare against, and the "no index" baseline of the
    /// evaluation.
    pub fn nearest_linear(&self, query: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut best = None;
        let mut best_d2 = f64::INFINITY;
        for n in 0..self.node_count() {
            if !self.is_leaf[n] {
                continue;
            }
            for k in 0..self.count[n] as usize {
                let d2 = query.distance_sq_to_slice_counted(self.entry_pt(n, k), ops);
                ops.cmp += 1;
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = Some(self.slots[n * self.cap + k]);
                }
            }
        }
        best.map(|id| (id, best_d2.sqrt()))
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        (0..self.node_count())
            .filter(|&n| self.is_leaf[n])
            .flat_map(move |n| {
                (0..self.count[n] as usize).map(move |k| Entry {
                    id: self.slots[n * self.cap + k],
                    point: self.entry_config(n, k),
                })
            })
    }

    /// Verifies structural invariants (MBR containment, parent links,
    /// entry-map consistency, pinned-block depth bound); used by tests
    /// and debug assertions.
    ///
    /// Returns a human-readable violation description, or `None` if sound.
    pub fn check_invariants(&self) -> Option<String> {
        let Some(root) = self.root else {
            return (self.len != 0).then(|| "empty tree with nonzero len".into());
        };
        if self.parent[root] != NO_NODE {
            return Some("root has a parent".into());
        }
        let mut seen_entries = 0usize;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let rect = self.node_rect(n);
            if self.is_leaf[n] {
                for k in 0..self.count[n] as usize {
                    seen_entries += 1;
                    let id = self.slots[n * self.cap + k];
                    if !rect.contains_point(&self.entry_config(n, k)) {
                        return Some(format!("leaf rect of node {n} misses entry {id}"));
                    }
                    if self.entry_leaf.get(&id) != Some(&n) {
                        return Some(format!("entry map stale for {id}"));
                    }
                }
            } else {
                if self.count[n] == 0 {
                    return Some(format!("inner node {n} has no children"));
                }
                for &k in self.kids_of(n) {
                    let k = k as usize;
                    if self.parent[k] != n as u32 {
                        return Some(format!("parent link broken at {k}"));
                    }
                    if !rect.contains_rect(&self.node_rect(k)) {
                        return Some(format!("MBR of {n} misses child {k}"));
                    }
                    stack.push(k);
                }
            }
        }
        if seen_entries != self.len {
            return Some(format!(
                "len {} but {seen_entries} reachable entries",
                self.len
            ));
        }
        for n in 0..self.top_len {
            if self.node_depth(n).is_none_or(|d| d >= TOP_LEVELS) {
                return Some(format!("pinned-block node {n} below level {TOP_LEVELS}"));
            }
        }
        None
    }
}

/// Guttman quadratic split: partitions `rects` indices into two groups.
///
/// Seeds are the pair wasting the most dead area if grouped; remaining
/// rects go to the group whose MBR grows least.
// Index pairs (i, j) over the same slice are the algorithm's vocabulary;
// the seed search needs both indices, not the elements alone.
#[allow(clippy::needless_range_loop)]
fn quadratic_split(rects: &[Rect], ops: &mut OpCount) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Pick seeds.
    let (mut sa, mut sb) = (0, 1);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let waste =
                rects[i].union(&rects[j]).measure() - rects[i].measure() - rects[j].measure();
            ops.add += 2;
            ops.cmp += 1;
            if waste > worst {
                worst = waste;
                sa = i;
                sb = j;
            }
        }
    }
    let mut ga = vec![sa];
    let mut gb = vec![sb];
    let mut ra = rects[sa];
    let mut rb = rects[sb];
    for i in 0..n {
        if i == sa || i == sb {
            continue;
        }
        let ea = ra.union(&rects[i]).measure() - ra.measure();
        let eb = rb.union(&rects[i]).measure() - rb.measure();
        ops.add += 2;
        ops.cmp += 1;
        if ea < eb || (ea == eb && ga.len() <= gb.len()) {
            ga.push(i);
            ra = ra.union(&rects[i]);
        } else {
            gb.push(i);
            rb = rb.union(&rects[i]);
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2(x: f64, y: f64) -> Config {
        Config::new(&[x, y])
    }

    fn build_grid(n: usize, insertion: &str) -> (SiMbrTree, Vec<Config>) {
        let mut tree = SiMbrTree::new(2, 4);
        let mut ops = OpCount::default();
        let mut pts = Vec::new();
        for i in 0..n {
            let p = c2((i % 10) as f64, (i / 10) as f64);
            pts.push(p);
            match insertion {
                "conv" => tree.insert_conventional(i as u64, p, &mut ops),
                "lci" => {
                    if i == 0 {
                        tree.insert_conventional(0, p, &mut ops);
                    } else {
                        // steer-like: insert near the previous point
                        tree.insert_near(i as u64, p, i as u64 - 1, &mut ops);
                    }
                }
                _ => unreachable!(),
            }
        }
        (tree, pts)
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = SiMbrTree::new(3, 4);
        let mut ops = OpCount::default();
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(&Config::zeros(3), &mut ops), None);
        assert!(tree.near(&Config::zeros(3), 1.0, &mut ops).is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.check_invariants().is_none());
    }

    #[test]
    fn nearest_matches_linear_scan_conventional() {
        let (tree, _) = build_grid(60, "conv");
        let mut ops = OpCount::default();
        for q in [c2(3.3, 2.7), c2(-1.0, -1.0), c2(9.5, 5.5), c2(100.0, 100.0)] {
            let a = tree.nearest(&q, &mut ops).unwrap();
            let b = tree.nearest_linear(&q, &mut ops).unwrap();
            assert_eq!(a.0, b.0, "query {q:?}");
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_matches_linear_scan_lci() {
        let (tree, _) = build_grid(60, "lci");
        assert!(
            tree.check_invariants().is_none(),
            "{:?}",
            tree.check_invariants()
        );
        let mut ops = OpCount::default();
        for q in [c2(3.3, 2.7), c2(0.0, 5.9), c2(9.5, 5.5)] {
            let a = tree.nearest(&q, &mut ops).unwrap();
            let b = tree.nearest_linear(&q, &mut ops).unwrap();
            assert!((a.1 - b.1).abs() < 1e-12, "query {q:?}");
        }
    }

    #[test]
    fn pruning_saves_distance_calcs() {
        let (tree, _) = build_grid(100, "conv");
        let mut ops = OpCount::default();
        let mut stats = SearchStats::default();
        let _ = tree.nearest_with_stats(&c2(2.2, 2.2), &mut ops, &mut stats);
        assert!(
            stats.distance_calcs < 100,
            "branch-and-bound should not touch all {} leaves: {stats:?}",
            tree.len()
        );
        assert!(stats.subtrees_skipped > 0);
    }

    #[test]
    fn near_returns_exactly_the_in_radius_set() {
        let (tree, pts) = build_grid(80, "conv");
        let mut ops = OpCount::default();
        let q = c2(4.5, 3.5);
        let r = 2.0;
        let mut got: Vec<u64> = tree.near(&q, r, &mut ops).iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn leaf_group_contains_the_anchor() {
        let (tree, _) = build_grid(50, "conv");
        let mut ops = OpCount::default();
        for id in [0u64, 13, 49] {
            let group = tree.leaf_group(id, &mut ops);
            assert!(group.iter().any(|e| e.id == id));
            assert!(group.len() <= 4);
        }
    }

    #[test]
    fn lci_insertion_is_cheaper_than_conventional() {
        let mut conv_ops = OpCount::default();
        let mut lci_ops = OpCount::default();
        let mut conv = SiMbrTree::new(2, 4);
        let mut lci = SiMbrTree::new(2, 4);
        conv.insert_conventional(0, c2(0.0, 0.0), &mut conv_ops);
        lci.insert_conventional(0, c2(0.0, 0.0), &mut lci_ops);
        let warmup = (conv_ops, lci_ops);
        for i in 1..200u64 {
            let p = c2((i % 14) as f64 + 0.1, (i / 14) as f64);
            conv.insert_conventional(i, p, &mut conv_ops);
            lci.insert_near(i, p, i - 1, &mut lci_ops);
        }
        let conv_cost = (conv_ops - warmup.0).mac_equiv();
        let lci_cost = (lci_ops - warmup.1).mac_equiv();
        assert!(
            lci_cost < conv_cost,
            "LCI should be cheaper: {lci_cost} vs {conv_cost}"
        );
    }

    #[test]
    fn invariants_hold_after_many_splits() {
        let (tree, _) = build_grid(300, "conv");
        assert!(
            tree.check_invariants().is_none(),
            "{:?}",
            tree.check_invariants()
        );
        assert!(tree.height() >= 3);
        let (tree, _) = build_grid(300, "lci");
        assert!(
            tree.check_invariants().is_none(),
            "{:?}",
            tree.check_invariants()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_id_rejected() {
        let mut tree = SiMbrTree::new(2, 4);
        let mut ops = OpCount::default();
        tree.insert_conventional(7, c2(0.0, 0.0), &mut ops);
        tree.insert_conventional(7, c2(1.0, 1.0), &mut ops);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn insert_near_missing_anchor_rejected() {
        let mut tree = SiMbrTree::new(2, 4);
        let mut ops = OpCount::default();
        tree.insert_conventional(0, c2(0.0, 0.0), &mut ops);
        tree.insert_near(1, c2(0.1, 0.0), 42, &mut ops);
    }

    #[test]
    fn iter_yields_all_entries() {
        let (tree, _) = build_grid(37, "conv");
        let mut ids: Vec<u64> = tree.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..37u64).collect::<Vec<_>>());
    }

    #[test]
    fn stats_depth_buckets_cover_height() {
        let (tree, _) = build_grid(150, "conv");
        let mut ops = OpCount::default();
        let mut stats = SearchStats::default();
        let _ = tree.nearest_with_stats(&c2(5.0, 5.0), &mut ops, &mut stats);
        assert_eq!(stats.visits_by_depth[0], 1, "root visited once");
        assert!(stats.visits_by_depth.len() <= tree.height());
    }

    #[test]
    fn memory_words_grow_with_entries() {
        let (t1, _) = build_grid(10, "conv");
        let (t2, _) = build_grid(100, "conv");
        assert!(t2.memory_words() > t1.memory_words());
    }

    #[test]
    fn high_dim_nearest_works() {
        let mut tree = SiMbrTree::new(7, 6);
        let mut ops = OpCount::default();
        for i in 0..50u64 {
            let coords: Vec<f64> = (0..7).map(|d| ((i * 7 + d) % 13) as f64).collect();
            tree.insert_conventional(i, Config::new(&coords), &mut ops);
        }
        let q = Config::new(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0]);
        let fast = tree.nearest(&q, &mut ops).unwrap();
        let slow = tree.nearest_linear(&q, &mut ops).unwrap();
        assert!((fast.1 - slow.1).abs() < 1e-12);
    }

    #[test]
    fn search_stats_absorb_accumulates() {
        let mut a = SearchStats::default();
        a.bump_depth(0);
        a.bump_depth(1);
        let mut b = SearchStats::default();
        b.bump_depth(1);
        b.distance_calcs = 5;
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 3);
        assert_eq!(a.visits_by_depth, vec![1, 2]);
        assert_eq!(a.distance_calcs, 5);
    }

    #[test]
    fn best_first_never_visits_more_nodes_than_reference_dfs() {
        let (tree, _) = build_grid(300, "conv");
        let mut ops = OpCount::default();
        for q in [c2(2.3, 7.7), c2(-3.0, 14.0), c2(9.9, 0.1), c2(5.5, 29.5)] {
            let mut bf = SearchStats::default();
            let mut dfs = SearchStats::default();
            let a = tree.nearest_with_stats(&q, &mut ops, &mut bf);
            let b = tree.nearest_reference_dfs(&q, &mut ops, &mut dfs);
            assert_eq!(a.map(|x| x.1.to_bits()), b.map(|x| x.1.to_bits()));
            assert!(
                bf.nodes_visited <= dfs.nodes_visited,
                "best-first is visit-optimal: {} vs {}",
                bf.nodes_visited,
                dfs.nodes_visited
            );
        }
    }

    #[test]
    fn hint_seed_preserves_exactness_for_every_hint() {
        let (tree, _) = build_grid(120, "conv");
        let mut ops = OpCount::default();
        let q = c2(4.3, 6.8);
        let cold = tree.nearest(&q, &mut ops).unwrap();
        for hint in 0..120u64 {
            let mut stats = SearchStats::default();
            let warm = tree
                .nearest_with_hint(&q, Some(hint), &mut ops, &mut stats)
                .unwrap();
            assert_eq!(warm.1.to_bits(), cold.1.to_bits(), "hint {hint}");
        }
        // An unknown hint is a seed miss, never an error.
        let mut stats = SearchStats::default();
        let missed = tree
            .nearest_with_hint(&q, Some(9999), &mut ops, &mut stats)
            .unwrap();
        assert_eq!(missed.1.to_bits(), cold.1.to_bits());
    }

    #[test]
    fn warm_hint_shrinks_the_search() {
        let (tree, _) = build_grid(300, "conv");
        let q = c2(6.4, 22.6);
        let mut ops = OpCount::default();
        let mut cold = SearchStats::default();
        let (winner, _) = tree.nearest_with_stats(&q, &mut ops, &mut cold).unwrap();
        let mut warm = SearchStats::default();
        let _ = tree.nearest_with_hint(&q, Some(winner), &mut ops, &mut warm);
        assert!(
            warm.nodes_visited + warm.subtrees_skipped
                <= cold.nodes_visited + cold.subtrees_skipped,
            "seeding with the true winner must not grow the frontier"
        );
        let cs = tree.cache_stats();
        assert!(cs.seed_hits >= 1);
    }

    #[test]
    fn repack_pins_top_levels_in_the_arena_prefix() {
        let (tree, _) = build_grid(300, "conv");
        assert!(tree.height() >= 3);
        let top = tree.top_block_len();
        assert!(top > 0 && top <= tree.node_count());
        for n in 0..top {
            let d = tree.node_depth(n).expect("pinned node exists");
            assert!(d < TOP_LEVELS, "node {n} at depth {d} inside pinned block");
        }
        // The root is the first arena slot after a repack.
        assert_eq!(tree.node_depth(0), Some(0));
    }

    #[test]
    fn cache_stats_account_every_pop() {
        let (tree, _) = build_grid(200, "conv");
        let mut ops = OpCount::default();
        let mut stats = SearchStats::default();
        for q in [c2(1.0, 1.0), c2(8.0, 15.0), c2(4.4, 9.6)] {
            let _ = tree.nearest_with_stats(&q, &mut ops, &mut stats);
        }
        let cs = tree.cache_stats();
        assert_eq!(cs.top_hits + cs.top_misses, stats.nodes_visited);
        assert!(cs.top_hits >= 3, "root pops alone hit the pinned block");
    }

    #[test]
    fn traced_search_equals_plain_search() {
        let (tree, _) = build_grid(250, "lci");
        let mut ops = OpCount::default();
        for q in [c2(3.1, 11.9), c2(7.7, 0.3), c2(0.0, 24.0)] {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let plain = tree.nearest_with_stats(&q, &mut ops, &mut s1);
            let traced = tree.nearest_traced(&q, &mut ops, &mut s2);
            assert_eq!(plain, traced);
            assert_eq!(s1.nodes_visited, s2.nodes_visited);
            assert_eq!(s2.access_trace.len() as u64, s2.nodes_visited);
        }
    }
}
