//! SI-MBR-Tree: the steering-informed minimal-bounding-rectangle tree.
//!
//! This is MOPED's data structure for neighbor search over the RRT\*
//! exploration tree (§III-B/§III-C). Leaf entries are exploration-tree
//! configurations; every non-leaf node stores the minimum bounding
//! rectangle (MBR) of its descendants. Three capabilities distinguish it
//! from a stock R-tree:
//!
//! 1. **MINDIST branch-and-bound nearest search** — children are visited
//!    in ascending MINDIST order and a subtree is skipped the moment its
//!    MINDIST exceeds the best distance found so far, since MINDIST lower
//!    bounds the distance to *every* leaf in the subtree.
//! 2. **Steering-informed approximated neighborhoods (SIAS)** — because
//!    `x_new` is steered a short step from `x_nearest`, the leaf group
//!    (siblings) of `x_nearest` approximates the `near()` set of `x_new`,
//!    eliminating the second neighbor search of each RRT\* round.
//! 3. **Low-cost O(1) insertion (LCI)** — `x_new` is inserted directly as
//!    a sibling of `x_nearest`, skipping the conventional root-to-leaf
//!    min-area-enlargement descent.
//!
//! Both the conventional insertion (for the V2/V3 ablations) and LCI (V4)
//! are implemented; every kernel charges an [`OpCount`] ledger.
//!
//! # Example
//!
//! ```
//! use moped_geometry::{Config, OpCount};
//! use moped_simbr::SiMbrTree;
//!
//! let mut tree = SiMbrTree::new(2, 4);
//! let mut ops = OpCount::default();
//! for (i, xy) in [[0.0, 0.0], [5.0, 5.0], [1.0, 0.5]].iter().enumerate() {
//!     tree.insert_conventional(i as u64, Config::new(xy), &mut ops);
//! }
//! let (id, d) = tree.nearest(&Config::new(&[0.9, 0.4]), &mut ops).unwrap();
//! assert_eq!(id, 2);
//! assert!(d < 0.2);
//! ```

#![deny(missing_docs)]

use std::collections::BTreeMap;

use moped_geometry::{Config, OpCount, Rect};

/// Per-search traversal statistics, consumed by the hardware cache model
/// (top-of-tree visits become Top NS Cache hits) and the evaluation
/// figures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes whose children were examined.
    pub nodes_visited: u64,
    /// Subtrees skipped by the MINDIST bound.
    pub subtrees_skipped: u64,
    /// Leaf-entry exact distance computations.
    pub distance_calcs: u64,
    /// Node visits bucketed by depth (index 0 = root).
    pub visits_by_depth: Vec<u64>,
    /// Ordered node-id access trace of the search (filled only by
    /// [`SiMbrTree::nearest_traced`]; the hardware cache simulator
    /// replays it).
    pub access_trace: Vec<usize>,
}

impl SearchStats {
    fn bump_depth(&mut self, depth: usize) {
        if self.visits_by_depth.len() <= depth {
            self.visits_by_depth.resize(depth + 1, 0);
        }
        self.visits_by_depth[depth] += 1;
        self.nodes_visited += 1;
    }

    /// Merges another search's statistics into this one (traces append).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.subtrees_skipped += other.subtrees_skipped;
        self.distance_calcs += other.distance_calcs;
        for (i, v) in other.visits_by_depth.iter().enumerate() {
            if self.visits_by_depth.len() <= i {
                self.visits_by_depth.resize(i + 1, 0);
            }
            self.visits_by_depth[i] += v;
        }
        self.access_trace.extend_from_slice(&other.access_trace);
    }
}

/// A leaf entry: one exploration-tree node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// Caller-assigned identifier (the EXP-tree node id).
    pub id: u64,
    /// The configuration this entry indexes.
    pub point: Config,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Inner(Vec<usize>),
    Leaf(Vec<Entry>),
}

#[derive(Clone, Debug)]
struct Node {
    parent: Option<usize>,
    rect: Rect,
    kind: NodeKind,
}

/// The steering-informed MBR tree. See the crate-level docs.
#[derive(Clone, Debug)]
pub struct SiMbrTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    // BTreeMap, not HashMap: this crate's results must be bit-reproducible
    // and hash iteration order is not (lint rule `hash-collections`).
    entry_leaf: BTreeMap<u64, usize>,
    dim: usize,
    max_entries: usize,
    len: usize,
}

impl SiMbrTree {
    /// Creates an empty tree for `dim`-dimensional configurations with at
    /// most `max_entries` entries (or children) per node.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 2` or `dim` is outside
    /// `1..=moped_geometry::MAX_DOF`.
    pub fn new(dim: usize, max_entries: usize) -> Self {
        assert!(
            (2..=32).contains(&max_entries),
            "node capacity must be in 2..=32 (hardware node records are small)"
        );
        assert!(
            (1..=moped_geometry::MAX_DOF).contains(&dim),
            "unsupported dimension {dim}"
        );
        SiMbrTree {
            nodes: Vec::new(),
            root: None,
            entry_leaf: BTreeMap::new(),
            dim,
            max_entries,
            len: 0,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configuration-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height (0 when empty, 1 when the root is a leaf).
    pub fn height(&self) -> usize {
        let Some(mut n) = self.root else { return 0 };
        let mut h = 1;
        while let NodeKind::Inner(kids) = &self.nodes[n].kind {
            n = kids[0];
            h += 1;
        }
        h
    }

    /// Total allocated node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// On-chip footprint in 16-bit words: each node MBR is `2d` words plus
    /// one pointer word per child/entry; each entry point is `d` words.
    pub fn memory_words(&self) -> u64 {
        let mut words = 0u64;
        for node in &self.nodes {
            words += 2 * self.dim as u64;
            words += match &node.kind {
                NodeKind::Inner(k) => k.len() as u64,
                NodeKind::Leaf(l) => l.len() as u64 * (1 + self.dim as u64),
            };
        }
        words
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Conventional R-tree insertion: descends from the root, picking at
    /// each level the child whose MBR needs the *minimum area enlargement*
    /// to absorb `point` (ties broken by smaller area). This is what the
    /// V2/V3 ablations pay for every sample (Fig 9, left).
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the tree dimension or `id` is
    /// already present.
    pub fn insert_conventional(&mut self, id: u64, point: Config, ops: &mut OpCount) {
        self.check_insert(id, &point);
        let Some(root) = self.root else {
            self.create_root(id, point);
            return;
        };
        let mut node = root;
        loop {
            match &self.nodes[node].kind {
                NodeKind::Leaf(_) => break,
                NodeKind::Inner(kids) => {
                    // Min-area-enlargement choice, the costly part the
                    // paper's LCI removes.
                    let mut best = kids[0];
                    let mut best_enl = f64::INFINITY;
                    let mut best_area = f64::INFINITY;
                    for &k in kids {
                        let enl = self.nodes[k].rect.enlargement_counted(&point, ops);
                        let area = self.nodes[k].rect.measure();
                        ops.cmp += 1;
                        if enl < best_enl || (enl == best_enl && area < best_area) {
                            best = k;
                            best_enl = enl;
                            best_area = area;
                        }
                    }
                    // Reading each child MBR costs 2d words.
                    ops.mem_words += kids.len() as u64 * 2 * self.dim as u64;
                    node = best;
                }
            }
        }
        self.push_entry(node, Entry { id, point }, ops);
    }

    /// Steering-informed low-cost insertion (LCI, §III-C): places `point`
    /// directly as a sibling of the existing entry `near_id` — the
    /// `x_nearest` that `point` was steered from — with no descent and no
    /// enlargement arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `near_id` is not in the tree, `id` is already present,
    /// or dimensions mismatch.
    pub fn insert_near(&mut self, id: u64, point: Config, near_id: u64, ops: &mut OpCount) {
        self.check_insert(id, &point);
        let leaf = *self
            .entry_leaf
            .get(&near_id)
            .unwrap_or_else(|| panic!("near_id {near_id} not present in SI-MBR-Tree"));
        self.push_entry(leaf, Entry { id, point }, ops);
    }

    fn check_insert(&self, id: u64, point: &Config) {
        assert_eq!(point.dim(), self.dim, "dimension mismatch");
        assert!(
            !self.entry_leaf.contains_key(&id),
            "duplicate SI-MBR-Tree entry id {id}"
        );
    }

    fn create_root(&mut self, id: u64, point: Config) {
        self.nodes.push(Node {
            parent: None,
            rect: Rect::from_point(&point),
            kind: NodeKind::Leaf(vec![Entry { id, point }]),
        });
        self.root = Some(self.nodes.len() - 1);
        self.entry_leaf.insert(id, self.nodes.len() - 1);
        self.len = 1;
    }

    fn push_entry(&mut self, leaf: usize, entry: Entry, ops: &mut OpCount) {
        debug_assert!(matches!(self.nodes[leaf].kind, NodeKind::Leaf(_)));
        let id = entry.id;
        let point = entry.point;
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf].kind {
            entries.push(entry);
        }
        self.entry_leaf.insert(id, leaf);
        self.len += 1;
        // Extend ancestor MBRs; per level this is 2d min/max compares and
        // a 2d-word write-back.
        let mut n = Some(leaf);
        while let Some(ni) = n {
            self.nodes[ni].rect = self.nodes[ni].rect.union_point(&point);
            ops.cmp += 2 * self.dim as u64;
            ops.mem_words += 2 * self.dim as u64;
            n = self.nodes[ni].parent;
        }
        self.maybe_split(leaf, ops);
    }

    // ------------------------------------------------------------------
    // Splitting (Guttman quadratic split)
    // ------------------------------------------------------------------

    fn maybe_split(&mut self, mut node: usize, ops: &mut OpCount) {
        loop {
            let over = match &self.nodes[node].kind {
                NodeKind::Leaf(e) => e.len() > self.max_entries,
                NodeKind::Inner(k) => k.len() > self.max_entries,
            };
            if !over {
                return;
            }
            let parent = self.split_node(node, ops);
            node = parent;
        }
    }

    /// Splits `node` in two; returns the parent that gained a child (and
    /// may itself now be overfull).
    fn split_node(&mut self, node: usize, ops: &mut OpCount) -> usize {
        let new_node = match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                let rects: Vec<Rect> = entries.iter().map(|e| Rect::from_point(&e.point)).collect();
                let (ga, gb) = quadratic_split(&rects, ops);
                let entries = entries.clone();
                let keep: Vec<Entry> = ga.iter().map(|&i| entries[i]).collect();
                let moved: Vec<Entry> = gb.iter().map(|&i| entries[i]).collect();
                let keep_rect = points_rect(&keep);
                let moved_rect = points_rect(&moved);
                self.nodes[node].kind = NodeKind::Leaf(keep);
                self.nodes[node].rect = keep_rect;
                self.nodes.push(Node {
                    parent: self.nodes[node].parent,
                    rect: moved_rect,
                    kind: NodeKind::Leaf(moved.clone()),
                });
                let new_id = self.nodes.len() - 1;
                for e in &moved {
                    self.entry_leaf.insert(e.id, new_id);
                }
                new_id
            }
            NodeKind::Inner(kids) => {
                let rects: Vec<Rect> = kids.iter().map(|&k| self.nodes[k].rect).collect();
                let (ga, gb) = quadratic_split(&rects, ops);
                let kids = kids.clone();
                let keep: Vec<usize> = ga.iter().map(|&i| kids[i]).collect();
                let moved: Vec<usize> = gb.iter().map(|&i| kids[i]).collect();
                let keep_rect = self.kids_rect(&keep);
                let moved_rect = self.kids_rect(&moved);
                self.nodes[node].kind = NodeKind::Inner(keep);
                self.nodes[node].rect = keep_rect;
                self.nodes.push(Node {
                    parent: self.nodes[node].parent,
                    rect: moved_rect,
                    kind: NodeKind::Inner(moved.clone()),
                });
                let new_id = self.nodes.len() - 1;
                for k in moved {
                    self.nodes[k].parent = Some(new_id);
                }
                new_id
            }
        };

        match self.nodes[node].parent {
            Some(p) => {
                if let NodeKind::Inner(kids) = &mut self.nodes[p].kind {
                    kids.push(new_node);
                } else {
                    unreachable!("parent of a split node must be inner");
                }
                p
            }
            None => {
                // Grow a new root.
                let rect = self.nodes[node].rect.union(&self.nodes[new_node].rect);
                self.nodes.push(Node {
                    parent: None,
                    rect,
                    kind: NodeKind::Inner(vec![node, new_node]),
                });
                let root = self.nodes.len() - 1;
                self.nodes[node].parent = Some(root);
                self.nodes[new_node].parent = Some(root);
                self.root = Some(root);
                root
            }
        }
    }

    fn kids_rect(&self, kids: &[usize]) -> Rect {
        kids.iter()
            .map(|&k| self.nodes[k].rect)
            .reduce(|a, b| a.union(&b))
            .expect("split groups are non-empty")
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Exact nearest neighbor of `query`: returns `(entry id, distance)`.
    ///
    /// Children are explored in ascending-MINDIST order; a child (and its
    /// whole subtree) is skipped when its MINDIST can no longer beat the
    /// current best — the §III-B pruning rule. Returns `None` on an empty
    /// tree. See [`SiMbrTree::nearest_with_stats`] for traversal detail.
    pub fn nearest(&self, query: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut stats = SearchStats::default();
        self.nearest_with_stats(query, ops, &mut stats)
    }

    /// Exact nearest neighbor with traversal statistics.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim()` differs from the tree dimension.
    pub fn nearest_with_stats(
        &self,
        query: &Config,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        let root = self.root?;
        let _span = moped_obs::span(moped_obs::Stage::MbrDescent);
        let mut best: Option<u64> = None;
        let mut best_d2 = f64::INFINITY;
        self.nearest_rec(root, 0, query, &mut best, &mut best_d2, ops, stats);
        best.map(|id| (id, best_d2.sqrt()))
    }

    /// Exact nearest neighbor that additionally records the ordered node
    /// access trace into `stats.access_trace` — the input the hardware
    /// cache simulator replays against the Top NS Cache model.
    pub fn nearest_traced(
        &self,
        query: &Config,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) -> Option<(u64, f64)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        let root = self.root?;
        let mut best: Option<u64> = None;
        let mut best_d2 = f64::INFINITY;
        self.nearest_rec_traced(root, 0, query, &mut best, &mut best_d2, ops, stats);
        best.map(|id| (id, best_d2.sqrt()))
    }

    // The recursion threads search state (best id/distance, op and trace
    // ledgers) explicitly instead of bundling a context struct per call.
    #[allow(clippy::too_many_arguments)]
    fn nearest_rec_traced(
        &self,
        node: usize,
        depth: usize,
        query: &Config,
        best: &mut Option<u64>,
        best_d2: &mut f64,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) {
        stats.access_trace.push(node);
        stats.bump_depth(depth);
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    ops.mem_words += self.dim as u64;
                    let d2 = e.point.distance_sq_counted(query, ops);
                    stats.distance_calcs += 1;
                    ops.cmp += 1;
                    if d2 < *best_d2 {
                        *best_d2 = d2;
                        *best = Some(e.id);
                    }
                }
            }
            NodeKind::Inner(kids) => {
                let mut order: Vec<(f64, usize)> = kids
                    .iter()
                    .map(|&k| {
                        ops.mem_words += 2 * self.dim as u64;
                        (self.nodes[k].rect.mindist_sq(query, ops), k)
                    })
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite MINDIST"));
                for (i, (md, k)) in order.iter().enumerate() {
                    ops.cmp += 1;
                    if *md >= *best_d2 {
                        stats.subtrees_skipped += (order.len() - i) as u64;
                        break;
                    }
                    self.nearest_rec_traced(*k, depth + 1, query, best, best_d2, ops, stats);
                }
            }
        }
    }

    /// The depth (root = 0) of node `id` in the current structure, used
    /// by the cache model to classify trace entries. Returns `None` for
    /// an unknown node id.
    pub fn node_depth(&self, id: usize) -> Option<usize> {
        if id >= self.nodes.len() {
            return None;
        }
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            cur = p;
            d += 1;
        }
        Some(d)
    }

    // Same explicit state threading as nearest_rec_traced, minus tracing.
    #[allow(clippy::too_many_arguments)]
    fn nearest_rec(
        &self,
        node: usize,
        depth: usize,
        query: &Config,
        best: &mut Option<u64>,
        best_d2: &mut f64,
        ops: &mut OpCount,
        stats: &mut SearchStats,
    ) {
        stats.bump_depth(depth);
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    ops.mem_words += self.dim as u64;
                    let d2 = e.point.distance_sq_counted(query, ops);
                    stats.distance_calcs += 1;
                    ops.cmp += 1;
                    if d2 < *best_d2 {
                        *best_d2 = d2;
                        *best = Some(e.id);
                    }
                }
            }
            NodeKind::Inner(kids) => {
                // MINDIST each child, sort ascending, explore until the
                // bound disqualifies the remainder. The order buffer lives
                // on the stack (node fanout is small by construction) so
                // the search hot loop never allocates.
                const MAX_FANOUT: usize = 64;
                debug_assert!(kids.len() <= MAX_FANOUT, "node fanout exceeds stack buffer");
                let mut order = [(0.0f64, 0usize); MAX_FANOUT];
                let n = kids.len().min(MAX_FANOUT);
                for (slot, &k) in order.iter_mut().zip(kids.iter()) {
                    ops.mem_words += 2 * self.dim as u64;
                    *slot = (self.nodes[k].rect.mindist_sq(query, ops), k);
                }
                order[..n].sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite MINDIST"));
                ops.cmp += (n.saturating_sub(1)) as u64;
                for (i, (md, k)) in order[..n].iter().enumerate() {
                    ops.cmp += 1;
                    if *md >= *best_d2 {
                        stats.subtrees_skipped += (n - i) as u64;
                        break;
                    }
                    self.nearest_rec(*k, depth + 1, query, best, best_d2, ops, stats);
                }
            }
        }
    }

    /// Exact range search: all entries within `radius` of `query`,
    /// unsorted. Subtrees are pruned by `MINDIST > radius`. This is the
    /// *second* neighbor search of a stock RRT\* round, which SIAS
    /// replaces.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `radius` is negative.
    pub fn near(&self, query: &Config, radius: f64, ops: &mut OpCount) -> Vec<Entry> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let r2 = radius * radius;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            ops.mem_words += 2 * self.dim as u64;
            if self.nodes[n].rect.mindist_sq(query, ops) > r2 {
                continue;
            }
            match &self.nodes[n].kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        ops.mem_words += self.dim as u64;
                        let d2 = e.point.distance_sq_counted(query, ops);
                        ops.cmp += 1;
                        if d2 <= r2 {
                            out.push(*e);
                        }
                    }
                }
                NodeKind::Inner(kids) => stack.extend_from_slice(kids),
            }
        }
        out
    }

    /// Steering-informed approximated neighborhood (SIAS, §III-B): the
    /// leaf group of `entry_id` — every entry sharing its parent node.
    /// The building procedure groups geometrically nearby configurations
    /// under the same parent, and steering keeps `x_new` close to
    /// `x_nearest`, so this set approximates `near(x_new, ·)` **at zero
    /// search cost** (only the leaf read is charged).
    ///
    /// # Panics
    ///
    /// Panics if `entry_id` is not present.
    pub fn leaf_group(&self, entry_id: u64, ops: &mut OpCount) -> Vec<Entry> {
        let leaf = *self
            .entry_leaf
            .get(&entry_id)
            .unwrap_or_else(|| panic!("entry {entry_id} not present in SI-MBR-Tree"));
        match &self.nodes[leaf].kind {
            NodeKind::Leaf(entries) => {
                ops.mem_words += entries.len() as u64 * (1 + self.dim as u64);
                entries.clone()
            }
            NodeKind::Inner(_) => unreachable!("entry_leaf always maps to leaves"),
        }
    }

    /// Linear-scan nearest neighbor over all entries — the reference the
    /// property tests compare against, and the "no index" baseline of the
    /// evaluation.
    pub fn nearest_linear(&self, query: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut best = None;
        let mut best_d2 = f64::INFINITY;
        for node in &self.nodes {
            if let NodeKind::Leaf(entries) = &node.kind {
                for e in entries {
                    let d2 = e.point.distance_sq_counted(query, ops);
                    ops.cmp += 1;
                    if d2 < best_d2 {
                        best_d2 = d2;
                        best = Some(e.id);
                    }
                }
            }
        }
        best.map(|id| (id, best_d2.sqrt()))
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.nodes.iter().flat_map(|n| match &n.kind {
            NodeKind::Leaf(e) => e.as_slice(),
            NodeKind::Inner(_) => &[],
        })
    }

    /// Verifies structural invariants (MBR containment, parent links,
    /// entry-map consistency); used by tests and debug assertions.
    ///
    /// Returns a human-readable violation description, or `None` if sound.
    pub fn check_invariants(&self) -> Option<String> {
        let Some(root) = self.root else {
            return (self.len != 0).then(|| "empty tree with nonzero len".into());
        };
        if self.nodes[root].parent.is_some() {
            return Some("root has a parent".into());
        }
        let mut seen_entries = 0usize;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        seen_entries += 1;
                        if !node.rect.contains_point(&e.point) {
                            return Some(format!("leaf rect of node {n} misses entry {}", e.id));
                        }
                        if self.entry_leaf.get(&e.id) != Some(&n) {
                            return Some(format!("entry map stale for {}", e.id));
                        }
                    }
                }
                NodeKind::Inner(kids) => {
                    if kids.is_empty() {
                        return Some(format!("inner node {n} has no children"));
                    }
                    for &k in kids {
                        if self.nodes[k].parent != Some(n) {
                            return Some(format!("parent link broken at {k}"));
                        }
                        if !node.rect.contains_rect(&self.nodes[k].rect) {
                            return Some(format!("MBR of {n} misses child {k}"));
                        }
                        stack.push(k);
                    }
                }
            }
        }
        if seen_entries != self.len {
            return Some(format!(
                "len {} but {seen_entries} reachable entries",
                self.len
            ));
        }
        None
    }
}

fn points_rect(entries: &[Entry]) -> Rect {
    entries
        .iter()
        .map(|e| Rect::from_point(&e.point))
        .reduce(|a, b| a.union(&b))
        .expect("split groups are non-empty")
}

/// Guttman quadratic split: partitions `rects` indices into two groups.
///
/// Seeds are the pair wasting the most dead area if grouped; remaining
/// rects go to the group whose MBR grows least.
// Index pairs (i, j) over the same slice are the algorithm's vocabulary;
// the seed search needs both indices, not the elements alone.
#[allow(clippy::needless_range_loop)]
fn quadratic_split(rects: &[Rect], ops: &mut OpCount) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Pick seeds.
    let (mut sa, mut sb) = (0, 1);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let waste =
                rects[i].union(&rects[j]).measure() - rects[i].measure() - rects[j].measure();
            ops.add += 2;
            ops.cmp += 1;
            if waste > worst {
                worst = waste;
                sa = i;
                sb = j;
            }
        }
    }
    let mut ga = vec![sa];
    let mut gb = vec![sb];
    let mut ra = rects[sa];
    let mut rb = rects[sb];
    for i in 0..n {
        if i == sa || i == sb {
            continue;
        }
        let ea = ra.union(&rects[i]).measure() - ra.measure();
        let eb = rb.union(&rects[i]).measure() - rb.measure();
        ops.add += 2;
        ops.cmp += 1;
        if ea < eb || (ea == eb && ga.len() <= gb.len()) {
            ga.push(i);
            ra = ra.union(&rects[i]);
        } else {
            gb.push(i);
            rb = rb.union(&rects[i]);
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2(x: f64, y: f64) -> Config {
        Config::new(&[x, y])
    }

    fn build_grid(n: usize, insertion: &str) -> (SiMbrTree, Vec<Config>) {
        let mut tree = SiMbrTree::new(2, 4);
        let mut ops = OpCount::default();
        let mut pts = Vec::new();
        for i in 0..n {
            let p = c2((i % 10) as f64, (i / 10) as f64);
            pts.push(p);
            match insertion {
                "conv" => tree.insert_conventional(i as u64, p, &mut ops),
                "lci" => {
                    if i == 0 {
                        tree.insert_conventional(0, p, &mut ops);
                    } else {
                        // steer-like: insert near the previous point
                        tree.insert_near(i as u64, p, i as u64 - 1, &mut ops);
                    }
                }
                _ => unreachable!(),
            }
        }
        (tree, pts)
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = SiMbrTree::new(3, 4);
        let mut ops = OpCount::default();
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(&Config::zeros(3), &mut ops), None);
        assert!(tree.near(&Config::zeros(3), 1.0, &mut ops).is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.check_invariants().is_none());
    }

    #[test]
    fn nearest_matches_linear_scan_conventional() {
        let (tree, _) = build_grid(60, "conv");
        let mut ops = OpCount::default();
        for q in [c2(3.3, 2.7), c2(-1.0, -1.0), c2(9.5, 5.5), c2(100.0, 100.0)] {
            let a = tree.nearest(&q, &mut ops).unwrap();
            let b = tree.nearest_linear(&q, &mut ops).unwrap();
            assert_eq!(a.0, b.0, "query {q:?}");
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_matches_linear_scan_lci() {
        let (tree, _) = build_grid(60, "lci");
        assert!(
            tree.check_invariants().is_none(),
            "{:?}",
            tree.check_invariants()
        );
        let mut ops = OpCount::default();
        for q in [c2(3.3, 2.7), c2(0.0, 5.9), c2(9.5, 5.5)] {
            let a = tree.nearest(&q, &mut ops).unwrap();
            let b = tree.nearest_linear(&q, &mut ops).unwrap();
            assert!((a.1 - b.1).abs() < 1e-12, "query {q:?}");
        }
    }

    #[test]
    fn pruning_saves_distance_calcs() {
        let (tree, _) = build_grid(100, "conv");
        let mut ops = OpCount::default();
        let mut stats = SearchStats::default();
        let _ = tree.nearest_with_stats(&c2(2.2, 2.2), &mut ops, &mut stats);
        assert!(
            stats.distance_calcs < 100,
            "branch-and-bound should not touch all {} leaves: {stats:?}",
            tree.len()
        );
        assert!(stats.subtrees_skipped > 0);
    }

    #[test]
    fn near_returns_exactly_the_in_radius_set() {
        let (tree, pts) = build_grid(80, "conv");
        let mut ops = OpCount::default();
        let q = c2(4.5, 3.5);
        let r = 2.0;
        let mut got: Vec<u64> = tree.near(&q, r, &mut ops).iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn leaf_group_contains_the_anchor() {
        let (tree, _) = build_grid(50, "conv");
        let mut ops = OpCount::default();
        for id in [0u64, 13, 49] {
            let group = tree.leaf_group(id, &mut ops);
            assert!(group.iter().any(|e| e.id == id));
            assert!(group.len() <= 4);
        }
    }

    #[test]
    fn lci_insertion_is_cheaper_than_conventional() {
        let mut conv_ops = OpCount::default();
        let mut lci_ops = OpCount::default();
        let mut conv = SiMbrTree::new(2, 4);
        let mut lci = SiMbrTree::new(2, 4);
        conv.insert_conventional(0, c2(0.0, 0.0), &mut conv_ops);
        lci.insert_conventional(0, c2(0.0, 0.0), &mut lci_ops);
        let warmup = (conv_ops, lci_ops);
        for i in 1..200u64 {
            let p = c2((i % 14) as f64 + 0.1, (i / 14) as f64);
            conv.insert_conventional(i, p, &mut conv_ops);
            lci.insert_near(i, p, i - 1, &mut lci_ops);
        }
        let conv_cost = (conv_ops - warmup.0).mac_equiv();
        let lci_cost = (lci_ops - warmup.1).mac_equiv();
        assert!(
            lci_cost < conv_cost,
            "LCI should be cheaper: {lci_cost} vs {conv_cost}"
        );
    }

    #[test]
    fn invariants_hold_after_many_splits() {
        let (tree, _) = build_grid(300, "conv");
        assert!(
            tree.check_invariants().is_none(),
            "{:?}",
            tree.check_invariants()
        );
        assert!(tree.height() >= 3);
        let (tree, _) = build_grid(300, "lci");
        assert!(
            tree.check_invariants().is_none(),
            "{:?}",
            tree.check_invariants()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_id_rejected() {
        let mut tree = SiMbrTree::new(2, 4);
        let mut ops = OpCount::default();
        tree.insert_conventional(7, c2(0.0, 0.0), &mut ops);
        tree.insert_conventional(7, c2(1.0, 1.0), &mut ops);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn insert_near_missing_anchor_rejected() {
        let mut tree = SiMbrTree::new(2, 4);
        let mut ops = OpCount::default();
        tree.insert_conventional(0, c2(0.0, 0.0), &mut ops);
        tree.insert_near(1, c2(0.1, 0.0), 42, &mut ops);
    }

    #[test]
    fn iter_yields_all_entries() {
        let (tree, _) = build_grid(37, "conv");
        let mut ids: Vec<u64> = tree.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..37u64).collect::<Vec<_>>());
    }

    #[test]
    fn stats_depth_buckets_cover_height() {
        let (tree, _) = build_grid(150, "conv");
        let mut ops = OpCount::default();
        let mut stats = SearchStats::default();
        let _ = tree.nearest_with_stats(&c2(5.0, 5.0), &mut ops, &mut stats);
        assert_eq!(stats.visits_by_depth[0], 1, "root visited once");
        assert!(stats.visits_by_depth.len() <= tree.height());
    }

    #[test]
    fn memory_words_grow_with_entries() {
        let (t1, _) = build_grid(10, "conv");
        let (t2, _) = build_grid(100, "conv");
        assert!(t2.memory_words() > t1.memory_words());
    }

    #[test]
    fn high_dim_nearest_works() {
        let mut tree = SiMbrTree::new(7, 6);
        let mut ops = OpCount::default();
        for i in 0..50u64 {
            let coords: Vec<f64> = (0..7).map(|d| ((i * 7 + d) % 13) as f64).collect();
            tree.insert_conventional(i, Config::new(&coords), &mut ops);
        }
        let q = Config::new(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0]);
        let fast = tree.nearest(&q, &mut ops).unwrap();
        let slow = tree.nearest_linear(&q, &mut ops).unwrap();
        assert!((fast.1 - slow.1).abs() < 1e-12);
    }

    #[test]
    fn search_stats_absorb_accumulates() {
        let mut a = SearchStats::default();
        a.bump_depth(0);
        a.bump_depth(1);
        let mut b = SearchStats::default();
        b.bump_depth(1);
        b.distance_calcs = 5;
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 3);
        assert_eq!(a.visits_by_depth, vec![1, 2]);
        assert_eq!(a.distance_calcs, 5);
    }
}
