//! Property-based tests for the SI-MBR-Tree.
//!
//! Core claim under test: for *any* insertion sequence — conventional
//! min-area-enlargement descent or the O(1) steering-informed insertion —
//! the branch-and-bound `nearest()` is exact, `near()` is the exact
//! in-radius set, and the structural invariants hold.

use moped_geometry::{Config, OpCount};
use moped_simbr::SiMbrTree;
use proptest::prelude::*;

fn arb_points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Config>> {
    prop::collection::vec(prop::collection::vec(-30.0..30.0f64, dim), n)
        .prop_map(|vs| vs.into_iter().map(|v| Config::new(&v)).collect())
}

/// Builds with conventional insertion.
fn build_conv(points: &[Config], cap: usize) -> SiMbrTree {
    let mut tree = SiMbrTree::new(points[0].dim(), cap);
    let mut ops = OpCount::default();
    for (i, p) in points.iter().enumerate() {
        tree.insert_conventional(i as u64, *p, &mut ops);
    }
    tree
}

/// Builds RRT\*-style: each point is inserted near its exact nearest
/// already-inserted point, mimicking steering-informed placement.
fn build_lci(points: &[Config], cap: usize) -> SiMbrTree {
    let mut tree = SiMbrTree::new(points[0].dim(), cap);
    let mut ops = OpCount::default();
    tree.insert_conventional(0, points[0], &mut ops);
    for (i, p) in points.iter().enumerate().skip(1) {
        let (near, _) = tree.nearest(p, &mut ops).expect("tree is non-empty");
        tree.insert_near(i as u64, *p, near, &mut ops);
    }
    tree
}

fn linear_nearest(points: &[Config], q: &Config) -> (u64, f64) {
    let mut best = (0u64, f64::INFINITY);
    for (i, p) in points.iter().enumerate() {
        let d = p.distance(q);
        if d < best.1 {
            best = (i as u64, d);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nearest_exact_conventional(points in arb_points(3, 2..80), qv in prop::collection::vec(-40.0..40.0f64, 3)) {
        let tree = build_conv(&points, 4);
        let q = Config::new(&qv);
        let mut ops = OpCount::default();
        let (_, got) = tree.nearest(&q, &mut ops).unwrap();
        let (_, want) = linear_nearest(&points, &q);
        prop_assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        prop_assert!(tree.check_invariants().is_none());
    }

    #[test]
    fn nearest_exact_lci(points in arb_points(4, 2..60), qv in prop::collection::vec(-40.0..40.0f64, 4)) {
        let tree = build_lci(&points, 4);
        let q = Config::new(&qv);
        let mut ops = OpCount::default();
        let (_, got) = tree.nearest(&q, &mut ops).unwrap();
        let (_, want) = linear_nearest(&points, &q);
        prop_assert!((got - want).abs() < 1e-9);
        prop_assert!(tree.check_invariants().is_none());
    }

    #[test]
    fn near_is_exact_range_set(points in arb_points(2, 2..60), qv in prop::collection::vec(-40.0..40.0f64, 2), r in 0.5..20.0f64) {
        let tree = build_conv(&points, 5);
        let q = Config::new(&qv);
        let mut ops = OpCount::default();
        let mut got: Vec<u64> = tree.near(&q, r, &mut ops).iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn leaf_group_is_spatially_coherent(points in arb_points(3, 10..60)) {
        // Every leaf-group member must be no farther from the anchor than
        // the diameter of the anchor leaf's MBR could allow; weaker but
        // robust check: group members share one parent, so the group is
        // bounded by the tree's per-node capacity.
        let tree = build_lci(&points, 4);
        let mut ops = OpCount::default();
        for id in 0..points.len() as u64 {
            let group = tree.leaf_group(id, &mut ops);
            prop_assert!(group.iter().any(|e| e.id == id));
            prop_assert!(group.len() <= 4);
        }
    }

    #[test]
    fn capacity_variation_preserves_exactness(points in arb_points(5, 2..40), cap in 2usize..9) {
        let tree = build_conv(&points, cap);
        let q = Config::zeros(5);
        let mut ops = OpCount::default();
        let (_, got) = tree.nearest(&q, &mut ops).unwrap();
        let (_, want) = linear_nearest(&points, &q);
        prop_assert!((got - want).abs() < 1e-9);
        prop_assert!(tree.check_invariants().is_none());
    }

    /// Interleaving the two insertion modes arbitrarily must still keep
    /// search exact and the structure sound.
    #[test]
    fn mixed_insertions_stay_sound(points in arb_points(3, 2..50), flags in prop::collection::vec(any::<bool>(), 50)) {
        let mut tree = SiMbrTree::new(3, 4);
        let mut ops = OpCount::default();
        tree.insert_conventional(0, points[0], &mut ops);
        for (i, p) in points.iter().enumerate().skip(1) {
            if flags[i % flags.len()] {
                tree.insert_conventional(i as u64, *p, &mut ops);
            } else {
                let (near, _) = tree.nearest(p, &mut ops).unwrap();
                tree.insert_near(i as u64, *p, near, &mut ops);
            }
        }
        prop_assert!(tree.check_invariants().is_none(), "{:?}", tree.check_invariants());
        let q = Config::zeros(3);
        let (_, got) = tree.nearest(&q, &mut ops).unwrap();
        let (_, want) = linear_nearest(&points, &q);
        prop_assert!((got - want).abs() < 1e-9);
    }
}
