//! SVG visualization of planar planning scenes.
//!
//! Renders 2D-mobile-robot scenarios — obstacles, start/goal poses,
//! exploration trees, and solution paths — as standalone SVG documents,
//! with no dependencies beyond `std`. Useful for eyeballing planner
//! behaviour (narrow-passage threading, rewiring quality) and for
//! generating figures from the examples.
//!
//! # Example
//!
//! ```
//! use moped_env::{Scenario, ScenarioParams};
//! use moped_robot::Robot;
//! use moped_viz::SceneSvg;
//!
//! let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 1);
//! let svg = SceneSvg::new(&s).render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! ```

#![deny(missing_docs)]

use std::fmt::Write as _;

use moped_env::Scenario;
use moped_geometry::{Config, Obb};
use moped_robot::WORKSPACE_EXTENT;

/// Builder for an SVG rendering of a planar scenario.
#[derive(Clone, Debug)]
pub struct SceneSvg<'a> {
    scenario: &'a Scenario,
    paths: Vec<(Vec<Config>, &'static str)>,
    tree_edges: Vec<(Config, Config)>,
    scale: f64,
}

impl<'a> SceneSvg<'a> {
    /// Starts a rendering of `scenario` (obstacles + start/goal only).
    ///
    /// # Panics
    ///
    /// Panics if the scenario's robot is not the planar model — only 2D
    /// workspaces have a faithful flat projection.
    pub fn new(scenario: &'a Scenario) -> Self {
        assert!(
            scenario.robot.workspace_is_2d(),
            "SVG rendering supports the planar (2D Mobile) workspace only"
        );
        SceneSvg {
            scenario,
            paths: Vec::new(),
            tree_edges: Vec::new(),
            scale: 2.0,
        }
    }

    /// Adds a waypoint path in the given CSS color.
    pub fn with_path(mut self, path: &[Config], color: &'static str) -> Self {
        self.paths.push((path.to_vec(), color));
        self
    }

    /// Adds exploration-tree edges (drawn faintly under everything else).
    pub fn with_tree(mut self, edges: &[(Config, Config)]) -> Self {
        self.tree_edges.extend_from_slice(edges);
        self
    }

    /// Pixel-per-workspace-unit scale (default 2.0).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Produces the SVG document.
    pub fn render(&self) -> String {
        let px = WORKSPACE_EXTENT * self.scale;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{px:.0}" height="{px:.0}" viewBox="0 0 {px:.0} {px:.0}">"#
        );
        let _ = writeln!(
            out,
            r##"<rect width="100%" height="100%" fill="#fcfcf8" stroke="#888"/>"##
        );

        // Tree edges first (underlay).
        for (a, b) in &self.tree_edges {
            let (x1, y1) = self.map(a[0], a[1]);
            let (x2, y2) = self.map(b[0], b[1]);
            let _ = writeln!(
                out,
                r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#c9d4e4" stroke-width="0.6"/>"##
            );
        }

        // Obstacles as rotated rectangles.
        for o in &self.scenario.obstacles {
            out.push_str(&self.obb_polygon(o, "#5b6770", 0.85));
        }

        // Paths.
        for (path, color) in &self.paths {
            if path.len() < 2 {
                continue;
            }
            let pts: Vec<String> = path
                .iter()
                .map(|q| {
                    let (x, y) = self.map(q[0], q[1]);
                    format!("{x:.1},{y:.1}")
                })
                .collect();
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2.2"/>"#,
                pts.join(" ")
            );
        }

        // Start / goal markers.
        let (sx, sy) = self.map(self.scenario.start[0], self.scenario.start[1]);
        let (gx, gy) = self.map(self.scenario.goal[0], self.scenario.goal[1]);
        let _ = writeln!(
            out,
            r##"<circle cx="{sx:.1}" cy="{sy:.1}" r="5" fill="#2d7d46"/>"##
        );
        let _ = writeln!(
            out,
            r##"<circle cx="{gx:.1}" cy="{gy:.1}" r="5" fill="#b3261e"/>"##
        );
        out.push_str("</svg>\n");
        out
    }

    /// Maps workspace coordinates to SVG pixels (Y flipped so the
    /// workspace origin sits at the bottom-left).
    fn map(&self, x: f64, y: f64) -> (f64, f64) {
        (x * self.scale, (WORKSPACE_EXTENT - y) * self.scale)
    }

    fn obb_polygon(&self, o: &Obb, fill: &str, opacity: f64) -> String {
        // Corners of the planar rectangle in XY.
        let c = o.center();
        let h = o.half_extents();
        let ax = o.axis(0);
        let ay = o.axis(1);
        let corners = [
            (c.x + ax.x * h.x + ay.x * h.y, c.y + ax.y * h.x + ay.y * h.y),
            (c.x + ax.x * h.x - ay.x * h.y, c.y + ax.y * h.x - ay.y * h.y),
            (c.x - ax.x * h.x - ay.x * h.y, c.y - ax.y * h.x - ay.y * h.y),
            (c.x - ax.x * h.x + ay.x * h.y, c.y - ax.y * h.x + ay.y * h.y),
        ];
        let pts: Vec<String> = corners
            .iter()
            .map(|&(x, y)| {
                let (px, py) = self.map(x, y);
                format!("{px:.1},{py:.1}")
            })
            .collect();
        format!(
            "<polygon points=\"{}\" fill=\"{fill}\" fill-opacity=\"{opacity}\"/>\n",
            pts.join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    fn scene() -> Scenario {
        Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 7)
    }

    #[test]
    fn renders_well_formed_svg() {
        let s = scene();
        let svg = SceneSvg::new(&s).render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One polygon per obstacle plus the background rect.
        assert_eq!(svg.matches("<polygon").count(), s.obstacles.len());
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn path_becomes_polyline() {
        let s = scene();
        let path = vec![s.start, s.start.lerp(&s.goal, 0.5), s.goal];
        let svg = SceneSvg::new(&s).with_path(&path, "#1351d8").render();
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("#1351d8"));
    }

    #[test]
    fn tree_edges_render_as_lines() {
        let s = scene();
        let edges = vec![(s.start, s.goal)];
        let svg = SceneSvg::new(&s).with_tree(&edges).render();
        assert_eq!(svg.matches("<line").count(), 1);
    }

    #[test]
    fn scale_changes_dimensions() {
        let s = scene();
        let small = SceneSvg::new(&s).with_scale(1.0).render();
        let big = SceneSvg::new(&s).with_scale(4.0).render();
        assert!(small.contains("width=\"300\""));
        assert!(big.contains("width=\"1200\""));
    }

    #[test]
    fn y_axis_is_flipped() {
        let s = scene();
        let r = SceneSvg::new(&s);
        let (_, y_bottom) = r.map(0.0, 0.0);
        let (_, y_top) = r.map(0.0, WORKSPACE_EXTENT);
        assert!(
            y_bottom > y_top,
            "workspace origin should map to the bottom"
        );
    }

    #[test]
    #[should_panic(expected = "planar")]
    fn non_planar_robot_rejected() {
        let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(4), 1);
        let _ = SceneSvg::new(&s);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let s = scene();
        let _ = SceneSvg::new(&s).with_scale(0.0);
    }
}
