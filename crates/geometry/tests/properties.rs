//! Property-based tests for the geometric kernels.
//!
//! These encode the soundness invariants DESIGN.md §5 calls out:
//! SAT agrees with a sampling oracle, the AABB first stage is conservative,
//! and MINDIST is a true lower bound.

use moped_geometry::{sat, Aabb, Config, Mat3, Obb, OpCount, Rect, Vec3};
use proptest::prelude::*;

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_half() -> impl Strategy<Value = Vec3> {
    (0.2..3.0, 0.2..3.0, 0.2..3.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_obb() -> impl Strategy<Value = Obb> {
    (
        arb_vec3(6.0),
        arb_half(),
        -3.2..3.2f64,
        -1.5..1.5f64,
        -3.2..3.2f64,
    )
        .prop_map(|(c, h, yaw, pitch, roll)| Obb::new(c, h, Mat3::from_euler(yaw, pitch, roll)))
}

fn arb_config(dim: usize) -> impl Strategy<Value = Config> {
    prop::collection::vec(-50.0..50.0f64, dim).prop_map(|v| Config::new(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The sampling oracle never finds an overlap SAT denies: SAT has no
    /// false negatives (it is an exact test; the oracle is sound).
    #[test]
    fn sat_never_misses_oracle_overlap(a in arb_obb(), b in arb_obb()) {
        let mut ops = OpCount::default();
        let sat_hit = sat::obb_obb(&a, &b, &mut ops);
        if sat::sampling_oracle(&a, &b, 8) {
            prop_assert!(sat_hit, "oracle found contact SAT missed: {a:?} vs {b:?}");
        }
    }

    /// SAT is symmetric in its arguments.
    #[test]
    fn sat_symmetric(a in arb_obb(), b in arb_obb()) {
        let mut ops = OpCount::default();
        prop_assert_eq!(sat::obb_obb(&a, &b, &mut ops), sat::obb_obb(&b, &a, &mut ops));
    }

    /// Conservativeness of the first stage: if the obstacle's AABB
    /// relaxation reports FREE against the robot OBB, the exact OBB-OBB
    /// check on the original obstacle must also report FREE. (This is what
    /// makes skipping second-stage checks safe — §III-A.)
    #[test]
    fn aabb_stage_is_conservative(obstacle in arb_obb(), robot in arb_obb()) {
        let relax = obstacle.aabb();
        let mut ops = OpCount::default();
        if !sat::aabb_obb(&relax, &robot, &mut ops) {
            prop_assert!(
                !sat::obb_obb(&obstacle, &robot, &mut ops),
                "first stage said free but exact check collides"
            );
        }
    }

    /// An OBB's AABB contains all eight corners.
    #[test]
    fn obb_aabb_contains_corners(o in arb_obb()) {
        let bb = o.aabb();
        for c in o.corners() {
            prop_assert!(bb.inflated(1e-9).contains_point(c));
        }
    }

    /// A box always intersects itself and any translate closer than the
    /// smallest halfwidth.
    #[test]
    fn sat_self_intersection(o in arb_obb(), dx in -0.1..0.1f64) {
        let shifted = o.at_center(o.center() + Vec3::new(dx, 0.0, 0.0));
        let mut ops = OpCount::default();
        prop_assert!(sat::obb_obb(&o, &shifted, &mut ops));
    }

    /// MINDIST is a lower bound on the distance to every contained point.
    #[test]
    fn mindist_lower_bounds_members(
        pts in prop::collection::vec(prop::collection::vec(-20.0..20.0f64, 4), 1..12),
        q in arb_config(4),
    ) {
        let configs: Vec<Config> = pts.iter().map(|v| Config::new(v)).collect();
        let rect: Rect = configs.iter().copied().collect();
        let mut ops = OpCount::default();
        let lower = rect.mindist_sq(&q, &mut ops);
        for p in &configs {
            prop_assert!(p.distance_sq(&q) + 1e-9 >= lower);
        }
    }

    /// MINDIST to a degenerate (single-point) rect equals the squared
    /// distance to that point.
    #[test]
    fn mindist_degenerate_equals_distance(p in arb_config(5), q in arb_config(5)) {
        let rect = Rect::from_point(&p);
        let mut ops = OpCount::default();
        let md = rect.mindist_sq(&q, &mut ops);
        prop_assert!((md - p.distance_sq(&q)).abs() < 1e-9);
    }

    /// Union of rects contains both operands.
    #[test]
    fn rect_union_contains_operands(a in arb_config(3), b in arb_config(3), c in arb_config(3)) {
        let r1 = Rect::from_point(&a).union_point(&b);
        let r2 = Rect::from_point(&c);
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
    }

    /// Steering never overshoots the step and lands on the segment.
    #[test]
    fn steer_respects_step(a in arb_config(6), b in arb_config(6), step in 0.1..10.0f64) {
        let s = a.steer_toward(&b, step);
        prop_assert!(a.distance(&s) <= step + 1e-9);
        // Collinearity: distance(a,s) + distance(s,b) == distance(a,b).
        let total = a.distance(&s) + s.distance(&b);
        prop_assert!((total - a.distance(&b)).abs() < 1e-6);
    }

    /// AABB-AABB intersection is symmetric and union-monotone.
    #[test]
    fn aabb_union_monotone(a in arb_obb(), b in arb_obb()) {
        let (ba, bb) = (a.aabb(), b.aabb());
        prop_assert_eq!(ba.intersects_aabb(&bb), bb.intersects_aabb(&ba));
        let u = ba.union(&bb);
        prop_assert!(u.contains_aabb(&ba) && u.contains_aabb(&bb));
    }

    /// Interpolated motion poses all lie within the segment's bounding
    /// rect and end exactly at the target.
    #[test]
    fn interpolation_stays_on_segment(a in arb_config(4), b in arb_config(4)) {
        let steps = moped_geometry::InterpolationSteps::with_resolution(1.0);
        let poses = moped_geometry::interpolate(&a, &b, &steps);
        let seg_rect = Rect::from_point(&a).union_point(&b);
        let mut ops = OpCount::default();
        for p in &poses {
            // Floating-point lerp may drift a hair outside the exact
            // bounding rect; MINDIST gives the drift magnitude directly.
            prop_assert!(seg_rect.mindist_sq(p, &mut ops) < 1e-12);
        }
        prop_assert_eq!(*poses.last().unwrap(), b);
    }

    /// Planar SAT and 3D SAT agree for z-aligned planar geometry.
    #[test]
    fn planar_and_3d_sat_agree(
        (ax, ay) in (-5.0..5.0f64, -5.0..5.0f64),
        (bx, by) in (-5.0..5.0f64, -5.0..5.0f64),
        ta in -3.2..3.2f64,
        tb in -3.2..3.2f64,
        (hax, hay) in (0.3..2.0f64, 0.3..2.0f64),
        (hbx, hby) in (0.3..2.0f64, 0.3..2.0f64),
    ) {
        let p1 = Obb::planar(Vec3::new(ax, ay, 0.0), hax, hay, ta);
        let p2 = Obb::planar(Vec3::new(bx, by, 0.0), hbx, hby, tb);
        let o1 = Obb::new(Vec3::new(ax, ay, 0.0), Vec3::new(hax, hay, 0.5), Mat3::rotation_z(ta));
        let o2 = Obb::new(Vec3::new(bx, by, 0.0), Vec3::new(hbx, hby, 0.5), Mat3::rotation_z(tb));
        let mut ops = OpCount::default();
        prop_assert_eq!(sat::obb_obb(&p1, &p2, &mut ops), sat::obb_obb(&o1, &o2, &mut ops));
    }

    /// GJK and SAT agree on intersection for every pair away from
    /// grazing contact — two independent exact algorithms cross-checking
    /// each other.
    #[test]
    fn gjk_agrees_with_sat(a in arb_obb(), b in arb_obb()) {
        let mut ops = OpCount::default();
        let sat_hit = sat::obb_obb(&a, &b, &mut ops);
        let g = moped_geometry::gjk::distance(&a, &b, &mut ops);
        if g.distance > 1e-6 {
            prop_assert_eq!(sat_hit, g.intersecting,
                "SAT {} vs GJK {} at clearance {}", sat_hit, g.intersecting, g.distance);
        }
    }

    /// GJK distance lower-bounds the center distance minus both
    /// circumradii and is zero exactly when SAT reports contact (modulo
    /// the grazing shell).
    #[test]
    fn gjk_distance_bounds(a in arb_obb(), b in arb_obb()) {
        let mut ops = OpCount::default();
        let g = moped_geometry::gjk::distance(&a, &b, &mut ops);
        let centers = (a.center() - b.center()).norm();
        let circum = a.half_extents().norm() + b.half_extents().norm();
        prop_assert!(g.distance <= centers + 1e-6);
        if centers > circum {
            prop_assert!(g.distance >= centers - circum - 1e-6);
            prop_assert!(!g.intersecting);
        }
    }

    /// AABB–OBB equals OBB–OBB when the first box is axis-aligned.
    #[test]
    fn aabb_obb_equals_obb_obb_for_aligned_box(c in arb_vec3(6.0), h in arb_half(), o in arb_obb()) {
        let aabb = Aabb::from_center_half(c, h);
        let as_obb = Obb::axis_aligned(c, h);
        let mut ops = OpCount::default();
        prop_assert_eq!(sat::aabb_obb(&aabb, &o, &mut ops), sat::obb_obb(&as_obb, &o, &mut ops));
    }
}
