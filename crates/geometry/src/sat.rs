//! Separating-Axis-Theorem intersection tests.
//!
//! The paper's collision-check unit cost analysis (§II-C, Fig 11) hinges on
//! three SAT variants with very different prices:
//!
//! * **OBB–OBB, 3D**: 15 candidate axes (3 + 3 face axes, 9 edge cross
//!   products), each verified with dot products — the expensive exact check
//!   used only in the second stage.
//! * **OBB–OBB, 2D**: 4 candidate axes — used by the planar mobile-robot
//!   workload.
//! * **AABB–OBB**: one box is axis-aligned, so the axis set simplifies
//!   (face axes need no change of basis and the 9 cross products have only
//!   two non-zero components each) — the cheap first-stage check run
//!   against R-tree nodes.
//!
//! Every function charges its arithmetic to an [`OpCount`] ledger so the
//! evaluation figures can be regenerated from real counted work.
//!
//! All tests are *inclusive* (touching boxes intersect) and use a small
//! epsilon on the absolute rotation entries to stay robust when edges are
//! near-parallel (Ericson, *Real-Time Collision Detection*, §4.4.1).

use crate::{Aabb, Obb, OpCount, Vec3};

/// Robustness epsilon added to |R| entries before cross-axis tests.
const SAT_EPS: f64 = 1e-9;

/// Exact OBB–OBB intersection test.
///
/// Dispatches to the 4-axis 2D SAT when *both* boxes are flagged planar,
/// otherwise runs the full 15-axis 3D SAT. Increments `ops.sat_queries`.
///
/// # Example
///
/// ```
/// use moped_geometry::{sat, Obb, OpCount, Vec3};
/// let a = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
/// let b = Obb::axis_aligned(Vec3::new(3.0, 0.0, 0.0), Vec3::splat(1.0));
/// assert!(!sat::obb_obb(&a, &b, &mut OpCount::default()));
/// ```
pub fn obb_obb(a: &Obb, b: &Obb, ops: &mut OpCount) -> bool {
    ops.sat_queries += 1;
    if a.is_planar() && b.is_planar() {
        obb_obb_2d(a, b, ops)
    } else {
        obb_obb_3d(a, b, ops)
    }
}

/// First-stage AABB–OBB intersection test.
///
/// The AABB plays the role of an R-tree node (obstacle group or single
/// obstacle relaxed to its AABB); the OBB is the robot body. Because the
/// AABB's frame is the world frame, the relative rotation *is* the OBB's
/// rotation — no change-of-basis product is paid — and each of the nine
/// cross-product axes reduces to a two-component test. Increments
/// `ops.sat_queries`.
// Indexed loops mirror the paper's per-axis SAT tables; iterator chains
// would obscure the i/j axis pairing the comments refer to.
#[allow(clippy::needless_range_loop)]
pub fn aabb_obb(a: &Aabb, b: &Obb, ops: &mut OpCount) -> bool {
    ops.sat_queries += 1;
    if b.is_planar() {
        return aabb_obb_2d(a, b, ops);
    }
    let ha = a.half_extents();
    let hb = b.half_extents();
    // Relative rotation in the AABB's (= world) frame.
    let r = b.rotation();
    let t = b.center() - a.center();
    ops.add += 3;

    let mut abs_r = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            abs_r[i][j] = r.m[i][j].abs() + SAT_EPS;
        }
    }
    ops.add += 9; // epsilon adds; abs is free in hardware (sign strip)

    let ta = [t.x, t.y, t.z];
    let haa = [ha.x, ha.y, ha.z];
    let hba = [hb.x, hb.y, hb.z];

    // Axes L = world axis i (3 tests): rb needs a 3-term dot, ra is free.
    for i in 0..3 {
        let ra = haa[i];
        let rb = hba[0] * abs_r[i][0] + hba[1] * abs_r[i][1] + hba[2] * abs_r[i][2];
        ops.mul += 3;
        ops.add += 3;
        ops.cmp += 1;
        if ta[i].abs() > ra + rb {
            return false;
        }
    }

    // Axes L = OBB axis j (3 tests): ra needs a 3-term dot over |R| column,
    // t must be projected onto the OBB axis (3-term dot).
    for j in 0..3 {
        let ra = haa[0] * abs_r[0][j] + haa[1] * abs_r[1][j] + haa[2] * abs_r[2][j];
        let rb = hba[j];
        let tp = ta[0] * r.m[0][j] + ta[1] * r.m[1][j] + ta[2] * r.m[2][j];
        ops.mul += 6;
        ops.add += 5;
        ops.cmp += 1;
        if tp.abs() > ra + rb {
            return false;
        }
    }

    // Cross axes L = e_i × b_j (9 tests). With e_i a world axis the cross
    // product has exactly two non-zero components, so every term is a
    // 2-element dot.
    for i in 0..3 {
        let (u, v) = ((i + 1) % 3, (i + 2) % 3);
        for j in 0..3 {
            let (p, q) = ((j + 1) % 3, (j + 2) % 3);
            let ra = haa[u] * abs_r[v][j] + haa[v] * abs_r[u][j];
            let rb = hba[p] * abs_r[i][q] + hba[q] * abs_r[i][p];
            let tp = ta[v] * r.m[u][j] - ta[u] * r.m[v][j];
            ops.mul += 6;
            ops.add += 4;
            ops.cmp += 1;
            if tp.abs() > ra + rb {
                return false;
            }
        }
    }

    true
}

/// Full 15-axis 3D OBB–OBB SAT (Ericson §4.4.1).
// Indexed loops keep the i/j axis indices aligned with Ericson's tables.
#[allow(clippy::needless_range_loop)]
fn obb_obb_3d(a: &Obb, b: &Obb, ops: &mut OpCount) -> bool {
    let ha = [a.half_extents().x, a.half_extents().y, a.half_extents().z];
    let hb = [b.half_extents().x, b.half_extents().y, b.half_extents().z];

    // R[i][j] = a_i · b_j : express B in A's frame (9 three-term dots).
    let mut r = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            r[i][j] = a.axis(i).dot(b.axis(j));
        }
    }
    ops.mul += 27;
    ops.add += 18;

    // Translation in A's frame (3 dots after the world-frame subtract).
    let tw = b.center() - a.center();
    let t = [tw.dot(a.axis(0)), tw.dot(a.axis(1)), tw.dot(a.axis(2))];
    ops.mul += 9;
    ops.add += 9;

    let mut abs_r = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            abs_r[i][j] = r[i][j].abs() + SAT_EPS;
        }
    }
    ops.add += 9;

    // Axes L = A_i.
    for i in 0..3 {
        let ra = ha[i];
        let rb = hb[0] * abs_r[i][0] + hb[1] * abs_r[i][1] + hb[2] * abs_r[i][2];
        ops.mul += 3;
        ops.add += 3;
        ops.cmp += 1;
        if t[i].abs() > ra + rb {
            return false;
        }
    }

    // Axes L = B_j.
    for j in 0..3 {
        let ra = ha[0] * abs_r[0][j] + ha[1] * abs_r[1][j] + ha[2] * abs_r[2][j];
        let rb = hb[j];
        let tp = t[0] * r[0][j] + t[1] * r[1][j] + t[2] * r[2][j];
        ops.mul += 6;
        ops.add += 5;
        ops.cmp += 1;
        if tp.abs() > ra + rb {
            return false;
        }
    }

    // Cross axes L = A_i × B_j.
    for i in 0..3 {
        let (u, v) = ((i + 1) % 3, (i + 2) % 3);
        for j in 0..3 {
            let (p, q) = ((j + 1) % 3, (j + 2) % 3);
            let ra = ha[u] * abs_r[v][j] + ha[v] * abs_r[u][j];
            let rb = hb[p] * abs_r[i][q] + hb[q] * abs_r[i][p];
            let tp = t[v] * r[u][j] - t[u] * r[v][j];
            ops.mul += 6;
            ops.add += 4;
            ops.cmp += 1;
            if tp.abs() > ra + rb {
                return false;
            }
        }
    }

    true
}

/// 4-axis 2D OBB–OBB SAT for planar boxes (ignores z entirely).
fn obb_obb_2d(a: &Obb, b: &Obb, ops: &mut OpCount) -> bool {
    // 2x2 relative rotation r[i][j] = a_i · b_j over the plane.
    let axes_a = [a.axis(0), a.axis(1)];
    let axes_b = [b.axis(0), b.axis(1)];
    let ha = [a.half_extents().x, a.half_extents().y];
    let hb = [b.half_extents().x, b.half_extents().y];
    let mut r = [[0.0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            r[i][j] = axes_a[i].x * axes_b[j].x + axes_a[i].y * axes_b[j].y;
        }
    }
    ops.mul += 8;
    ops.add += 4;

    let tw = b.center() - a.center();
    ops.add += 2;
    let t = [
        tw.x * axes_a[0].x + tw.y * axes_a[0].y,
        tw.x * axes_a[1].x + tw.y * axes_a[1].y,
    ];
    ops.mul += 4;
    ops.add += 2;

    let mut abs_r = [[0.0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            abs_r[i][j] = r[i][j].abs() + SAT_EPS;
        }
    }
    ops.add += 4;

    // Axes L = A_i.
    for i in 0..2 {
        let ra = ha[i];
        let rb = hb[0] * abs_r[i][0] + hb[1] * abs_r[i][1];
        ops.mul += 2;
        ops.add += 2;
        ops.cmp += 1;
        if t[i].abs() > ra + rb {
            return false;
        }
    }

    // Axes L = B_j.
    for j in 0..2 {
        let ra = ha[0] * abs_r[0][j] + ha[1] * abs_r[1][j];
        let rb = hb[j];
        let tp = t[0] * r[0][j] + t[1] * r[1][j];
        ops.mul += 4;
        ops.add += 3;
        ops.cmp += 1;
        if tp.abs() > ra + rb {
            return false;
        }
    }

    true
}

/// 2D AABB–OBB: the AABB's axes are the world axes, so the relative
/// rotation is the OBB's own 2×2 block.
fn aabb_obb_2d(a: &Aabb, b: &Obb, ops: &mut OpCount) -> bool {
    let ha = [a.half_extents().x, a.half_extents().y];
    let hb = [b.half_extents().x, b.half_extents().y];
    let bx = b.axis(0);
    let by = b.axis(1);
    let r = [[bx.x, by.x], [bx.y, by.y]];
    let tw = b.center() - a.center();
    let t = [tw.x, tw.y];
    ops.add += 2;

    let mut abs_r = [[0.0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            abs_r[i][j] = r[i][j].abs() + SAT_EPS;
        }
    }
    ops.add += 4;

    for i in 0..2 {
        let ra = ha[i];
        let rb = hb[0] * abs_r[i][0] + hb[1] * abs_r[i][1];
        ops.mul += 2;
        ops.add += 2;
        ops.cmp += 1;
        if t[i].abs() > ra + rb {
            return false;
        }
    }
    for j in 0..2 {
        let ra = ha[0] * abs_r[0][j] + ha[1] * abs_r[1][j];
        let rb = hb[j];
        let tp = t[0] * r[0][j] + t[1] * r[1][j];
        ops.mul += 4;
        ops.add += 3;
        ops.cmp += 1;
        if tp.abs() > ra + rb {
            return false;
        }
    }
    true
}

/// Structure-of-arrays obstacle store for the batched narrow phase.
///
/// Built once per environment: rotation *columns* (the SAT axes) are
/// extracted from every obstacle up front, so the per-query kernel streams
/// contiguous `f64` arrays instead of chasing `Mat3` rows through an
/// array-of-structs layout. The original boxes are retained for the planar
/// dispatch lane and for reference-path comparisons.
#[derive(Clone, Debug)]
pub struct ObbSoa {
    obbs: Vec<Obb>,
    /// Obstacle centers, stride 3.
    center: Vec<f64>,
    /// Obstacle half extents, stride 3.
    half: Vec<f64>,
    /// Rotation columns (= SAT axes), stride 9: axis `j` of obstacle `i`
    /// occupies `[i*9 + j*3, i*9 + j*3 + 3)`.
    axes: Vec<f64>,
    planar: Vec<bool>,
}

impl ObbSoa {
    /// Extracts the SoA columns from `obbs` (axes pulled out once here,
    /// never again on the query path).
    pub fn build(obbs: Vec<Obb>) -> Self {
        let n = obbs.len();
        let mut center = Vec::with_capacity(n * 3);
        let mut half = Vec::with_capacity(n * 3);
        let mut axes = Vec::with_capacity(n * 9);
        let mut planar = Vec::with_capacity(n);
        for o in &obbs {
            let c = o.center();
            center.extend_from_slice(&[c.x, c.y, c.z]);
            let h = o.half_extents();
            half.extend_from_slice(&[h.x, h.y, h.z]);
            for j in 0..3 {
                let a = o.axis(j);
                axes.extend_from_slice(&[a.x, a.y, a.z]);
            }
            planar.push(o.is_planar());
        }
        ObbSoa {
            obbs,
            center,
            half,
            axes,
            planar,
        }
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.obbs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.obbs.is_empty()
    }

    /// The original boxes, in store order.
    pub fn obbs(&self) -> &[Obb] {
        &self.obbs
    }

    /// The original box `i`.
    pub fn get(&self, i: usize) -> &Obb {
        &self.obbs[i]
    }

    /// Whether obstacle `i` uses the planar encoding.
    pub fn is_planar(&self, i: usize) -> bool {
        self.planar[i]
    }
}

/// Robot-body-side precomputation for the batched narrow phase: the body's
/// rotation columns are extracted once per pose instead of once per
/// obstacle pair.
#[derive(Clone, Copy, Debug)]
pub struct ObbPre {
    obb: Obb,
    center: [f64; 3],
    half: [f64; 3],
    /// `axes[j]` is rotation column `j` (SAT axis `B_j`).
    axes: [[f64; 3]; 3],
    planar: bool,
}

/// Hoists the body-side axis extraction out of the per-obstacle loop.
pub fn prepare(body: &Obb) -> ObbPre {
    let c = body.center();
    let h = body.half_extents();
    let mut axes = [[0.0; 3]; 3];
    for (j, col) in axes.iter_mut().enumerate() {
        let a = body.axis(j);
        *col = [a.x, a.y, a.z];
    }
    ObbPre {
        obb: *body,
        center: [c.x, c.y, c.z],
        half: [h.x, h.y, h.z],
        axes,
        planar: body.is_planar(),
    }
}

/// Lane width of the batched narrow phase: survivors are tested in chunks
/// of this many obstacles between any-hit early-exit checks.
pub const SAT_BATCH: usize = 4;

/// Batched any-hit SAT: tests `body` against obstacles `ids` from `soa` in
/// chunks of [`SAT_BATCH`]. Within a chunk every lane runs the *branch-free*
/// full 15-axis test over the contiguous SoA arrays (separation flags are
/// OR-combined instead of early-returning), so the chunk loop
/// autovectorizes; the early exit happens between chunks. Planar-planar
/// pairs dispatch to the same 4-axis scalar test as [`obb_obb`].
///
/// Returns the first intersecting obstacle in `ids` order — exactly the
/// pair the sequential early-exit loop would have stopped on — or `None`
/// when every pair is separated. Verdicts are identical to calling
/// [`obb_obb`] per pair.
pub fn obb_obb_batch(
    soa: &ObbSoa,
    ids: &[usize],
    body: &ObbPre,
    ops: &mut OpCount,
) -> Option<usize> {
    let mut k = 0;
    while k < ids.len() {
        let end = (k + SAT_BATCH).min(ids.len());
        let mut hits = [false; SAT_BATCH];
        for (lane, &oid) in ids[k..end].iter().enumerate() {
            ops.sat_queries += 1;
            hits[lane] = if soa.is_planar(oid) && body.planar {
                obb_obb_2d(soa.get(oid), &body.obb, ops)
            } else {
                obb_obb_3d_lane(soa, oid, body, ops)
            };
        }
        if hits.iter().any(|&h| h) {
            for (lane, &oid) in ids[k..end].iter().enumerate() {
                if hits[lane] {
                    return Some(oid);
                }
            }
        }
        k = end;
    }
    None
}

/// One branch-free lane of the batched 3D SAT: same axis tables and
/// arithmetic order as [`obb_obb_3d`] with obstacle `oid` as box A and the
/// body as box B, but all 15 axes are always evaluated and the separation
/// flags OR-combined. Charges the full 15-axis cost (117 mul, 96 add,
/// 15 cmp) unconditionally — the work this lane actually performs.
// Indexed loops keep the i/j axis indices aligned with Ericson's tables.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn obb_obb_3d_lane(soa: &ObbSoa, oid: usize, b: &ObbPre, ops: &mut OpCount) -> bool {
    let ha = &soa.half[oid * 3..oid * 3 + 3];
    let ca = &soa.center[oid * 3..oid * 3 + 3];
    let aw = &soa.axes[oid * 9..oid * 9 + 9];
    let hb = &b.half;

    // R[i][j] = a_i · b_j : express B in A's frame (9 three-term dots).
    let mut r = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            r[i][j] = aw[i * 3] * b.axes[j][0]
                + aw[i * 3 + 1] * b.axes[j][1]
                + aw[i * 3 + 2] * b.axes[j][2];
        }
    }
    ops.mul += 27;
    ops.add += 18;

    // Translation in A's frame (3 dots after the world-frame subtract).
    let tw = [
        b.center[0] - ca[0],
        b.center[1] - ca[1],
        b.center[2] - ca[2],
    ];
    let mut t = [0.0; 3];
    for i in 0..3 {
        t[i] = tw[0] * aw[i * 3] + tw[1] * aw[i * 3 + 1] + tw[2] * aw[i * 3 + 2];
    }
    ops.mul += 9;
    ops.add += 9;

    let mut abs_r = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            abs_r[i][j] = r[i][j].abs() + SAT_EPS;
        }
    }
    ops.add += 9;

    let mut sep = false;

    // Axes L = A_i.
    for i in 0..3 {
        let ra = ha[i];
        let rb = hb[0] * abs_r[i][0] + hb[1] * abs_r[i][1] + hb[2] * abs_r[i][2];
        sep |= t[i].abs() > ra + rb;
    }
    ops.mul += 9;
    ops.add += 9;
    ops.cmp += 3;

    // Axes L = B_j.
    for j in 0..3 {
        let ra = ha[0] * abs_r[0][j] + ha[1] * abs_r[1][j] + ha[2] * abs_r[2][j];
        let rb = hb[j];
        let tp = t[0] * r[0][j] + t[1] * r[1][j] + t[2] * r[2][j];
        sep |= tp.abs() > ra + rb;
    }
    ops.mul += 18;
    ops.add += 15;
    ops.cmp += 3;

    // Cross axes L = A_i × B_j.
    for i in 0..3 {
        let (u, v) = ((i + 1) % 3, (i + 2) % 3);
        for j in 0..3 {
            let (p, q) = ((j + 1) % 3, (j + 2) % 3);
            let ra = ha[u] * abs_r[v][j] + ha[v] * abs_r[u][j];
            let rb = hb[p] * abs_r[i][q] + hb[q] * abs_r[i][p];
            let tp = t[v] * r[u][j] - t[u] * r[v][j];
            sep |= tp.abs() > ra + rb;
        }
    }
    ops.mul += 54;
    ops.add += 36;
    ops.cmp += 9;

    !sep
}

/// Brute-force intersection oracle for testing: samples a dense lattice of
/// points inside `a` and reports whether any falls inside `b`, then vice
/// versa, and finally checks segment-level corner containment. This is a
/// *sound but incomplete* detector (it can miss razor-thin overlaps), so
/// tests use it one-directionally: `oracle ⇒ SAT must agree`.
pub fn sampling_oracle(a: &Obb, b: &Obb, per_axis: usize) -> bool {
    let n = per_axis.max(2);
    let probe = |src: &Obb, dst: &Obb| -> bool {
        let h = src.half_extents();
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let fx = -1.0 + 2.0 * ix as f64 / (n - 1) as f64;
                    let fy = -1.0 + 2.0 * iy as f64 / (n - 1) as f64;
                    let fz = -1.0 + 2.0 * iz as f64 / (n - 1) as f64;
                    let local = Vec3::new(fx * h.x, fy * h.y, fz * h.z);
                    let world = src.center() + src.rotation() * local;
                    if dst.contains_point(world) {
                        return true;
                    }
                }
            }
        }
        false
    };
    probe(a, b) || probe(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;

    fn unit_at(x: f64) -> Obb {
        Obb::axis_aligned(Vec3::new(x, 0.0, 0.0), Vec3::splat(1.0))
    }

    #[test]
    fn separated_boxes_disjoint() {
        let mut ops = OpCount::default();
        assert!(!obb_obb(&unit_at(0.0), &unit_at(3.0), &mut ops));
        assert_eq!(ops.sat_queries, 1);
    }

    #[test]
    fn overlapping_boxes_intersect() {
        let mut ops = OpCount::default();
        assert!(obb_obb(&unit_at(0.0), &unit_at(1.5), &mut ops));
    }

    #[test]
    fn touching_boxes_intersect_inclusively() {
        let mut ops = OpCount::default();
        assert!(obb_obb(&unit_at(0.0), &unit_at(2.0), &mut ops));
    }

    #[test]
    fn rotated_diamond_fits_in_gap() {
        // A unit square rotated 45° has x-radius sqrt(2); place it just
        // beyond so the face-axis test passes but cross-axis style
        // reasoning matters.
        let a = unit_at(0.0);
        let b = Obb::new(
            Vec3::new(2.0 + 2f64.sqrt() + 0.01, 0.0, 0.0),
            Vec3::splat(1.0),
            Mat3::rotation_z(std::f64::consts::FRAC_PI_4),
        );
        let mut ops = OpCount::default();
        assert!(!obb_obb(&a, &b, &mut ops));
        let c = b.at_center(Vec3::new(1.0 + 2f64.sqrt() - 0.01, 0.0, 0.0));
        assert!(obb_obb(&a, &c, &mut ops));
    }

    #[test]
    fn edge_edge_separation_needs_cross_axes() {
        // Classic case where only a cross-product axis separates:
        // two long thin boxes skewed in 3D.
        let a = Obb::new(Vec3::ZERO, Vec3::new(10.0, 0.1, 0.1), Mat3::IDENTITY);
        let b = Obb::new(
            Vec3::new(0.0, 0.5, 0.5),
            Vec3::new(10.0, 0.1, 0.1),
            Mat3::rotation_z(std::f64::consts::FRAC_PI_2)
                * Mat3::rotation_x(std::f64::consts::FRAC_PI_4),
        );
        let mut ops = OpCount::default();
        let hit = obb_obb(&a, &b, &mut ops);
        // Verify against the oracle rather than hand-solving.
        assert_eq!(hit, sampling_oracle(&a, &b, 24) || hit);
    }

    #[test]
    fn aabb_obb_agrees_with_full_sat_on_identity() {
        // When the OBB is axis-aligned, AABB–OBB must behave exactly like
        // AABB–AABB overlap.
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let near = Obb::axis_aligned(Vec3::splat(2.5), Vec3::splat(1.0));
        let far = Obb::axis_aligned(Vec3::splat(4.0), Vec3::splat(0.5));
        let mut ops = OpCount::default();
        assert!(aabb_obb(&a, &near, &mut ops));
        assert!(!aabb_obb(&a, &far, &mut ops));
    }

    #[test]
    fn aabb_obb_is_cheaper_than_obb_obb() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let a_as_obb = Obb::axis_aligned(a.center(), a.half_extents());
        let b = Obb::from_euler(Vec3::splat(1.0), Vec3::splat(1.0), 0.4, 0.3, 0.2);
        let mut cheap = OpCount::default();
        let mut full = OpCount::default();
        let r1 = aabb_obb(&a, &b, &mut cheap);
        let r2 = obb_obb(&a_as_obb, &b, &mut full);
        assert_eq!(r1, r2);
        assert!(
            cheap.mac_equiv() < full.mac_equiv(),
            "first-stage check must be cheaper: {} vs {}",
            cheap.mac_equiv(),
            full.mac_equiv()
        );
    }

    #[test]
    fn planar_sat_is_cheaper_than_3d() {
        let a2 = Obb::planar(Vec3::ZERO, 1.0, 1.0, 0.2);
        let b2 = Obb::planar(Vec3::new(1.0, 1.0, 0.0), 1.0, 1.0, -0.3);
        let a3 = Obb::from_euler(Vec3::ZERO, Vec3::splat(1.0), 0.2, 0.0, 0.0);
        let b3 = Obb::from_euler(Vec3::new(1.0, 1.0, 0.0), Vec3::splat(1.0), -0.3, 0.0, 0.0);
        let mut c2 = OpCount::default();
        let mut c3 = OpCount::default();
        assert!(obb_obb(&a2, &b2, &mut c2));
        assert!(obb_obb(&a3, &b3, &mut c3));
        assert!(c2.mac_equiv() < c3.mac_equiv());
    }

    #[test]
    fn planar_rotation_separates_in_2d() {
        // Two planar unit squares: rotated one slips past at distance
        // beyond sqrt(2)+1.
        let a = Obb::planar(Vec3::ZERO, 1.0, 1.0, 0.0);
        let sep = 1.0 + 2f64.sqrt();
        let b = Obb::planar(
            Vec3::new(sep + 0.01, 0.0, 0.0),
            1.0,
            1.0,
            std::f64::consts::FRAC_PI_4,
        );
        let c = Obb::planar(
            Vec3::new(sep - 0.01, 0.0, 0.0),
            1.0,
            1.0,
            std::f64::consts::FRAC_PI_4,
        );
        let mut ops = OpCount::default();
        assert!(!obb_obb(&a, &b, &mut ops));
        assert!(obb_obb(&a, &c, &mut ops));
    }

    #[test]
    fn symmetry_of_sat() {
        let a = Obb::from_euler(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.5), 0.3, 0.6, -0.2);
        let b = Obb::from_euler(
            Vec3::new(1.5, 1.0, 0.2),
            Vec3::new(0.5, 1.5, 1.0),
            -0.7,
            0.1,
            0.9,
        );
        let mut ops = OpCount::default();
        assert_eq!(obb_obb(&a, &b, &mut ops), obb_obb(&b, &a, &mut ops));
    }

    #[test]
    fn batched_sat_matches_sequential_verdicts() {
        // Deterministic pseudo-random scene: the batched kernel must agree
        // with per-pair `obb_obb` on every query, and report the first
        // intersecting obstacle in ids order.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let obstacles: Vec<Obb> = (0..23)
            .map(|_| {
                Obb::from_euler(
                    Vec3::new(next() * 10.0, next() * 10.0, next() * 10.0),
                    Vec3::new(0.3 + next() * 1.5, 0.3 + next() * 1.5, 0.3 + next() * 1.5),
                    next() * 3.0,
                    next() * 3.0,
                    next() * 3.0,
                )
            })
            .collect();
        let soa = ObbSoa::build(obstacles.clone());
        let ids: Vec<usize> = (0..obstacles.len()).collect();
        for _ in 0..40 {
            let body = Obb::from_euler(
                Vec3::new(next() * 10.0, next() * 10.0, next() * 10.0),
                Vec3::splat(0.5 + next()),
                next() * 3.0,
                next() * 3.0,
                next() * 3.0,
            );
            let pre = prepare(&body);
            let batched = obb_obb_batch(&soa, &ids, &pre, &mut OpCount::default());
            let sequential = ids
                .iter()
                .copied()
                .find(|&i| obb_obb(&obstacles[i], &body, &mut OpCount::default()));
            assert_eq!(batched, sequential, "batched SAT diverged from scalar");
        }
    }

    #[test]
    fn batched_sat_dispatches_planar_pairs() {
        let obstacles = vec![
            Obb::planar(Vec3::new(3.0, 0.0, 0.0), 1.0, 1.0, 0.4),
            Obb::planar(Vec3::new(0.2, 0.1, 0.0), 1.0, 1.0, -0.2),
        ];
        let soa = ObbSoa::build(obstacles.clone());
        let body = Obb::planar(Vec3::ZERO, 0.5, 0.5, 0.1);
        let pre = prepare(&body);
        let mut ops = OpCount::default();
        let hit = obb_obb_batch(&soa, &[0, 1], &pre, &mut ops);
        assert_eq!(hit, Some(1));
        assert_eq!(ops.sat_queries, 2);
        // Planar lanes pay the 4-axis price, far below the 15-axis lane.
        let mut full = OpCount::default();
        obb_obb_batch(
            &ObbSoa::build(vec![Obb::axis_aligned(Vec3::splat(9.0), Vec3::splat(1.0))]),
            &[0],
            &prepare(&Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0))),
            &mut full,
        );
        assert!(ops.mul < full.mul, "planar lane should be cheaper");
    }

    #[test]
    fn batched_sat_charges_full_lane_cost() {
        // One separated 3D pair: the branch-free lane always pays all 15
        // axes (117 mul / 96 add / 15 cmp) plus the setup work.
        let soa = ObbSoa::build(vec![Obb::axis_aligned(Vec3::splat(9.0), Vec3::splat(1.0))]);
        let pre = prepare(&Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0)));
        let mut ops = OpCount::default();
        assert_eq!(obb_obb_batch(&soa, &[0], &pre, &mut ops), None);
        assert_eq!(ops.mul, 117);
        assert_eq!(ops.add, 96);
        assert_eq!(ops.cmp, 15);
        assert_eq!(ops.sat_queries, 1);
    }

    #[test]
    fn aabb_obb_conservative_wrt_exact() {
        // If AABB-stage says free, the exact OBB-OBB on the *enclosed*
        // obstacle must also be free. Model: obstacle OBB inside its AABB.
        let obstacle = Obb::from_euler(
            Vec3::new(5.0, 5.0, 5.0),
            Vec3::new(2.0, 1.0, 1.0),
            0.7,
            0.2,
            0.1,
        );
        let relax = obstacle.aabb();
        let robot = Obb::from_euler(Vec3::new(9.5, 5.0, 5.0), Vec3::splat(1.0), 0.1, 0.0, 0.0);
        let mut ops = OpCount::default();
        if !aabb_obb(&relax, &robot, &mut ops) {
            assert!(!obb_obb(&obstacle, &robot, &mut ops));
        }
    }
}
