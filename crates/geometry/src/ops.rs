//! Operation-count accounting.
//!
//! Every "computational cost" number in the MOPED evaluation (Figs 3, 6, 8,
//! 10, 14, 16, 19) is a count of arithmetic work. This module defines the
//! single ledger type all kernels charge into, so algorithm variants can be
//! compared on exactly the same basis, and so the hardware model can map
//! counted work onto its 168-MAC datapath.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An additive ledger of primitive operations.
///
/// # Example
///
/// ```
/// use moped_geometry::OpCount;
/// let mut a = OpCount::default();
/// a.mul += 10;
/// a.add += 5;
/// assert_eq!(a.mac_equiv(), 15);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Multiplications.
    pub mul: u64,
    /// Additions / subtractions.
    pub add: u64,
    /// Comparisons (including min/max selections).
    pub cmp: u64,
    /// Square roots.
    pub sqrt: u64,
    /// Number of configuration-space distance calculations performed
    /// (the neighbor-search workload metric).
    pub dist_calcs: u64,
    /// Number of SAT collision-check queries issued (any granularity).
    pub sat_queries: u64,
    /// 16-bit-word memory traffic attributed to this work (reads+writes);
    /// the hardware model converts this into SRAM access energy.
    pub mem_words: u64,
}

impl OpCount {
    /// A ledger with all counters at zero.
    pub const ZERO: OpCount = OpCount {
        mul: 0,
        add: 0,
        cmp: 0,
        sqrt: 0,
        dist_calcs: 0,
        sat_queries: 0,
        mem_words: 0,
    };

    /// Total work expressed in 16-bit MAC-array-slot equivalents.
    ///
    /// A multiply and an add each occupy one MAC slot; a comparison is a
    /// subtract (one slot); a square root is iterated on the MAC array and
    /// is charged a fixed 8 slots (Newton–Raphson on 16-bit operands).
    #[inline]
    pub fn mac_equiv(&self) -> u64 {
        self.mul + self.add + self.cmp + 8 * self.sqrt
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = OpCount::ZERO;
    }

    /// Saturating difference, useful for "cost since checkpoint" deltas.
    pub fn saturating_sub(&self, rhs: &OpCount) -> OpCount {
        OpCount {
            mul: self.mul.saturating_sub(rhs.mul),
            add: self.add.saturating_sub(rhs.add),
            cmp: self.cmp.saturating_sub(rhs.cmp),
            sqrt: self.sqrt.saturating_sub(rhs.sqrt),
            dist_calcs: self.dist_calcs.saturating_sub(rhs.dist_calcs),
            sat_queries: self.sat_queries.saturating_sub(rhs.sat_queries),
            mem_words: self.mem_words.saturating_sub(rhs.mem_words),
        }
    }
}

impl Add for OpCount {
    type Output = OpCount;
    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            cmp: self.cmp + rhs.cmp,
            sqrt: self.sqrt + rhs.sqrt,
            dist_calcs: self.dist_calcs + rhs.dist_calcs,
            sat_queries: self.sat_queries + rhs.sat_queries,
            mem_words: self.mem_words + rhs.mem_words,
        }
    }
}

impl AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

impl Sub for OpCount {
    type Output = OpCount;
    fn sub(self, rhs: OpCount) -> OpCount {
        self.saturating_sub(&rhs)
    }
}

impl fmt::Debug for OpCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OpCount {{ mul: {}, add: {}, cmp: {}, sqrt: {}, dist: {}, sat: {}, mem: {}, mac_equiv: {} }}",
            self.mul, self.add, self.cmp, self.sqrt, self.dist_calcs, self.sat_queries,
            self.mem_words, self.mac_equiv()
        )
    }
}

impl fmt::Display for OpCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MAC-equiv ops", self.mac_equiv())
    }
}

impl std::iter::Sum for OpCount {
    fn sum<I: Iterator<Item = OpCount>>(iter: I) -> OpCount {
        iter.fold(OpCount::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_zero_mac_equiv() {
        assert_eq!(OpCount::ZERO.mac_equiv(), 0);
    }

    #[test]
    fn mac_equiv_weights() {
        let c = OpCount {
            mul: 1,
            add: 2,
            cmp: 3,
            sqrt: 1,
            ..OpCount::ZERO
        };
        assert_eq!(c.mac_equiv(), 1 + 2 + 3 + 8);
    }

    #[test]
    fn addition_is_componentwise() {
        let a = OpCount {
            mul: 1,
            add: 2,
            cmp: 3,
            sqrt: 4,
            dist_calcs: 5,
            sat_queries: 6,
            mem_words: 7,
        };
        let s = a + a;
        assert_eq!(s.mul, 2);
        assert_eq!(s.mem_words, 14);
    }

    #[test]
    fn subtraction_saturates() {
        let a = OpCount {
            mul: 1,
            ..OpCount::ZERO
        };
        let b = OpCount {
            mul: 5,
            ..OpCount::ZERO
        };
        assert_eq!((a - b).mul, 0);
        assert_eq!((b - a).mul, 4);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            OpCount {
                mul: 1,
                ..OpCount::ZERO
            },
            OpCount {
                mul: 2,
                ..OpCount::ZERO
            },
            OpCount {
                mul: 3,
                ..OpCount::ZERO
            },
        ];
        let total: OpCount = parts.into_iter().sum();
        assert_eq!(total.mul, 6);
    }

    #[test]
    fn reset_clears() {
        let mut a = OpCount {
            mul: 9,
            sqrt: 9,
            ..OpCount::ZERO
        };
        a.reset();
        assert_eq!(a, OpCount::ZERO);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", OpCount::ZERO).is_empty());
    }
}
