//! Axis-aligned bounding boxes in the workspace.

use std::fmt;

use crate::{Obb, Vec3};

/// An axis-aligned bounding box in 3D workspace coordinates.
///
/// AABBs are the loose-fitting representation used by MOPED's *first*
/// collision stage: every R-tree node (both obstacle groups and individual
/// obstacles) is AABB-bounded, so a first-stage query only pays the cheap
/// AABB–OBB SAT cost. The paper encodes a 3D AABB as 6 values / 2D as 4
/// values (center + positive halfwidth extents); this type stores the
/// equivalent `min`/`max` corner form and exposes the center/halfwidth view.
///
/// # Example
///
/// ```
/// use moped_geometry::{Aabb, Vec3};
/// let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
/// assert_eq!(a.center(), Vec3::splat(1.0));
/// assert!(a.contains_point(Vec3::splat(0.5)));
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates an AABB from its minimum and maximum corners.
    ///
    /// # Panics
    ///
    /// Panics if any `min` component exceeds the corresponding `max`.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "invalid AABB corners: min {min:?} exceeds max {max:?}"
        );
        Aabb { min, max }
    }

    /// Creates an AABB from a center point and positive halfwidth extents
    /// (the paper's on-chip encoding).
    ///
    /// # Panics
    ///
    /// Panics if any halfwidth is negative.
    pub fn from_center_half(center: Vec3, half: Vec3) -> Self {
        assert!(
            half.x >= 0.0 && half.y >= 0.0 && half.z >= 0.0,
            "negative halfwidth"
        );
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// The tight AABB enclosing an [`Obb`] (how the obstacle AABB SRAM
    /// contents are derived from the OBB obstacle stream).
    pub fn from_obb(obb: &Obb) -> Self {
        // Projection radius of an OBB onto a world axis is the abs-rotation
        // times the halfwidths (Ericson, Real-Time Collision Detection §4).
        let r = obb.rotation().abs();
        let h = obb.half_extents();
        let half = Vec3::new(
            r.m[0][0] * h.x + r.m[0][1] * h.y + r.m[0][2] * h.z,
            r.m[1][0] * h.x + r.m[1][1] * h.y + r.m[1][2] * h.z,
            r.m[2][0] * h.x + r.m[2][1] * h.y + r.m[2][2] * h.z,
        );
        Aabb::from_center_half(obb.center(), half)
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Positive halfwidth extents.
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Smallest AABB containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Volume (area in 2D workloads where z extent is constant).
    pub fn volume(&self) -> f64 {
        let d = self.max - self.min;
        d.x * d.y * d.z
    }

    /// AABB–AABB overlap test (used by the R-tree build and by the
    /// occupancy-grid CODAcc baseline model).
    #[inline]
    pub fn intersects_aabb(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Point containment (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// Grows the box by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative enough to invert the box.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb::new(
            self.min - Vec3::splat(margin),
            self.max + Vec3::splat(margin),
        )
    }
}

impl fmt::Debug for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Aabb[{:?}..{:?}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;

    #[test]
    fn center_half_roundtrip() {
        let a = Aabb::from_center_half(Vec3::new(1.0, 2.0, 3.0), Vec3::splat(0.5));
        assert_eq!(a.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.half_extents(), Vec3::splat(0.5));
    }

    #[test]
    #[should_panic(expected = "invalid AABB")]
    fn inverted_corners_rejected() {
        let _ = Aabb::new(Vec3::splat(1.0), Vec3::ZERO);
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains_aabb(&a));
        assert!(u.contains_aabb(&b));
        assert_eq!(u.volume(), 27.0);
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(1.5), Vec3::splat(2.0));
        assert!(!a.intersects_aabb(&b));
        assert!(!b.intersects_aabb(&a));
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(2.0));
        assert!(a.intersects_aabb(&b));
    }

    #[test]
    fn from_axis_aligned_obb_is_tight() {
        let obb = Obb::axis_aligned(Vec3::new(5.0, 5.0, 5.0), Vec3::new(1.0, 2.0, 3.0));
        let a = Aabb::from_obb(&obb);
        assert_eq!(a.min(), Vec3::new(4.0, 3.0, 2.0));
        assert_eq!(a.max(), Vec3::new(6.0, 7.0, 8.0));
    }

    #[test]
    fn from_rotated_obb_contains_all_corners() {
        let obb = Obb::new(
            Vec3::new(1.0, -2.0, 0.5),
            Vec3::new(2.0, 1.0, 0.5),
            Mat3::from_euler(0.7, 0.3, -1.2),
        );
        let a = Aabb::from_obb(&obb);
        for corner in obb.corners() {
            assert!(a.contains_point(corner), "corner {corner:?} outside {a:?}");
        }
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0)).inflated(0.5);
        assert_eq!(a.min(), Vec3::splat(-0.5));
        assert_eq!(a.max(), Vec3::splat(1.5));
    }
}
