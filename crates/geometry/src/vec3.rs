//! 3D workspace vector.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::OpCount;

/// A 3-component vector used for workspace geometry (obstacle and robot
/// body positions, extents, and axes).
///
/// 2D workloads embed the plane as `z = 0`; the SAT kernels detect flagged
/// 2D boxes and skip the z terms so the *counted* cost matches the paper's
/// 2D formulas.
///
/// # Example
///
/// ```
/// use moped_geometry::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.norm(), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// All-zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit X axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Dot product with operation accounting (3 muls, 2 adds).
    #[inline]
    pub fn dot_counted(self, rhs: Vec3, ops: &mut OpCount) -> f64 {
        ops.mul += 3;
        ops.add += 2;
        self.dot(rhs)
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Cross product with operation accounting (6 muls, 3 adds).
    #[inline]
    pub fn cross_counted(self, rhs: Vec3, ops: &mut OpCount) -> Vec3 {
        ops.mul += 6;
        ops.add += 3;
        self.cross(rhs)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the normalized vector, or `None` for a (near-)zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Linear interpolation: `self + t * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component access by index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn component(self, i: usize) -> f64 {
        match i {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 component index {i} out of range"),
        }
    }

    /// Returns `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 component index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 component index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Debug for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_axes_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn counted_dot_accumulates_ops() {
        let mut ops = OpCount::default();
        let _ = Vec3::X.dot_counted(Vec3::Y, &mut ops);
        assert_eq!(ops.mul, 3);
        assert_eq!(ops.add, 2);
    }

    #[test]
    fn index_roundtrip() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        for i in 0..3 {
            assert_eq!(v[i], v.component(i));
        }
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn component_out_of_range_panics() {
        let _ = Vec3::ZERO.component(3);
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(-1.0, 5.0, 2.0);
        let b = Vec3::new(0.0, -3.0, 2.5);
        assert_eq!(a.min(b), Vec3::new(-1.0, -3.0, 2.0));
        assert_eq!(a.max(b), Vec3::new(0.0, 5.0, 2.5));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 2.0));
    }

    #[test]
    fn array_conversions() {
        let v = Vec3::from([1.0, 2.0, 3.0]);
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }
}
