//! GJK distance computation between convex bodies.
//!
//! The paper's unit-cost analysis builds on the separating-axis theorem,
//! whose foundational citation is Gilbert–Johnson–Keerthi's convex
//! distance algorithm. This module implements GJK for OBB pairs as an
//! *independent exact oracle*: `distance > 0` iff the boxes are disjoint,
//! which cross-validates every SAT kernel (float and fixed-point) in the
//! test suites, and provides the clearance values motion-planning
//! heuristics often want.
//!
//! The implementation is the standard subdistance form: iterate support
//! points of the Minkowski difference, maintain a simplex of at most four
//! vertices, and project the origin onto it until the support direction
//! stops improving.

use crate::{Obb, OpCount, Vec3};

/// Result of a GJK distance query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GjkResult {
    /// Euclidean distance between the bodies (0 when intersecting).
    pub distance: f64,
    /// Whether the bodies intersect (distance == 0 within tolerance).
    pub intersecting: bool,
    /// Iterations the solver used.
    pub iterations: u32,
}

/// Support point of an OBB in world direction `d`: the vertex maximizing
/// `v · d`.
fn support_obb(o: &Obb, d: Vec3) -> Vec3 {
    let h = o.half_extents();
    let local = Vec3::new(
        if o.axis(0).dot(d) >= 0.0 { h.x } else { -h.x },
        if o.axis(1).dot(d) >= 0.0 { h.y } else { -h.y },
        if o.axis(2).dot(d) >= 0.0 { h.z } else { -h.z },
    );
    o.center() + o.rotation() * local
}

/// Support of the Minkowski difference `A ⊖ B` in direction `d`.
fn support(a: &Obb, b: &Obb, d: Vec3, ops: &mut OpCount) -> Vec3 {
    ops.mul += 2 * 9 + 2 * 9; // two axis-projection triples + two rotations
    ops.add += 24;
    support_obb(a, d) - support_obb(b, -d)
}

/// Projects the origin onto the simplex, returning the closest point and
/// retaining only the supporting vertices.
fn closest_on_simplex(simplex: &mut Vec<Vec3>, ops: &mut OpCount) -> Vec3 {
    ops.cmp += simplex.len() as u64;
    match simplex.len() {
        1 => simplex[0],
        2 => {
            let (a, b) = (simplex[0], simplex[1]);
            let ab = b - a;
            let t = (-a).dot(ab) / ab.dot(ab).max(f64::MIN_POSITIVE);
            ops.mul += 6;
            ops.add += 5;
            if t <= 0.0 {
                simplex.truncate(1);
                a
            } else if t >= 1.0 {
                simplex.swap(0, 1);
                simplex.truncate(1);
                b
            } else {
                a + ab * t
            }
        }
        3 => closest_on_triangle(simplex, ops),
        _ => closest_on_tetrahedron(simplex, ops),
    }
}

fn closest_on_triangle(simplex: &mut Vec<Vec3>, ops: &mut OpCount) -> Vec3 {
    ops.mul += 30;
    ops.add += 24;
    let (a, b, c) = (simplex[0], simplex[1], simplex[2]);
    // Voronoi-region walk (Ericson §5.1.5), querying the origin.
    let ab = b - a;
    let ac = c - a;
    let ap = -a;
    let d1 = ab.dot(ap);
    let d2 = ac.dot(ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        simplex.truncate(1);
        return a;
    }
    let bp = -b;
    let d3 = ab.dot(bp);
    let d4 = ac.dot(bp);
    if d3 >= 0.0 && d4 <= d3 {
        simplex.swap(0, 1);
        simplex.truncate(1);
        return b;
    }
    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let t = d1 / (d1 - d3);
        simplex.truncate(2);
        return a + ab * t;
    }
    let cp = -c;
    let d5 = ab.dot(cp);
    let d6 = ac.dot(cp);
    if d6 >= 0.0 && d5 <= d6 {
        simplex.swap(0, 2);
        simplex.truncate(1);
        return c;
    }
    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let t = d2 / (d2 - d6);
        simplex.remove(1);
        return a + ac * t;
    }
    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let t = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        simplex.remove(0);
        return b + (c - b) * t;
    }
    // Interior: origin projects inside the face.
    let denom = 1.0 / (va + vb + vc);
    let v = vb * denom;
    let w = vc * denom;
    a + ab * v + ac * w
}

fn closest_on_tetrahedron(simplex: &mut Vec<Vec3>, ops: &mut OpCount) -> Vec3 {
    // Test the origin against each face; keep the closest feature. If the
    // origin is inside all faces, the bodies intersect (distance 0).
    let (a, b, c, d) = (simplex[0], simplex[1], simplex[2], simplex[3]);
    let faces: [[Vec3; 3]; 4] = [[a, b, c], [a, b, d], [a, c, d], [b, c, d]];
    let mut best: Option<(f64, Vec<Vec3>, Vec3)> = None;
    let mut inside = true;
    for f in faces {
        // Outward test: does the origin lie on the far side of this face
        // from the remaining vertex?
        let rest = if f.contains(&d) {
            if f.contains(&c) && f.contains(&b) {
                a
            } else if f.contains(&c) {
                b
            } else {
                c
            }
        } else {
            d
        };
        let n = (f[1] - f[0]).cross_counted(f[2] - f[0], ops);
        let toward_origin = n.dot(-f[0]);
        let toward_rest = n.dot(rest - f[0]);
        ops.mul += 6;
        ops.add += 6;
        if toward_origin * toward_rest >= 0.0 {
            continue; // origin on the inner side of this face
        }
        inside = false;
        let mut tri = vec![f[0], f[1], f[2]];
        let p = closest_on_triangle(&mut tri, ops);
        let d2 = p.norm_sq();
        if best.as_ref().is_none_or(|(bd, _, _)| d2 < *bd) {
            best = Some((d2, tri, p));
        }
    }
    if inside {
        simplex.truncate(4);
        return Vec3::ZERO;
    }
    let (_, tri, p) = best.expect("origin outside at least one face");
    *simplex = tri;
    p
}

/// Computes the distance between two OBBs with GJK.
///
/// Terminates when the support point stops improving by more than `eps`
/// or after 64 iterations (returns the best bound found).
///
/// # Example
///
/// ```
/// use moped_geometry::{gjk, Obb, OpCount, Vec3};
/// let a = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
/// let b = Obb::axis_aligned(Vec3::new(4.0, 0.0, 0.0), Vec3::splat(1.0));
/// let r = gjk::distance(&a, &b, &mut OpCount::default());
/// assert!((r.distance - 2.0).abs() < 1e-6);
/// assert!(!r.intersecting);
/// ```
pub fn distance(a: &Obb, b: &Obb, ops: &mut OpCount) -> GjkResult {
    let eps = 1e-10;
    let mut dir = b.center() - a.center();
    if dir.norm_sq() < eps {
        dir = Vec3::X;
    }
    let mut simplex = vec![support(a, b, dir, ops)];
    let mut closest = simplex[0];
    for it in 1..=64u32 {
        let d2 = closest.norm_sq();
        if d2 < eps {
            return GjkResult {
                distance: 0.0,
                intersecting: true,
                iterations: it,
            };
        }
        let new_dir = -closest;
        let s = support(a, b, new_dir, ops);
        // No progress toward the origin ⇒ `closest` is the true minimum.
        ops.cmp += 1;
        if new_dir.dot(s) - new_dir.dot(closest) <= eps * (1.0 + d2) {
            return GjkResult {
                distance: d2.sqrt(),
                intersecting: false,
                iterations: it,
            };
        }
        simplex.push(s);
        closest = closest_on_simplex(&mut simplex, ops);
        // Exact `closest == Vec3::ZERO` would hinge on one rounding chain
        // hitting 0.0 bit-for-bit; the loop-head `d2 < eps` test would
        // catch the same containment one iteration later anyway.
        if simplex.len() == 4 && closest.norm_sq() < eps {
            return GjkResult {
                distance: 0.0,
                intersecting: true,
                iterations: it,
            };
        }
    }
    let d = closest.norm();
    GjkResult {
        distance: d,
        intersecting: d < 1e-7,
        iterations: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;

    #[test]
    fn axis_aligned_gap_distance() {
        let a = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
        let b = Obb::axis_aligned(Vec3::new(5.0, 0.0, 0.0), Vec3::splat(1.0));
        let r = distance(&a, &b, &mut OpCount::default());
        assert!((r.distance - 3.0).abs() < 1e-6, "got {}", r.distance);
        assert!(!r.intersecting);
    }

    #[test]
    fn overlapping_boxes_report_zero() {
        let a = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
        let b = Obb::axis_aligned(Vec3::new(1.0, 0.5, 0.0), Vec3::splat(1.0));
        let r = distance(&a, &b, &mut OpCount::default());
        assert!(r.intersecting);
        assert_eq!(r.distance, 0.0);
    }

    #[test]
    fn corner_to_corner_diagonal_distance() {
        let a = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
        let b = Obb::axis_aligned(Vec3::splat(3.0), Vec3::splat(1.0));
        let r = distance(&a, &b, &mut OpCount::default());
        let expect = (Vec3::splat(1.0) - Vec3::splat(2.0)).norm();
        assert!((r.distance - expect).abs() < 1e-6, "got {}", r.distance);
    }

    #[test]
    fn rotated_diamond_gap() {
        // A 45°-rotated square's corner reaches sqrt(2); gap = separation
        // - 1 - sqrt(2).
        let a = Obb::axis_aligned(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        let b = Obb::new(
            Vec3::new(5.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 1.0),
            Mat3::rotation_z(std::f64::consts::FRAC_PI_4),
        );
        let r = distance(&a, &b, &mut OpCount::default());
        let expect = 5.0 - 1.0 - 2f64.sqrt();
        assert!(
            (r.distance - expect).abs() < 1e-6,
            "got {}, want {expect}",
            r.distance
        );
    }

    #[test]
    fn agrees_with_sat_on_random_pairs() {
        let mut state = 0xDEADBEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 10_000.0
        };
        let mut ops = OpCount::default();
        let mut disagreements = 0;
        for _ in 0..500 {
            let a = Obb::new(
                Vec3::new(rnd() * 20.0, rnd() * 20.0, rnd() * 20.0),
                Vec3::new(0.5 + rnd() * 3.0, 0.5 + rnd() * 3.0, 0.5 + rnd() * 3.0),
                Mat3::from_euler(rnd() * 6.0 - 3.0, rnd() * 3.0 - 1.5, rnd() * 6.0 - 3.0),
            );
            let b = Obb::new(
                Vec3::new(rnd() * 20.0, rnd() * 20.0, rnd() * 20.0),
                Vec3::new(0.5 + rnd() * 3.0, 0.5 + rnd() * 3.0, 0.5 + rnd() * 3.0),
                Mat3::from_euler(rnd() * 6.0 - 3.0, rnd() * 3.0 - 1.5, rnd() * 6.0 - 3.0),
            );
            let sat_hit = crate::sat::obb_obb(&a, &b, &mut ops);
            let gjk = distance(&a, &b, &mut ops);
            // Tolerate disagreement only in a thin shell around contact.
            if sat_hit != gjk.intersecting && gjk.distance > 1e-6 {
                disagreements += 1;
            }
        }
        assert_eq!(
            disagreements, 0,
            "SAT and GJK must agree away from grazing contact"
        );
    }

    #[test]
    fn identical_boxes_intersect() {
        let a = Obb::from_euler(Vec3::splat(3.0), Vec3::new(2.0, 1.0, 0.5), 0.4, 0.2, 0.7);
        let r = distance(&a, &a, &mut OpCount::default());
        assert!(r.intersecting);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Obb::from_euler(Vec3::ZERO, Vec3::splat(1.0), 0.1, 0.2, 0.3);
        let b = Obb::from_euler(Vec3::new(6.0, 2.0, -1.0), Vec3::splat(1.5), -0.5, 0.4, 0.0);
        let mut ops = OpCount::default();
        let ab = distance(&a, &b, &mut ops).distance;
        let ba = distance(&b, &a, &mut ops).distance;
        assert!((ab - ba).abs() < 1e-6);
    }
}
