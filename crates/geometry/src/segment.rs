//! Configuration-space segment interpolation.
//!
//! RRT\* must verify that the *entire movement course* between two
//! configurations is collision free (§II-C), so motions are discretized
//! into intermediate configurations at a fixed resolution and each pose is
//! collision checked.

use crate::Config;

/// Resolution policy for discretizing a straight configuration-space
/// motion into collision-check poses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterpolationSteps {
    /// Maximum configuration-space distance between consecutive checked
    /// poses.
    pub resolution: f64,
    /// Hard cap on the number of intermediate poses (guards against
    /// degenerate long motions).
    pub max_steps: usize,
}

impl InterpolationSteps {
    /// Creates a policy with the given resolution and a 64-pose cap.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive.
    pub fn with_resolution(resolution: f64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        InterpolationSteps {
            resolution,
            max_steps: 64,
        }
    }

    /// Number of poses (including the endpoint, excluding the start) that
    /// a motion of length `dist` is split into.
    pub fn count(&self, dist: f64) -> usize {
        if dist <= f64::EPSILON {
            return 1;
        }
        ((dist / self.resolution).ceil() as usize).clamp(1, self.max_steps)
    }
}

impl Default for InterpolationSteps {
    /// One pose per 2.0 configuration-space units, matching the evaluation
    /// workspace scale (300-unit extents, ~5-unit steering steps).
    fn default() -> Self {
        InterpolationSteps::with_resolution(2.0)
    }
}

/// Returns the checked poses of the straight motion `from -> to` under the
/// given policy: evenly spaced poses ending exactly at `to` (the start pose
/// is assumed already validated when its node entered the tree).
///
/// # Example
///
/// ```
/// use moped_geometry::{interpolate, Config, InterpolationSteps};
/// let from = Config::new(&[0.0, 0.0]);
/// let to = Config::new(&[4.0, 0.0]);
/// let poses = interpolate(&from, &to, &InterpolationSteps::with_resolution(2.0));
/// assert_eq!(poses.len(), 2);
/// assert_eq!(poses[1], to);
/// ```
pub fn interpolate(from: &Config, to: &Config, steps: &InterpolationSteps) -> Vec<Config> {
    let dist = from.distance(to);
    let n = steps.count(dist);
    let mut poses: Vec<Config> = (1..n).map(|i| from.lerp(to, i as f64 / n as f64)).collect();
    // Emit the endpoint exactly rather than via lerp(.., 1.0), which can
    // differ by an ULP and would make the planner store a drifted node.
    poses.push(*to);
    poses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_motion_has_single_pose() {
        let a = Config::new(&[1.0, 1.0]);
        let poses = interpolate(&a, &a, &InterpolationSteps::default());
        assert_eq!(poses, vec![a]);
    }

    #[test]
    fn last_pose_is_exact_target() {
        let a = Config::new(&[0.0, 0.0, 0.0]);
        let b = Config::new(&[3.7, -1.2, 0.4]);
        let poses = interpolate(&a, &b, &InterpolationSteps::with_resolution(0.5));
        assert_eq!(*poses.last().unwrap(), b);
    }

    #[test]
    fn spacing_respects_resolution() {
        let a = Config::new(&[0.0, 0.0]);
        let b = Config::new(&[10.0, 0.0]);
        let policy = InterpolationSteps::with_resolution(1.0);
        let poses = interpolate(&a, &b, &policy);
        assert_eq!(poses.len(), 10);
        let mut prev = a;
        for p in &poses {
            assert!(prev.distance(p) <= 1.0 + 1e-9);
            prev = *p;
        }
    }

    #[test]
    fn max_steps_caps_pose_count() {
        let a = Config::new(&[0.0]);
        let b = Config::new(&[1e9]);
        let policy = InterpolationSteps {
            resolution: 1.0,
            max_steps: 16,
        };
        assert_eq!(interpolate(&a, &b, &policy).len(), 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_rejected() {
        let _ = InterpolationSteps::with_resolution(0.0);
    }

    #[test]
    fn count_of_short_motion_is_one() {
        let policy = InterpolationSteps::with_resolution(2.0);
        assert_eq!(policy.count(0.5), 1);
        assert_eq!(policy.count(2.0), 1);
        assert_eq!(policy.count(2.1), 2);
    }
}
