//! Oriented bounding boxes in the workspace.

use std::fmt;

use crate::{Aabb, Mat3, OpCount, Vec3};

/// An oriented bounding box (OBB) in 3D workspace coordinates.
///
/// OBBs are the tight-fitting representation MOPED uses for robot bodies
/// everywhere, and for obstacles in the exact *second* collision stage.
/// The paper encodes a 3D OBB as 15 values (center 3, halfwidths 3,
/// rotation 9) and a 2D OBB as 8 values (center 2, halfwidths 2, rotation
/// 4); the [`Obb::planar`] flag records which encoding (and hence which SAT
/// cost) applies.
///
/// # Example
///
/// ```
/// use moped_geometry::{Obb, Vec3};
/// let a = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
/// let b = Obb::from_euler(Vec3::new(1.0, 1.0, 0.0), Vec3::splat(1.0), 0.5, 0.0, 0.0);
/// assert!(a.intersects(&b));
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Obb {
    center: Vec3,
    half: Vec3,
    rot: Mat3,
    planar: bool,
}

impl Obb {
    /// Creates an OBB from center, positive halfwidth extents, and a
    /// rotation whose columns are the box's local axes.
    ///
    /// # Panics
    ///
    /// Panics if any halfwidth is negative.
    pub fn new(center: Vec3, half: Vec3, rot: Mat3) -> Self {
        assert!(
            half.x >= 0.0 && half.y >= 0.0 && half.z >= 0.0,
            "negative halfwidth"
        );
        Obb {
            center,
            half,
            rot,
            planar: false,
        }
    }

    /// Creates an axis-aligned OBB (identity rotation).
    pub fn axis_aligned(center: Vec3, half: Vec3) -> Self {
        Obb::new(center, half, Mat3::IDENTITY)
    }

    /// Creates an OBB oriented by Z-Y-X Euler angles (yaw, pitch, roll).
    pub fn from_euler(center: Vec3, half: Vec3, yaw: f64, pitch: f64, roll: f64) -> Self {
        Obb::new(center, half, Mat3::from_euler(yaw, pitch, roll))
    }

    /// Creates a planar (2D) OBB: a rectangle in the `z = center.z` plane
    /// rotated by `theta` about Z. Planar boxes use the 4-axis 2D SAT and
    /// are charged the paper's 8-value 2D encoding cost.
    pub fn planar(center: Vec3, half_x: f64, half_y: f64, theta: f64) -> Self {
        let mut obb = Obb::new(
            center,
            Vec3::new(half_x, half_y, 0.5),
            Mat3::rotation_z(theta),
        );
        obb.planar = true;
        obb
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Positive halfwidth extents along the local axes.
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        self.half
    }

    /// Orientation matrix; column `i` is local axis `i` in world frame.
    #[inline]
    pub fn rotation(&self) -> Mat3 {
        self.rot
    }

    /// Whether this box uses the planar (2D) encoding.
    #[inline]
    pub fn is_planar(&self) -> bool {
        self.planar
    }

    /// Local axis `i` (unit length for proper rotations).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn axis(&self, i: usize) -> Vec3 {
        self.rot.col(i)
    }

    /// Returns a copy translated so its center is `center`.
    pub fn at_center(&self, center: Vec3) -> Obb {
        Obb { center, ..*self }
    }

    /// Returns a copy with orientation `rot` (clears nothing else).
    pub fn with_rotation(&self, rot: Mat3) -> Obb {
        Obb {
            rot,
            planar: self.planar,
            ..*self
        }
    }

    /// The 8 world-space corners.
    pub fn corners(&self) -> [Vec3; 8] {
        let ax = self.axis(0) * self.half.x;
        let ay = self.axis(1) * self.half.y;
        let az = self.axis(2) * self.half.z;
        let c = self.center;
        [
            c + ax + ay + az,
            c + ax + ay - az,
            c + ax - ay + az,
            c + ax - ay - az,
            c - ax + ay + az,
            c - ax + ay - az,
            c - ax - ay + az,
            c - ax - ay - az,
        ]
    }

    /// The tight enclosing AABB (delegates to [`Aabb::from_obb`]).
    pub fn aabb(&self) -> Aabb {
        Aabb::from_obb(self)
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        8.0 * self.half.x * self.half.y * self.half.z
    }

    /// Exact point containment: transforms `p` into the local frame and
    /// compares against the halfwidths.
    pub fn contains_point(&self, p: Vec3) -> bool {
        let d = p - self.center;
        d.dot(self.axis(0)).abs() <= self.half.x + 1e-12
            && d.dot(self.axis(1)).abs() <= self.half.y + 1e-12
            && d.dot(self.axis(2)).abs() <= self.half.z + 1e-12
    }

    /// Exact OBB–OBB intersection via the Separating Axis Theorem.
    ///
    /// Convenience wrapper over [`crate::sat::obb_obb`] that discards the
    /// operation count.
    pub fn intersects(&self, other: &Obb) -> bool {
        let mut scratch = OpCount::default();
        crate::sat::obb_obb(self, other, &mut scratch)
    }

    /// Exact OBB–OBB intersection, charging operations to `ops`.
    pub fn intersects_counted(&self, other: &Obb, ops: &mut OpCount) -> bool {
        crate::sat::obb_obb(self, other, ops)
    }

    /// Number of 16-bit words in the paper's on-chip encoding of this box
    /// (15 for 3D, 8 for 2D).
    pub fn encoded_words(&self) -> u64 {
        if self.planar {
            8
        } else {
            15
        }
    }
}

impl fmt::Debug for Obb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Obb{{ c: {:?}, h: {:?}, planar: {} }}",
            self.center, self.half, self.planar
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_of_unit_box() {
        let obb = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
        let cs = obb.corners();
        assert_eq!(cs.len(), 8);
        for c in cs {
            assert_eq!(c.abs(), Vec3::splat(1.0));
        }
    }

    #[test]
    fn contains_center_and_rejects_far_point() {
        let obb = Obb::from_euler(Vec3::splat(1.0), Vec3::splat(0.5), 0.3, 0.2, 0.1);
        assert!(obb.contains_point(obb.center()));
        assert!(!obb.contains_point(Vec3::splat(10.0)));
    }

    #[test]
    fn rotated_box_contains_rotated_corner() {
        let rot = Mat3::rotation_z(std::f64::consts::FRAC_PI_4);
        let obb = Obb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), rot);
        // The rotated local corner (1,1,1) sits at rot * (1,1,1).
        let corner = rot * Vec3::splat(1.0);
        assert!(obb.contains_point(corner * 0.999));
        assert!(!obb.contains_point(corner * 1.01));
    }

    #[test]
    fn volume_is_product_of_extents() {
        let obb = Obb::axis_aligned(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(obb.volume(), 48.0);
    }

    #[test]
    fn encoded_words_match_paper() {
        let o3 = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
        let o2 = Obb::planar(Vec3::ZERO, 1.0, 1.0, 0.0);
        assert_eq!(o3.encoded_words(), 15);
        assert_eq!(o2.encoded_words(), 8);
    }

    #[test]
    fn planar_flag_set_only_by_planar_ctor() {
        assert!(Obb::planar(Vec3::ZERO, 1.0, 1.0, 0.3).is_planar());
        assert!(!Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0)).is_planar());
    }

    #[test]
    fn at_center_preserves_shape() {
        let o = Obb::from_euler(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0), 0.1, 0.2, 0.3);
        let moved = o.at_center(Vec3::splat(5.0));
        assert_eq!(moved.half_extents(), o.half_extents());
        assert_eq!(moved.rotation(), o.rotation());
        assert_eq!(moved.center(), Vec3::splat(5.0));
    }

    #[test]
    #[should_panic(expected = "negative halfwidth")]
    fn negative_halfwidth_rejected() {
        let _ = Obb::axis_aligned(Vec3::ZERO, Vec3::new(-1.0, 1.0, 1.0));
    }

    #[test]
    fn intersects_self() {
        let o = Obb::from_euler(Vec3::ZERO, Vec3::splat(1.0), 0.5, 0.5, 0.5);
        assert!(o.intersects(&o));
    }
}
