//! Flexible-dimension configuration-space points.

use std::fmt;
use std::ops::Index;

use crate::OpCount;

/// Maximum supported degrees of freedom.
///
/// MOPED targets planning problems from 2–13 DoF; the paper's evaluation
/// tops out at the 7-DoF xArm-7. Eight inline slots keep [`Config`] a cheap
/// `Copy` type while covering every evaluated robot.
pub const MAX_DOF: usize = 8;

/// A point in configuration space with run-time dimension (2..=[`MAX_DOF`]).
///
/// Stored inline so that planner hot loops never allocate. The unused tail
/// components are always zero, which lets distance computations run over
/// the full array without branching (the *counted* cost, however, is
/// charged per the actual dimension, matching the paper's cost model).
///
/// # Example
///
/// ```
/// use moped_geometry::Config;
/// let a = Config::new(&[0.0, 0.0, 0.0]);
/// let b = Config::new(&[3.0, 4.0, 0.0]);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Config {
    coords: [f64; MAX_DOF],
    dim: u8,
}

impl Config {
    /// Creates a configuration from a coordinate slice.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len()` is 0 or exceeds [`MAX_DOF`].
    pub fn new(coords: &[f64]) -> Self {
        assert!(
            !coords.is_empty() && coords.len() <= MAX_DOF,
            "configuration dimension {} out of range 1..={MAX_DOF}",
            coords.len()
        );
        let mut c = [0.0; MAX_DOF];
        c[..coords.len()].copy_from_slice(coords);
        Config {
            coords: c,
            dim: coords.len() as u8,
        }
    }

    /// The all-zero configuration of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or exceeds [`MAX_DOF`].
    pub fn zeros(dim: usize) -> Self {
        assert!((1..=MAX_DOF).contains(&dim));
        Config {
            coords: [0.0; MAX_DOF],
            dim: dim as u8,
        }
    }

    /// Number of degrees of freedom.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Coordinates as a slice of length [`Config::dim`].
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coords[..self.dim as usize]
    }

    /// Mutable coordinate access.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.coords[..self.dim as usize]
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if dimensions differ.
    #[inline]
    pub fn distance_sq(&self, other: &Config) -> f64 {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut acc = 0.0;
        for i in 0..self.dim as usize {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Squared distance with operation accounting: `d` subs, `d` muls,
    /// `d-1` adds — the distance-calculator cost in the paper's neighbor
    /// search analysis scales linearly with DoF exactly like this.
    #[inline]
    pub fn distance_sq_counted(&self, other: &Config, ops: &mut OpCount) -> f64 {
        let d = self.dim as u64;
        ops.mul += d;
        ops.add += 2 * d - 1;
        ops.dist_calcs += 1;
        self.distance_sq(other)
    }

    /// Counted squared distance to a raw coordinate slice (the SoA leaf
    /// layout of the flat SI-MBR arena). Arithmetic order and op charges
    /// are identical to [`Config::distance_sq_counted`].
    #[inline]
    pub fn distance_sq_to_slice_counted(&self, other: &[f64], ops: &mut OpCount) -> f64 {
        debug_assert_eq!(self.dim as usize, other.len(), "dimension mismatch");
        let d = self.dim as u64;
        ops.mul += d;
        ops.add += 2 * d - 1;
        ops.dist_calcs += 1;
        let mut acc = 0.0;
        for (i, &o) in other.iter().enumerate() {
            let d = self.coords[i] - o;
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Config) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Counted Euclidean distance (adds one `sqrt` to the squared cost).
    #[inline]
    pub fn distance_counted(&self, other: &Config, ops: &mut OpCount) -> f64 {
        ops.sqrt += 1;
        self.distance_sq_counted(other, ops).sqrt()
    }

    /// Linear interpolation `self + t * (other - self)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if dimensions differ.
    pub fn lerp(&self, other: &Config, t: f64) -> Config {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut out = *self;
        for i in 0..self.dim as usize {
            out.coords[i] += t * (other.coords[i] - self.coords[i]);
        }
        out
    }

    /// Steers from `self` toward `target`: returns the point at most
    /// `step` away from `self` along the straight segment (RRT\*'s
    /// steering operation, modelling per-move kinematic limits).
    ///
    /// Returns `target` itself when it is within `step`.
    pub fn steer_toward(&self, target: &Config, step: f64) -> Config {
        let d = self.distance(target);
        if d <= step || d <= f64::EPSILON {
            *target
        } else {
            self.lerp(target, step / d)
        }
    }

    /// Returns `true` if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }
}

impl Index<usize> for Config {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config{:?}", self.as_slice())
    }
}

impl From<&[f64]> for Config {
    fn from(s: &[f64]) -> Self {
        Config::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_manual() {
        let a = Config::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Config::new(&[0.0, 0.0, 0.0, 0.0, 0.0]);
        let expect = (1.0 + 4.0 + 9.0 + 16.0 + 25.0f64).sqrt();
        assert!((a.distance(&b) - expect).abs() < 1e-12);
    }

    #[test]
    fn unused_tail_does_not_affect_distance() {
        let a = Config::new(&[1.0, 1.0]);
        let b = Config::new(&[2.0, 2.0]);
        assert!((a.distance(&b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn steer_within_step_returns_target() {
        let a = Config::new(&[0.0, 0.0]);
        let b = Config::new(&[1.0, 0.0]);
        assert_eq!(a.steer_toward(&b, 2.0), b);
    }

    #[test]
    fn steer_beyond_step_is_clamped() {
        let a = Config::new(&[0.0, 0.0]);
        let b = Config::new(&[10.0, 0.0]);
        let s = a.steer_toward(&b, 1.0);
        assert!((s.distance(&a) - 1.0).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn steer_to_self_is_identity() {
        let a = Config::new(&[3.0, -1.0, 0.5]);
        assert_eq!(a.steer_toward(&a, 1.0), a);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Config::new(&[0.0, 0.0, 0.0]);
        let b = Config::new(&[2.0, -4.0, 8.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn counted_distance_scales_with_dim() {
        let mut ops = OpCount::default();
        let a = Config::zeros(7);
        let b = Config::new(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let _ = a.distance_counted(&b, &mut ops);
        assert_eq!(ops.mul, 7);
        assert_eq!(ops.add, 13);
        assert_eq!(ops.sqrt, 1);
        assert_eq!(ops.dist_calcs, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_dim_rejected() {
        let _ = Config::new(&[]);
    }

    #[test]
    #[should_panic]
    fn overlong_rejected() {
        let _ = Config::new(&[0.0; MAX_DOF + 1]);
    }

    #[test]
    fn index_reads_coordinates() {
        let a = Config::new(&[5.0, 6.0]);
        assert_eq!(a[0], 5.0);
        assert_eq!(a[1], 6.0);
    }
}
