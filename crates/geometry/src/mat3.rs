//! 3×3 rotation matrices.

use std::fmt;
use std::ops::Mul;

use crate::{OpCount, Vec3};

/// A 3×3 matrix, stored row-major, used for OBB orientations.
///
/// The paper encodes each 3D OBB's orientation as a 9-value rotation matrix
/// (4 values for 2D); this type is that encoding.
///
/// # Example
///
/// ```
/// use moped_geometry::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major elements: `m[row][col]`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// Creates a matrix whose *columns* are the given vectors.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Rotation about the Z axis by `theta` radians (the 2D rotation used
    /// by the planar mobile-robot workloads).
    pub fn rotation_z(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Rotation about the Y axis by `theta` radians.
    pub fn rotation_y(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c])
    }

    /// Rotation about the X axis by `theta` radians.
    pub fn rotation_x(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c])
    }

    /// Z-Y-X (yaw, pitch, roll) Euler-angle rotation, the convention used
    /// for the 6-DoF drone model.
    pub fn from_euler(yaw: f64, pitch: f64, roll: f64) -> Self {
        Mat3::rotation_z(yaw) * Mat3::rotation_y(pitch) * Mat3::rotation_x(roll)
    }

    /// The `i`-th column as a vector. Columns of an OBB rotation are the
    /// box's local axes expressed in world coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn col(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[0][i], self.m[1][i], self.m[2][i])
    }

    /// The `i`-th row as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Matrix transpose (the inverse, for rotations).
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Component-wise absolute value, used by the SAT fast paths.
    pub fn abs(&self) -> Mat3 {
        let mut out = self.m;
        for row in &mut out {
            for v in row.iter_mut() {
                *v = v.abs();
            }
        }
        Mat3 { m: out }
    }

    /// Matrix–vector product with operation accounting (9 muls, 6 adds).
    #[inline]
    pub fn mul_vec_counted(&self, v: Vec3, ops: &mut OpCount) -> Vec3 {
        ops.mul += 9;
        ops.add += 6;
        *self * v
    }

    /// Returns `true` if `self` is orthonormal with determinant +1 within
    /// tolerance `eps` — i.e. a proper rotation.
    pub fn is_rotation(&self, eps: f64) -> bool {
        let t = *self * self.transpose();
        let mut ortho = true;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                ortho &= (t.m[r][c] - expect).abs() <= eps;
            }
        }
        ortho && (self.determinant() - 1.0).abs() <= eps
    }

    /// Matrix determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (0..3).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        Mat3 { m: out }
    }
}

impl fmt::Debug for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{:?}", self.m[0])?;
        writeln!(f, " {:?}", self.m[1])?;
        write!(f, " {:?}]", self.m[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_is_rotation() {
        assert!(Mat3::IDENTITY.is_rotation(1e-12));
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        assert!((r * Vec3::X - Vec3::Y).norm() < 1e-12);
        assert!((r * Vec3::Y + Vec3::X).norm() < 1e-12);
        assert!(r.is_rotation(1e-12));
    }

    #[test]
    fn euler_composition_is_rotation() {
        let r = Mat3::from_euler(0.3, -1.1, 2.5);
        assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn transpose_is_inverse_for_rotations() {
        let r = Mat3::from_euler(0.7, 0.2, -0.4);
        let t = r * r.transpose();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((t.m[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rotation_pi_flips_in_plane() {
        let r = Mat3::rotation_z(PI);
        assert!((r * Vec3::X + Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn cols_and_rows_agree_with_layout() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.row(0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.col(0), Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(m.determinant(), 0.0);
    }

    #[test]
    fn from_cols_roundtrip() {
        let m = Mat3::from_cols(Vec3::X, Vec3::Y, Vec3::Z);
        assert_eq!(m, Mat3::IDENTITY);
    }

    #[test]
    fn counted_mul_vec_accumulates() {
        let mut ops = OpCount::default();
        let _ = Mat3::IDENTITY.mul_vec_counted(Vec3::X, &mut ops);
        assert_eq!(ops.mul, 9);
        assert_eq!(ops.add, 6);
    }
}
