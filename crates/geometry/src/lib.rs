//! Geometric kernels for the MOPED motion-planning engine.
//!
//! This crate implements every low-level geometric primitive the MOPED
//! co-design (HPCA'24) relies on:
//!
//! * [`Vec3`] / [`Mat3`] — 3D workspace linear algebra,
//! * [`Config`] — a flexible-dimension configuration-space point (2–8 DoF),
//! * [`Aabb`] — axis-aligned bounding boxes (the cheap, loose-fitting
//!   representation used by the R-tree first collision stage),
//! * [`Obb`] — oriented bounding boxes (the tight-fitting representation
//!   used by the exact second collision stage),
//! * [`sat`] — Separating-Axis-Theorem intersection tests (OBB–OBB 15-axis
//!   for 3D, 4-axis for 2D; AABB–OBB reduced-cost variants),
//! * [`Rect`] — d-dimensional minimum bounding rectangles (MBRs) in
//!   configuration space, with the MINDIST lower bound used for
//!   branch-and-bound nearest-neighbor search,
//! * [`OpCount`] — the operation-count accounting that every computational
//!   cost figure in the paper's evaluation is derived from.
//!
//! # Example
//!
//! ```
//! use moped_geometry::{Obb, Vec3, OpCount};
//!
//! let a = Obb::axis_aligned(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 1.0, 1.0));
//! let b = Obb::from_euler(Vec3::new(1.5, 0.0, 0.0), Vec3::new(1.0, 1.0, 1.0), 0.4, 0.0, 0.0);
//! let mut ops = OpCount::default();
//! assert!(a.intersects_counted(&b, &mut ops));
//! assert!(ops.mul > 0);
//! ```

#![deny(missing_docs)]

mod aabb;
mod config;
pub mod gjk;
mod mat3;
mod obb;
mod ops;
mod rect;
pub mod sat;
mod segment;
mod vec3;

pub use aabb::Aabb;
pub use config::{Config, MAX_DOF};
pub use mat3::Mat3;
pub use obb::Obb;
pub use ops::OpCount;
pub use rect::Rect;
pub use segment::{interpolate, InterpolationSteps};
pub use vec3::Vec3;
