//! d-dimensional minimum bounding rectangles (MBRs) in configuration space.

use std::fmt;

use crate::{Config, OpCount, MAX_DOF};

/// A d-dimensional axis-aligned minimum bounding rectangle over
/// configuration-space points.
///
/// MBRs are the node payload of both MOPED trees: obstacle R-tree nodes
/// bound workspace boxes, while SI-MBR-Tree nodes bound exploration-tree
/// configurations. The paper stores each MBR as `2d` 16-bit values
/// (`d` minimum coordinates followed by `d` maximum coordinates); this type
/// is the double-precision algorithm-level equivalent.
///
/// # Example
///
/// ```
/// use moped_geometry::{Config, Rect};
/// let r = Rect::from_point(&Config::new(&[1.0, 1.0]));
/// let r = r.union_point(&Config::new(&[3.0, 0.0]));
/// assert_eq!(r.mindist_sq(&Config::new(&[2.0, 0.5]), &mut Default::default()), 0.0);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Rect {
    lo: Config,
    hi: Config,
}

impl Rect {
    /// A degenerate rectangle covering exactly one point.
    pub fn from_point(p: &Config) -> Self {
        Rect { lo: *p, hi: *p }
    }

    /// Creates a rectangle from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or any `lo` coordinate exceeds `hi`.
    pub fn new(lo: Config, hi: Config) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "dimension mismatch");
        for i in 0..lo.dim() {
            assert!(lo[i] <= hi[i], "inverted rect on axis {i}");
        }
        Rect { lo, hi }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &Config {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &Config {
        &self.hi
    }

    /// Center point.
    pub fn center(&self) -> Config {
        self.lo.lerp(&self.hi, 0.5)
    }

    /// Smallest rectangle containing `self` and the point `p`.
    pub fn union_point(&self, p: &Config) -> Rect {
        debug_assert_eq!(self.dim(), p.dim());
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..self.dim() {
            lo.as_mut_slice()[i] = lo[i].min(p[i]);
            hi.as_mut_slice()[i] = hi[i].max(p[i]);
        }
        Rect { lo, hi }
    }

    /// Smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..self.dim() {
            lo.as_mut_slice()[i] = lo[i].min(other.lo[i]);
            hi.as_mut_slice()[i] = hi[i].max(other.hi[i]);
        }
        Rect { lo, hi }
    }

    /// Generalized d-volume ("area" in the paper's insertion criterion).
    pub fn measure(&self) -> f64 {
        let mut m = 1.0;
        for i in 0..self.dim() {
            m *= self.hi[i] - self.lo[i];
        }
        m
    }

    /// Sum of side lengths (margin), a common R-tree split tie-breaker.
    pub fn margin(&self) -> f64 {
        (0..self.dim()).map(|i| self.hi[i] - self.lo[i]).sum()
    }

    /// The *area enlargement* incurred by absorbing point `p`:
    /// `measure(union) - measure(self)` — the quantity the conventional
    /// insertion descent minimizes at every level (§III-C, Fig 9).
    ///
    /// Charges `2d` comparisons (the min/max per axis), `d` subs and the
    /// two `d`-term products to `ops`.
    pub fn enlargement_counted(&self, p: &Config, ops: &mut OpCount) -> f64 {
        let d = self.dim() as u64;
        ops.cmp += 2 * d;
        ops.add += 2 * d;
        ops.mul += 2 * (d - 1).max(1);
        let u = self.union_point(p);
        u.measure() - self.measure()
    }

    /// Point containment (boundary inclusive).
    pub fn contains_point(&self, p: &Config) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        (0..self.dim()).all(|i| p[i] >= self.lo[i] && p[i] <= self.hi[i])
    }

    /// Returns `true` if `other` lies entirely within `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains_point(&other.lo) && self.contains_point(&other.hi)
    }

    /// Rectangle overlap test.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && self.hi[i] >= other.lo[i])
    }

    /// MINDIST²: squared minimum distance from point `q` to any point of
    /// the rectangle (Cheung & Fu 1998). Zero when `q` is inside.
    ///
    /// This is the branch-and-bound lower bound that lets SI-MBR-Tree
    /// search skip whole subtrees (§III-B): every leaf under an MBR is at
    /// least `MINDIST` away from the query.
    ///
    /// Charges per-axis clamp comparisons plus the squared-sum arithmetic.
    pub fn mindist_sq(&self, q: &Config, ops: &mut OpCount) -> f64 {
        debug_assert_eq!(self.dim(), q.dim());
        let d = self.dim();
        ops.cmp += 2 * d as u64;
        ops.mul += d as u64;
        ops.add += (2 * d - 1) as u64;
        let mut acc = 0.0;
        for i in 0..d {
            let v = q[i];
            let excess = if v < self.lo[i] {
                self.lo[i] - v
            } else if v > self.hi[i] {
                v - self.hi[i]
            } else {
                0.0
            };
            acc += excess * excess;
        }
        acc
    }

    /// MINDIST² computed directly over SoA rect planes: `lo`/`hi` are the
    /// per-axis slices of a flat arena layout, so no `Rect` value has to be
    /// materialized on the search hot path. Arithmetic order and op charges
    /// are identical to [`Rect::mindist_sq`].
    #[inline]
    pub fn mindist_sq_planes(lo: &[f64], hi: &[f64], q: &Config, ops: &mut OpCount) -> f64 {
        let d = q.dim();
        debug_assert_eq!(lo.len(), d);
        debug_assert_eq!(hi.len(), d);
        ops.cmp += 2 * d as u64;
        ops.mul += d as u64;
        ops.add += (2 * d - 1) as u64;
        let mut acc = 0.0;
        for i in 0..d {
            let v = q[i];
            let excess = if v < lo[i] {
                lo[i] - v
            } else if v > hi[i] {
                v - hi[i]
            } else {
                0.0
            };
            acc += excess * excess;
        }
        acc
    }

    /// Number of 16-bit words in the paper's on-chip MBR encoding (`2d`).
    pub fn encoded_words(&self) -> u64 {
        2 * self.dim() as u64
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rect[{:?}..{:?}]",
            self.lo.as_slice(),
            self.hi.as_slice()
        )
    }
}

/// Builds the smallest rectangle covering an iterator of points.
///
/// Returns `None` on an empty iterator.
pub(crate) fn bounding_rect<'a, I: IntoIterator<Item = &'a Config>>(points: I) -> Option<Rect> {
    let mut it = points.into_iter();
    let first = it.next()?;
    let mut r = Rect::from_point(first);
    for p in it {
        r = r.union_point(p);
    }
    Some(r)
}

impl FromIterator<Config> for Rect {
    /// Collects points into their bounding rectangle.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator; use [`Rect::from_point`] plus unions
    /// when emptiness is possible.
    fn from_iter<I: IntoIterator<Item = Config>>(iter: I) -> Rect {
        let pts: Vec<Config> = iter.into_iter().collect();
        bounding_rect(pts.iter()).expect("cannot bound an empty point set")
    }
}

// Keep MAX_DOF referenced so the rect encoding cap is explicit.
const _: () = assert!(MAX_DOF <= 16, "MBR 16-bit encoding assumes small DoF");

#[cfg(test)]
mod tests {
    use super::*;

    fn c2(x: f64, y: f64) -> Config {
        Config::new(&[x, y])
    }

    #[test]
    fn union_point_expands() {
        let r = Rect::from_point(&c2(0.0, 0.0)).union_point(&c2(2.0, -1.0));
        assert_eq!(r.lo().as_slice(), &[0.0, -1.0]);
        assert_eq!(r.hi().as_slice(), &[2.0, 0.0]);
        assert_eq!(r.measure(), 2.0);
        assert_eq!(r.margin(), 3.0);
    }

    #[test]
    fn mindist_zero_inside() {
        let r = Rect::new(c2(0.0, 0.0), c2(2.0, 2.0));
        let mut ops = OpCount::default();
        assert_eq!(r.mindist_sq(&c2(1.0, 1.0), &mut ops), 0.0);
        assert!(ops.cmp > 0);
    }

    #[test]
    fn mindist_matches_corner_distance() {
        let r = Rect::new(c2(0.0, 0.0), c2(1.0, 1.0));
        let mut ops = OpCount::default();
        let d2 = r.mindist_sq(&c2(4.0, 5.0), &mut ops);
        assert!((d2 - (9.0 + 16.0)).abs() < 1e-12);
    }

    #[test]
    fn mindist_matches_face_distance() {
        let r = Rect::new(c2(0.0, 0.0), c2(1.0, 1.0));
        let mut ops = OpCount::default();
        let d2 = r.mindist_sq(&c2(0.5, 3.0), &mut ops);
        assert!((d2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mindist_is_lower_bound_for_contained_points() {
        // Any point inside the rect is at least MINDIST from the query.
        let pts = [c2(0.2, 0.8), c2(0.9, 0.1), c2(0.5, 0.5)];
        let r: Rect = pts.iter().copied().collect();
        let q = c2(3.0, -2.0);
        let mut ops = OpCount::default();
        let lower = r.mindist_sq(&q, &mut ops);
        for p in &pts {
            assert!(p.distance_sq(&q) + 1e-12 >= lower);
        }
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let r = Rect::new(c2(0.0, 0.0), c2(2.0, 2.0));
        let mut ops = OpCount::default();
        assert_eq!(r.enlargement_counted(&c2(1.0, 1.0), &mut ops), 0.0);
        assert!(r.enlargement_counted(&c2(3.0, 1.0), &mut ops) > 0.0);
    }

    #[test]
    fn contains_and_intersects() {
        let a = Rect::new(c2(0.0, 0.0), c2(4.0, 4.0));
        let b = Rect::new(c2(1.0, 1.0), c2(2.0, 2.0));
        let c = Rect::new(c2(5.0, 5.0), c2(6.0, 6.0));
        assert!(a.contains_rect(&b));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.contains_rect(&c));
    }

    #[test]
    fn collect_points_into_rect() {
        let r: Rect = vec![c2(1.0, 5.0), c2(-1.0, 2.0), c2(0.0, 7.0)]
            .into_iter()
            .collect();
        assert_eq!(r.lo().as_slice(), &[-1.0, 2.0]);
        assert_eq!(r.hi().as_slice(), &[1.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inverted rect")]
    fn inverted_rect_rejected() {
        let _ = Rect::new(c2(1.0, 0.0), c2(0.0, 1.0));
    }

    #[test]
    fn encoded_words_is_2d() {
        let r = Rect::from_point(&Config::zeros(7));
        assert_eq!(r.encoded_words(), 14);
    }

    #[test]
    fn center_is_midpoint() {
        let r = Rect::new(c2(0.0, 2.0), c2(4.0, 6.0));
        assert_eq!(r.center().as_slice(), &[2.0, 4.0]);
    }
}
