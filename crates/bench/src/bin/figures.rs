//! Regenerates every table and figure of the MOPED evaluation (§V).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moped-bench --bin figures -- all
//! cargo run --release -p moped-bench --bin figures -- fig15 --tasks 5 --samples 2000
//! ```
//!
//! Subcommands: `fig3 fig5 fig6 fig8 fig10 fig14 fig15 fig16 fig17 fig18
//! fig19 pipeline design all`. `--tasks` is the number of random planning
//! tasks averaged per cell (paper: 50) and `--samples` the per-task
//! sampling budget (paper: 5000); defaults are scaled down so `all`
//! completes in minutes on a laptop.

use std::time::Instant;

use moped_collision::{NaiveAabbChecker, SecondStage, TwoStageChecker};
use moped_core::{plan_variant, KdIndex, PlanResult, PlannerParams, RrtStar, SimbrIndex, Variant};
use moped_env::{Scenario, ScenarioParams, OBSTACLE_COUNTS};
use moped_hw::design::DesignPoint;
use moped_hw::{perf, pipeline};
use moped_robot::Robot;

#[derive(Clone, Copy)]
struct Opts {
    tasks: usize,
    samples: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = "all".to_string();
    let mut opts = Opts {
        tasks: 3,
        samples: 800,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tasks" => opts.tasks = it.next().and_then(|v| v.parse().ok()).unwrap_or(opts.tasks),
            "--samples" => {
                opts.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(opts.samples)
            }
            other if !other.starts_with("--") => cmd = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }

    println!(
        "MOPED evaluation harness — tasks/cell: {}, samples: {}",
        opts.tasks, opts.samples
    );
    match cmd.as_str() {
        "fig3" => fig3(&opts),
        "fig5" => fig5(&opts),
        "fig6" => fig6(&opts),
        "fig8" => fig8(&opts),
        "fig10" => fig10(&opts),
        "fig14" => fig14(&opts),
        "fig15" => fig15(&opts),
        "fig16" => fig16(&opts),
        "fig17" => fig17(&opts),
        "fig18" => fig18(&opts),
        "fig19" => fig19(&opts),
        "pipeline" => pipeline_stats(&opts),
        "design" => design_point(),
        "spacesub" => space_subdivision(&opts),
        "anytime" => anytime(&opts),
        "clearance" => clearance(&opts),
        "all" => {
            fig3(&opts);
            fig5(&opts);
            fig6(&opts);
            fig8(&opts);
            fig10(&opts);
            fig14(&opts);
            fig15(&opts);
            fig16(&opts);
            fig17(&opts);
            fig18(&opts);
            fig19(&opts);
            pipeline_stats(&opts);
            space_subdivision(&opts);
            anytime(&opts);
            clearance(&opts);
            design_point();
        }
        other => {
            eprintln!("unknown figure '{other}'");
            std::process::exit(1);
        }
    }
}

fn params(opts: &Opts, seed: u64, trace: bool) -> PlannerParams {
    PlannerParams {
        max_samples: opts.samples,
        seed,
        trace_rounds: trace,
        ..PlannerParams::default()
    }
}

fn task_seeds(opts: &Opts, base: u64) -> Vec<u64> {
    (0..opts.tasks as u64).map(|t| base * 1000 + t).collect()
}

// ---------------------------------------------------------------------
// Fig 3: compute-cost breakdown of baseline RRT*
// ---------------------------------------------------------------------
fn fig3(opts: &Opts) {
    println!("\n=== Fig 3: Breakdown of computational costs for RRT* (V0, 16 obstacles) ===");
    println!(
        "{:<12} {:>10} {:>16} {:>8}",
        "robot", "collision", "neighbor-search", "other"
    );
    for robot in Robot::all_models() {
        let seeds = task_seeds(opts, 3);
        let mut cc = 0.0;
        let mut ns = 0.0;
        let mut other = 0.0;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let r = plan_variant(&s, Variant::V0Baseline, &params(opts, seed, false));
            let (c, n, o) = r.stats.breakdown();
            cc += c;
            ns += n;
            other += o;
        }
        let k = seeds.len() as f64;
        println!(
            "{:<12} {:>9.1}% {:>15.1}% {:>7.1}%",
            robot.name(),
            cc / k * 100.0,
            ns / k * 100.0,
            other / k * 100.0
        );
    }
}

// ---------------------------------------------------------------------
// Fig 5: OBB vs AABB obstacle representation (narrow passage)
// ---------------------------------------------------------------------
fn fig5(opts: &Opts) {
    println!("\n=== Fig 5: OBB vs AABB obstacle representation (narrow passage) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>13} {:>13}",
        "tilt", "OBB success", "OBB cost", "AABB success", "AABB cost"
    );
    for tilt in [0.0f64, 0.3, 0.6, 0.9] {
        let scenario = Scenario::narrow_passage(Robot::mobile_2d(), 24.0, tilt);
        let mut ok_obb = 0usize;
        let mut ok_aabb = 0usize;
        let mut cost_obb = 0.0;
        let mut cost_aabb = 0.0;
        let seeds = task_seeds(opts, 5);
        for &seed in &seeds {
            let p = PlannerParams {
                max_samples: opts.samples.max(1500),
                seed,
                ..PlannerParams::default()
            };
            let exact = TwoStageChecker::new(scenario.obstacles.clone(), 4, SecondStage::ObbExact);
            let loose = TwoStageChecker::new(scenario.obstacles.clone(), 4, SecondStage::AabbOnly);
            let r1 = RrtStar::new(&scenario, &exact, SimbrIndex::moped(3), p.clone()).plan();
            let r2 = RrtStar::new(&scenario, &loose, SimbrIndex::moped(3), p).plan();
            if r1.solved() {
                ok_obb += 1;
                cost_obb += r1.path_cost;
            }
            if r2.solved() {
                ok_aabb += 1;
                cost_aabb += r2.path_cost;
            }
        }
        println!(
            "{:<8.2} {:>11}/{} {:>12.1} {:>12}/{} {:>13.1}",
            tilt,
            ok_obb,
            seeds.len(),
            if ok_obb > 0 {
                cost_obb / ok_obb as f64
            } else {
                f64::NAN
            },
            ok_aabb,
            seeds.len(),
            if ok_aabb > 0 {
                cost_aabb / ok_aabb as f64
            } else {
                f64::NAN
            },
        );
    }
    println!("(beyond the critical tilt, AABB relaxations seal the slot: success drops)");
}

// ---------------------------------------------------------------------
// Fig 6: two-stage collision-check saving
// ---------------------------------------------------------------------
fn fig6(opts: &Opts) {
    println!("\n=== Fig 6: Collision-check cost reduction from two-stage processing ===");
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>8}",
        "robot", "obst", "naive MACs", "2-stage MACs", "saving"
    );
    for robot in Robot::all_models() {
        for &count in &OBSTACLE_COUNTS {
            let seeds = task_seeds(opts, 7);
            let mut naive_macs = 0.0;
            let mut two_macs = 0.0;
            for &seed in &seeds {
                let s =
                    Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(count), seed);
                let p = params(opts, seed, false);
                let r_naive = plan_variant(&s, Variant::V0Baseline, &p);
                let r_two = plan_variant(&s, Variant::V1Tsps, &p);
                naive_macs += r_naive.stats.collision.total_ops().mac_equiv() as f64;
                two_macs += r_two.stats.collision.total_ops().mac_equiv() as f64;
            }
            println!(
                "{:<12} {:>6} {:>14.0} {:>14.0} {:>7.1}x",
                robot.name(),
                count,
                naive_macs / seeds.len() as f64,
                two_macs / seeds.len() as f64,
                naive_macs / two_macs.max(1.0)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig 8: approximated neighbor search (SIAS)
// ---------------------------------------------------------------------
fn fig8(opts: &Opts) {
    println!("\n=== Fig 8: Steering-informed approximated search (V2 vs V3) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>8} {:>11} {:>11}",
        "robot", "exact-NS", "approx-NS", "saving", "exact cost", "approx cost"
    );
    for robot in Robot::all_models() {
        let seeds = task_seeds(opts, 11);
        let mut ns2 = 0.0;
        let mut ns3 = 0.0;
        let mut c2 = 0.0;
        let mut c3 = 0.0;
        let mut solved = 0usize;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let p = params(opts, seed, false);
            let r2 = plan_variant(&s, Variant::V2Stns, &p);
            let r3 = plan_variant(&s, Variant::V3Sias, &p);
            ns2 += r2.stats.ns_ops.mac_equiv() as f64;
            ns3 += r3.stats.ns_ops.mac_equiv() as f64;
            if r2.solved() && r3.solved() {
                c2 += r2.path_cost;
                c3 += r3.path_cost;
                solved += 1;
            }
        }
        let k = solved.max(1) as f64;
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>7.2}x {:>11.1} {:>11.1}",
            robot.name(),
            ns2 / seeds.len() as f64,
            ns3 / seeds.len() as f64,
            ns2 / ns3.max(1.0),
            c2 / k,
            c3 / k
        );
    }
}

// ---------------------------------------------------------------------
// Fig 10: low-cost insertion (LCI)
// ---------------------------------------------------------------------
fn fig10(opts: &Opts) {
    println!("\n=== Fig 10: Low-cost insertion (V3 vs V4, insertion ledger) ===");
    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "robot", "conv insert", "LCI insert", "saving"
    );
    for robot in Robot::all_models() {
        let seeds = task_seeds(opts, 13);
        let mut i3 = 0.0;
        let mut i4 = 0.0;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let p = params(opts, seed, false);
            i3 += plan_variant(&s, Variant::V3Sias, &p)
                .stats
                .insert_ops
                .mac_equiv() as f64;
            i4 += plan_variant(&s, Variant::V4Lci, &p)
                .stats
                .insert_ops
                .mac_equiv() as f64;
        }
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>7.1}x",
            robot.name(),
            i3 / seeds.len() as f64,
            i4 / seeds.len() as f64,
            i3 / i4.max(1.0)
        );
    }
}

// ---------------------------------------------------------------------
// Fig 14: algorithmic performance across robots and environments
// ---------------------------------------------------------------------
fn fig14(opts: &Opts) {
    println!("\n=== Fig 14: Algorithmic performance (V0 vs full MOPED V4) ===");
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "robot", "obst", "baseline MACs", "MOPED MACs", "saving", "base cost", "moped cost"
    );
    for robot in Robot::all_models() {
        for &count in &OBSTACLE_COUNTS {
            let seeds = task_seeds(opts, 17);
            let mut b = 0.0;
            let mut m = 0.0;
            let mut cb = 0.0;
            let mut cm = 0.0;
            let mut solved = 0usize;
            for &seed in &seeds {
                let s =
                    Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(count), seed);
                let p = params(opts, seed, false);
                let r0 = plan_variant(&s, Variant::V0Baseline, &p);
                let r4 = plan_variant(&s, Variant::V4Lci, &p);
                b += r0.stats.total_ops().mac_equiv() as f64;
                m += r4.stats.total_ops().mac_equiv() as f64;
                if r0.solved() && r4.solved() {
                    cb += r0.path_cost;
                    cm += r4.path_cost;
                    solved += 1;
                }
            }
            let k = solved.max(1) as f64;
            println!(
                "{:<12} {:>6} {:>14.0} {:>14.0} {:>7.1}x {:>10.1} {:>10.1}",
                robot.name(),
                count,
                b / seeds.len() as f64,
                m / seeds.len() as f64,
                b / m.max(1.0),
                cb / k,
                cm / k
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig 15: hardware performance vs baselines
// ---------------------------------------------------------------------
fn fig15(opts: &Opts) {
    println!("\n=== Fig 15: Hardware performance (speedup / energy-eff / area-eff) ===");
    println!(
        "{:<12} {:>5} {:>9} | {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "robot",
        "obst",
        "lat(ms)",
        "CPUspd",
        "CPUen",
        "ASICspd",
        "ASICen",
        "ASICar",
        "CODspd",
        "CODen",
        "CODar"
    );
    let design = DesignPoint::default();
    for robot in Robot::all_models() {
        for &count in [OBSTACLE_COUNTS[0], OBSTACLE_COUNTS[2]].iter() {
            let seeds = task_seeds(opts, 19);
            let mut acc = [0.0f64; 8];
            let mut lat = 0.0;
            for &seed in &seeds {
                let s =
                    Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(count), seed);
                let p = params(opts, seed, true);
                let base = plan_variant(&s, Variant::V0Baseline, &p);
                let moped = plan_variant(&s, Variant::V4Lci, &p);
                let m = perf::moped_report(&moped.stats, &design);
                let cpu = perf::cpu_report(&base.stats);
                let asic = perf::rrt_asic_report(&base.stats, &design);
                let cod = perf::codacc_report(&base.stats, &s.robot, &design);
                let c1 = perf::compare(&m, &cpu);
                let c2 = perf::compare(&m, &asic);
                let c3 = perf::compare(&m, &cod);
                lat += m.latency_s * 1e3;
                for (i, v) in [
                    c1.speedup,
                    c1.energy_efficiency_gain,
                    c2.speedup,
                    c2.energy_efficiency_gain,
                    c2.area_efficiency_gain,
                    c3.speedup,
                    c3.energy_efficiency_gain,
                    c3.area_efficiency_gain,
                ]
                .iter()
                .enumerate()
                {
                    acc[i] += v;
                }
            }
            let k = seeds.len() as f64;
            println!(
                "{:<12} {:>5} {:>9.3} | {:>7.0}x {:>7.0}x | {:>7.1}x {:>7.1}x {:>7.1}x | {:>7.1}x {:>7.1}x {:>7.1}x",
                robot.name(),
                count,
                lat / k,
                acc[0] / k,
                acc[1] / k,
                acc[2] / k,
                acc[3] / k,
                acc[4] / k,
                acc[5] / k,
                acc[6] / k,
                acc[7] / k,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig 16: saving breakdown (top) + software-only speedup (bottom)
// ---------------------------------------------------------------------
fn fig16(opts: &Opts) {
    println!("\n=== Fig 16 (top): Source of computational saving (V1..V4 as % of V0) ===");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "robot", "V1/V0", "V2/V0", "V3/V0", "V4/V0"
    );
    for robot in Robot::all_models() {
        let seeds = task_seeds(opts, 23);
        let mut totals = [0.0f64; 5];
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let p = params(opts, seed, false);
            for (i, v) in Variant::ALL.iter().enumerate() {
                totals[i] += plan_variant(&s, *v, &p).stats.total_ops().mac_equiv() as f64;
            }
        }
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            robot.name(),
            totals[1] / totals[0] * 100.0,
            totals[2] / totals[0] * 100.0,
            totals[3] / totals[0] * 100.0,
            totals[4] / totals[0] * 100.0,
        );
    }

    println!("\n=== Fig 16 (bottom): Software-only wall-clock speedup (V0 vs V4) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "robot", "V0 (ms)", "V4 (ms)", "speedup"
    );
    for robot in Robot::all_models() {
        let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), 71);
        let p = params(opts, 5, false);
        let t0 = Instant::now();
        let _ = plan_variant(&s, Variant::V0Baseline, &p);
        let base_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _ = plan_variant(&s, Variant::V4Lci, &p);
        let moped_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>7.2}x",
            robot.name(),
            base_ms,
            moped_ms,
            base_ms / moped_ms
        );
    }
}

// ---------------------------------------------------------------------
// Fig 17: speculate-and-repair speedup
// ---------------------------------------------------------------------
fn fig17(opts: &Opts) {
    println!("\n=== Fig 17 (left): S&R speedup across robot models (16 obstacles) ===");
    println!(
        "{:<12} {:>14} {:>16} {:>8}",
        "robot", "serial cycles", "S&R cycles", "speedup"
    );
    let sr_of = |robot: Robot, count: usize, seed_base: u64| -> (f64, f64, f64) {
        let seeds = task_seeds(opts, seed_base);
        let mut serial = 0.0;
        let mut spec = 0.0;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(count), seed);
            let p = params(opts, seed, true);
            let moped = plan_variant(&s, Variant::V4Lci, &p);
            let rounds = pipeline::rounds_from_trace(&moped.stats.rounds);
            let rep = pipeline::simulate(&rounds);
            serial += rep.serial_cycles as f64;
            spec += rep.speculative_cycles as f64;
        }
        let k = seeds.len() as f64;
        (serial / k, spec / k, serial / spec)
    };
    for robot in Robot::all_models() {
        let name = robot.name();
        let (serial, spec, sp) = sr_of(robot, 16, 29);
        println!("{:<12} {:>14.0} {:>16.0} {:>7.2}x", name, serial, spec, sp);
    }
    println!("\n=== Fig 17 (right): S&R speedup across environments (ViperX 300) ===");
    println!(
        "{:<8} {:>14} {:>16} {:>8}",
        "obst", "serial cycles", "S&R cycles", "speedup"
    );
    for &count in &OBSTACLE_COUNTS {
        let (serial, spec, sp) = sr_of(Robot::viperx_300(), count, 31);
        println!("{:<8} {:>14.0} {:>16.0} {:>7.2}x", count, serial, spec, sp);
    }
}

// ---------------------------------------------------------------------
// Fig 18: OBB vs AABB path cost + AABB-only speedup
// ---------------------------------------------------------------------
fn fig18(opts: &Opts) {
    println!("\n=== Fig 18 (left): Path cost with AABB vs OBB obstacles (dense scenes) ===");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "robot", "OBB cost", "AABB cost", "AABB/OBB"
    );
    // Dense, large, strongly-rotated obstacles: the regime where loose
    // AABB relaxations inflate detours (the paper's 20-50% gap). The 2D
    // workspace saturates faster, so its density is scaled down to keep
    // tasks solvable for both representations.
    for robot in [Robot::mobile_2d(), Robot::drone_3d()] {
        let dense = if robot.workspace_is_2d() {
            ScenarioParams {
                obstacle_count: 20,
                max_half_xy: 18.0,
                min_half: 8.0,
                ..ScenarioParams::default()
            }
        } else {
            ScenarioParams {
                obstacle_count: 48,
                max_half_xy: 24.0,
                max_half_z: 32.0,
                min_half: 10.0,
                ..ScenarioParams::default()
            }
        };
        let seeds = task_seeds(opts, 37);
        let mut obb = 0.0;
        let mut aabb = 0.0;
        let mut solved = 0usize;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &dense, seed);
            let p = params(opts, seed, false);
            let exact = TwoStageChecker::new(s.obstacles.clone(), 4, SecondStage::ObbExact);
            let loose = TwoStageChecker::new(s.obstacles.clone(), 4, SecondStage::AabbOnly);
            let dim = s.robot.dof();
            let r1 = RrtStar::new(&s, &exact, SimbrIndex::moped(dim), p.clone()).plan();
            let r2 = RrtStar::new(&s, &loose, SimbrIndex::moped(dim), p).plan();
            if r1.solved() && r2.solved() {
                obb += r1.path_cost;
                aabb += r2.path_cost;
                solved += 1;
            }
        }
        let k = solved.max(1) as f64;
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>9.2}x",
            robot.name(),
            obb / k,
            aabb / k,
            aabb / obb.max(1e-9)
        );
    }

    println!("\n=== Fig 18 (right): MOPED-AABB vs baseline RRT*-AABB (hw latency) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "robot", "base (ms)", "MOPED (ms)", "speedup"
    );
    let design = DesignPoint::default();
    for robot in Robot::all_models() {
        let seeds = task_seeds(opts, 41);
        let mut b = 0.0;
        let mut m = 0.0;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let p = params(opts, seed, true);
            // Baseline: linear NS + naive all-pairs AABB checks.
            let base_checker = NaiveAabbChecker::new(s.obstacles.clone());
            let base =
                RrtStar::new(&s, &base_checker, moped_core::LinearIndex::new(), p.clone()).plan();
            // MOPED with the same loose AABB second stage.
            let moped_checker = TwoStageChecker::new(s.obstacles.clone(), 4, SecondStage::AabbOnly);
            let dim = s.robot.dof();
            let moped = RrtStar::new(&s, &moped_checker, SimbrIndex::moped(dim), p.clone()).plan();
            let rb = perf::rrt_asic_report(&base.stats, &design);
            let rm = perf::moped_report(&moped.stats, &design);
            b += rb.latency_s * 1e3;
            m += rm.latency_s * 1e3;
        }
        let k = seeds.len() as f64;
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>7.1}x",
            robot.name(),
            b / k,
            m / k,
            b / m
        );
    }
}

// ---------------------------------------------------------------------
// Fig 19: speedup vs sampling stage + SI-MBR vs KD-tree
// ---------------------------------------------------------------------
fn fig19(opts: &Opts) {
    println!("\n=== Fig 19 (left): Speedup at different sampling stages (drone, 16 obst) ===");
    println!(
        "{:<10} {:>16} {:>16} {:>8}",
        "samples", "baseline MACs", "MOPED MACs", "saving"
    );
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), 61);
    let full = Opts {
        tasks: opts.tasks,
        samples: opts.samples.max(2000),
    };
    let p = params(&full, 1, true);
    let base = plan_variant(&s, Variant::V0Baseline, &p);
    let moped = plan_variant(&s, Variant::V4Lci, &p);
    let cum = |r: &PlanResult, upto: usize| -> f64 {
        r.stats.rounds[..upto.min(r.stats.rounds.len())]
            .iter()
            .map(|t| (t.ns_macs + t.cc_macs + t.refine_macs + t.insert_macs) as f64)
            .sum()
    };
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let upto = (full.samples as f64 * frac) as usize;
        let b = cum(&base, upto);
        let m = cum(&moped, upto);
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>7.1}x",
            upto,
            b,
            m,
            b / m.max(1.0)
        );
    }

    println!("\n=== Fig 19 (right): SI-MBR-Tree vs KD-tree neighbor search in RRT* ===");
    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "robot", "KD-tree MACs", "SI-MBR MACs", "saving"
    );
    for robot in [Robot::mobile_2d(), Robot::drone_3d(), Robot::xarm7()] {
        let seeds = task_seeds(opts, 43);
        let mut kd = 0.0;
        let mut mbr = 0.0;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let p = params(opts, seed, false);
            let checker = TwoStageChecker::moped(s.obstacles.clone());
            let dim = s.robot.dof();
            let r_kd = RrtStar::new(&s, &checker, KdIndex::new(dim), p.clone()).plan();
            let r_mbr = RrtStar::new(&s, &checker, SimbrIndex::moped(dim), p.clone()).plan();
            kd += (r_kd.stats.ns_ops + r_kd.stats.insert_ops).mac_equiv() as f64;
            mbr += (r_mbr.stats.ns_ops + r_mbr.stats.insert_ops).mac_equiv() as f64;
        }
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>7.2}x",
            robot.name(),
            kd / seeds.len() as f64,
            mbr / seeds.len() as f64,
            kd / mbr.max(1.0)
        );
    }
}

// ---------------------------------------------------------------------
// §IV-B: FIFO / Missing-Neighbor buffer sizing + functional equivalence
// ---------------------------------------------------------------------
fn pipeline_stats(opts: &Opts) {
    println!("\n=== §IV-B: S&R buffer sizing across workloads ===");
    println!(
        "{:<12} {:>6} {:>10} {:>14}",
        "robot", "obst", "max FIFO", "max missing"
    );
    for robot in Robot::all_models() {
        let name = robot.name();
        for &count in [8usize, 48].iter() {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(count), 83);
            let p = params(opts, 2, true);
            let moped = plan_variant(&s, Variant::V4Lci, &p);
            let rounds = pipeline::rounds_from_trace(&moped.stats.rounds);
            let rep = pipeline::simulate(&rounds);
            println!(
                "{:<12} {:>6} {:>10} {:>14}",
                name, count, rep.max_fifo_occupancy, rep.max_missing_neighbors
            );
        }
    }
    println!("\nFunctional equivalence of speculation (algorithm-level replay):");
    for robot in [Robot::mobile_2d(), Robot::drone_3d()] {
        let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(16), 5);
        let p = PlannerParams {
            max_samples: 400,
            seed: 1,
            ..PlannerParams::default()
        };
        let rep = pipeline::verify_equivalence(&s, &p, 2);
        println!(
            "  {:<12} rounds {:>5}, correct speculations {:>5}, repairs {:>4}, equivalent: {}",
            s.robot.name(),
            rep.rounds,
            rep.speculation_correct,
            rep.repairs,
            rep.equivalent
        );
    }
}

// ---------------------------------------------------------------------
// Path clearance: SIAS approximation must not produce grazing paths
// ---------------------------------------------------------------------
fn clearance(opts: &Opts) {
    use moped_eval::clearance::measure;
    use moped_geometry::InterpolationSteps;
    println!("\n=== Path clearance: exact vs approximated neighbor search ===");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "robot", "V2 min", "V2 mean", "V3 min", "V3 mean"
    );
    for robot in [Robot::mobile_2d(), Robot::drone_3d()] {
        let seeds = task_seeds(opts, 59);
        let mut acc = [0.0f64; 4];
        let mut solved = 0usize;
        for &seed in &seeds {
            let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), seed);
            let p = params(opts, seed, false);
            let r2 = plan_variant(&s, Variant::V2Stns, &p);
            let r3 = plan_variant(&s, Variant::V3Sias, &p);
            if let (Some(p2), Some(p3)) = (&r2.path, &r3.path) {
                let steps = InterpolationSteps::with_resolution(2.0);
                if let (Some(c2), Some(c3)) = (measure(&s, p2, &steps), measure(&s, p3, &steps)) {
                    acc[0] += c2.min;
                    acc[1] += c2.mean;
                    acc[2] += c3.min;
                    acc[3] += c3.mean;
                    solved += 1;
                }
            }
        }
        let k = solved.max(1) as f64;
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            robot.name(),
            acc[0] / k,
            acc[1] / k,
            acc[2] / k,
            acc[3] / k
        );
    }
    println!("(approximated search keeps comparable obstacle margins, not just cost)");
}

// ---------------------------------------------------------------------
// Anytime quality: best path cost vs samples (asymptotic optimality)
// ---------------------------------------------------------------------
fn anytime(opts: &Opts) {
    println!("\n=== Anytime quality: best path cost vs sampling progress (2D mobile) ===");
    println!("{:<12} {:>12} {:>12}", "sample #", "V0 cost", "V4 cost");
    let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 97);
    let p = PlannerParams {
        max_samples: opts.samples.max(2000),
        seed: 5,
        ..PlannerParams::default()
    };
    let base = plan_variant(&s, Variant::V0Baseline, &p);
    let moped = plan_variant(&s, Variant::V4Lci, &p);
    let cost_at = |hist: &[(usize, f64)], sample: usize| -> f64 {
        hist.iter()
            .take_while(|(i, _)| *i <= sample)
            .last()
            .map_or(f64::NAN, |(_, c)| *c)
    };
    let budget = p.max_samples;
    for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let at = (budget as f64 * frac) as usize;
        println!(
            "{:<12} {:>12.1} {:>12.1}",
            at,
            cost_at(&base.stats.solution_history, at),
            cost_at(&moped.stats.solution_history, at)
        );
    }
    println!("(costs improve monotonically with samples — RRT*'s asymptotic optimality;");
    println!(" MOPED reaches each quality level at a fraction of the compute)");
}

// ---------------------------------------------------------------------
// §VI: space-subdivision comparison (R-tree vs Octree occupancy)
// ---------------------------------------------------------------------
fn space_subdivision(opts: &Opts) {
    use moped_geometry::Vec3;
    println!("\n=== §VI: Space subdivision for collision check — R-tree vs Octree ===");
    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "structure", "memory words", "query MACs", "false hits"
    );
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(32), 53);
    let rtree = moped_rtree::RTree::build(&s.obstacles, 4);

    // Probe set: FK body boxes along random free/colliding poses.
    let seeds = task_seeds(opts, 47);
    let mut probes = Vec::new();
    for &seed in &seeds {
        let sc = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(32), seed);
        for t in 0..20 {
            let q = sc.start.lerp(&sc.goal, t as f64 / 19.0);
            probes.push(s.robot.body_obbs(&q)[0]);
        }
    }

    // R-tree: memory + first-stage query cost + false-positive count
    // (survivors that the exact check clears).
    {
        let mut ops = moped_geometry::OpCount::default();
        let mut false_hits = 0u64;
        for body in &probes {
            let survivors = rtree.filter(body, &mut ops);
            for oid in survivors {
                if !s.obstacles[oid].intersects(body) {
                    false_hits += 1;
                }
            }
        }
        println!(
            "{:<28} {:>14} {:>14} {:>14}",
            "R-tree (AABB, fanout 4)",
            rtree.memory_words(),
            ops.mac_equiv() / probes.len() as u64,
            false_hits
        );
    }

    // Octrees at increasing resolution: memory balloons, conservative
    // false positives shrink.
    for depth in [5u32, 7, 9] {
        let tree = moped_octree::Octree::build(
            &s.obstacles,
            Vec3::ZERO,
            moped_robot::WORKSPACE_EXTENT,
            depth,
        );
        let mut ops = moped_geometry::OpCount::default();
        let mut false_hits = 0u64;
        for body in &probes {
            let hit = tree.intersects_obb(body, &mut ops);
            let truth = s.obstacles.iter().any(|o| o.intersects(body));
            if hit && !truth {
                false_hits += 1;
            }
        }
        println!(
            "{:<28} {:>14} {:>14} {:>14}",
            format!("Octree depth {depth} ({:.1}u vox)", tree.resolution()),
            tree.memory_words(),
            ops.mac_equiv() / probes.len() as u64,
            false_hits
        );
    }
    println!("(the R-tree holds its footprint while the octree trades memory for precision)");
}

// ---------------------------------------------------------------------
// §V-B: design point
// ---------------------------------------------------------------------
fn design_point() {
    println!("\n=== §V-B: MOPED design example (28nm, 1 GHz) ===");
    let d = DesignPoint::default();
    println!("  MACs  : {}", d.macs());
    println!("  SRAM  : {:.0} KB", d.sram_kb());
    println!("  area  : {:.2} mm^2 (paper: 0.62)", d.area_mm2());
    println!("  power : {:.1} mW (paper: 137.5)", d.power_w() * 1e3);
    for bank in d.banks() {
        println!("    {:<22} {:>6.1} KB", bank.name, bank.kb);
    }
}
