//! Machine-readable service-layer benchmark: pushes fixed batches
//! through the worker pool at several pool sizes and writes a flat JSON
//! report (throughput plus latency percentiles per worker count).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moped-bench --bin service_bench -- \
//!     [--batch 64] [--samples 1200] [--out BENCH_service.json]
//! ```
//!
//! The same numbers print as a human-readable table on stdout; the JSON
//! lands wherever `--out` points (default `BENCH_service.json` in the
//! current directory) so CI and EXPERIMENTS.md can consume it.

use std::time::Instant;

use moped_core::PlannerParams;
use moped_robot::Robot;
use moped_service::{EnvironmentCatalog, PlanRequest, PlanService, ServiceConfig};

const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

struct Row {
    workers: usize,
    served: usize,
    elapsed_s: f64,
    throughput: f64,
    p50_us: u128,
    p99_us: u128,
    queue_wait_p99_us: u128,
}

fn run_batch(workers: usize, batch: usize, samples: usize) -> Row {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers,
            queue_capacity: batch,
            stop_poll_every: 64,
            ..Default::default()
        },
    );
    let requests = (0..batch).map(|i| {
        let params = PlannerParams {
            max_samples: samples,
            seed: i as u64,
            ..PlannerParams::default()
        };
        PlanRequest::new(env_ids[i % env_ids.len()], params)
    });
    let start = Instant::now();
    let responses = service.run_batch(requests);
    let elapsed = start.elapsed();
    let metrics = service.metrics();
    service.shutdown();

    let served = responses
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|o| o.is_served()))
        .count();
    let elapsed_s = elapsed.as_secs_f64();
    Row {
        workers,
        served,
        elapsed_s,
        throughput: served as f64 / elapsed_s.max(1e-9),
        p50_us: metrics.service_latency.quantile(0.50).as_micros(),
        p99_us: metrics.service_latency.quantile(0.99).as_micros(),
        queue_wait_p99_us: metrics.queue_wait.quantile(0.99).as_micros(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Heavy enough that per-request work dominates queue hand-off: short
    // plans at small batches underestimate pool scaling.
    let mut batch = 64usize;
    let mut samples = 1200usize;
    let mut out = "BENCH_service.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--batch" => batch = it.next().and_then(|v| v.parse().ok()).unwrap_or(batch),
            "--samples" => samples = it.next().and_then(|v| v.parse().ok()).unwrap_or(samples),
            "--out" => out = it.next().cloned().unwrap_or(out),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }

    println!("service bench — batch {batch}, {samples} samples/request");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10} {:>10} {:>14}",
        "workers", "served", "elapsed_s", "plans_per_s", "p50_us", "p99_us", "queue_p99_us"
    );
    let rows: Vec<Row> = WORKER_COUNTS
        .iter()
        .map(|&w| {
            let row = run_batch(w, batch, samples);
            println!(
                "{:>8} {:>8} {:>10.3} {:>12.1} {:>10} {:>10} {:>14}",
                row.workers,
                row.served,
                row.elapsed_s,
                row.throughput,
                row.p50_us,
                row.p99_us,
                row.queue_wait_p99_us
            );
            row
        })
        .collect();

    // Flat, dependency-free JSON (mirrors the shape of Metrics::dump_json).
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"served\":{},\"elapsed_s\":{:.6},\"plans_per_s\":{:.3},\
                 \"latency_p50_us\":{},\"latency_p99_us\":{},\"queue_wait_p99_us\":{}}}",
                r.workers,
                r.served,
                r.elapsed_s,
                r.throughput,
                r.p50_us,
                r.p99_us,
                r.queue_wait_p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    // Config stamp: request `i` plans environment `i % catalog` with
    // planner seed `i`, so the whole batch is reproducible from this.
    let stamp_catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_names = stamp_catalog
        .ids()
        .filter_map(|id| stamp_catalog.get(id).map(|s| format!("\"{}\"", s.name)))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"service_batch\",\"batch\":{batch},\"samples_per_request\":{samples},\
         \"config\":{{\"planner_seed_base\":0,\"environments\":[{env_names}]}},\
         \"rows\":[{body}]}}"
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
