//! Machine-readable service-layer benchmark: an *open-loop* load
//! generator with deterministic Poisson arrivals, run against the worker
//! pool at several pool sizes, writing a flat JSON report (throughput
//! plus latency and queue-wait percentiles per worker count).
//!
//! Open-loop means arrivals do not wait for completions: request `i` is
//! submitted at its pre-drawn arrival time whether or not earlier
//! requests have finished, exactly like independent clients hitting a
//! service. The closed 64-request batch this replaces could never expose
//! saturation behaviour — a closed loop self-throttles to the pool's
//! speed, so queueing delay is invisible and the measured "throughput"
//! is just batch/latency. Under open-loop load the offered rate is fixed
//! above capacity, every row measures the pool's actual sustained
//! capacity, and queue-wait percentiles mean something.
//!
//! Arrivals are seeded: inter-arrival gaps are exponential draws from a
//! splitmix64 stream, so the same seed replays the same arrival process
//! (and request `i` always plans environment `i % catalog` with planner
//! seed `i` — the whole run is reproducible from the config stamp). The
//! report also stamps the machine's core count: throughput-vs-workers
//! curves are meaningless without it.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moped-bench --bin service_bench -- \
//!     [--requests 1000] [--samples 1200] [--rate 4000] [--seed 7] \
//!     [--smoke] [--out BENCH_service.json]
//! ```
//!
//! `--smoke` runs a small 1-vs-4-worker scaling gate (used by
//! scripts/verify.sh) and exits non-zero if 4 workers fail to beat 1
//! worker by the factor this machine's core count can support: 1.5x on
//! a >=4-core machine, and a 0.75x no-collapse floor on smaller ones
//! (a single core cannot parallelize CPU-bound planning, but the
//! sharded pool must at least not scale *negatively* the way the old
//! `Mutex<Receiver>` pool did).

use std::time::{Duration, Instant};

use moped_core::PlannerParams;
use moped_robot::Robot;
use moped_service::{EnvironmentCatalog, PlanRequest, PlanService, PlanTicket, ServiceConfig};

const WORKER_COUNTS: [usize; 5] = [1, 4, 8, 16, 32];
const SMOKE_WORKER_COUNTS: [usize; 2] = [1, 4];

/// One step of splitmix64 (the workspace's stock deterministic stream).
fn splitmix64(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic Poisson arrival times: cumulative sums of exponential
/// inter-arrival gaps at `rate_per_s`, as offsets from the run start.
fn poisson_arrivals(n: usize, rate_per_s: f64, seed: u64) -> Vec<Duration> {
    let mut state = seed;
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u = splitmix64(&mut state);
            // Inverse-CDF draw; (1 - u) keeps ln away from zero.
            t += -(1.0 - u).ln() / rate_per_s.max(1e-9);
            Duration::from_secs_f64(t)
        })
        .collect()
}

struct Row {
    workers: usize,
    served: usize,
    rejected: usize,
    elapsed_s: f64,
    throughput: f64,
    p50_us: u128,
    p99_us: u128,
    queue_wait_p50_us: u128,
    queue_wait_p99_us: u128,
}

struct Load {
    requests: usize,
    samples: usize,
    rate_per_s: f64,
    seed: u64,
}

fn run_open_loop(workers: usize, load: &Load) -> Row {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers,
            // Deep buffer: this run measures capacity and queueing, not
            // admission control, so nothing should be shed at the door.
            queue_capacity: load.requests,
            stop_poll_every: 64,
            ..Default::default()
        },
    );

    let arrivals = poisson_arrivals(load.requests, load.rate_per_s, load.seed);
    let start = Instant::now();
    let mut tickets: Vec<PlanTicket> = Vec::with_capacity(load.requests);
    let mut rejected = 0usize;
    for (i, offset) in arrivals.iter().enumerate() {
        // Open-loop pacing: sleep until this request's absolute due
        // time. Sleeping (not spinning) keeps the generator off the
        // workers' backs on small machines.
        let due = start + *offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let params = PlannerParams {
            max_samples: load.samples,
            seed: i as u64,
            ..PlannerParams::default()
        };
        match service.submit(PlanRequest::new(env_ids[i % env_ids.len()], params)) {
            Ok(ticket) => tickets.push(ticket),
            Err(_) => rejected += 1,
        }
    }
    let served = tickets
        .into_iter()
        .map(PlanTicket::wait)
        .filter(|outcome| outcome.is_served())
        .count();
    // Elapsed spans first arrival to last resolution: under an offered
    // rate above capacity this is the sustained-capacity denominator.
    let elapsed = start.elapsed();
    let metrics = service.metrics();
    service.shutdown();

    let latency = metrics.service_latency();
    let queue_wait = metrics.queue_wait();
    let elapsed_s = elapsed.as_secs_f64();
    Row {
        workers,
        served,
        rejected,
        elapsed_s,
        throughput: served as f64 / elapsed_s.max(1e-9),
        p50_us: latency.quantile(0.50).as_micros(),
        p99_us: latency.quantile(0.99).as_micros(),
        queue_wait_p50_us: queue_wait.quantile(0.50).as_micros(),
        queue_wait_p99_us: queue_wait.quantile(0.99).as_micros(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut load = Load {
        requests: 1000,
        // Heavy enough that per-request work dominates queue hand-off:
        // short plans underestimate pool scaling.
        samples: 1200,
        // Offered rate above any single-machine capacity, so every row
        // measures sustained capacity rather than the arrival process.
        rate_per_s: 4000.0,
        seed: 7,
    };
    let mut out = "BENCH_service.json".to_string();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => {
                load.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(load.requests)
            }
            "--samples" => {
                load.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(load.samples)
            }
            "--rate" => {
                load.rate_per_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(load.rate_per_s)
            }
            "--seed" => load.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(load.seed),
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--smoke" => {
                // Small presets for the CI gate; later flags still
                // override them.
                smoke = true;
                load.requests = 240;
                load.samples = 400;
                load.rate_per_s = 2000.0;
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }

    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let worker_counts: &[usize] = if smoke {
        &SMOKE_WORKER_COUNTS
    } else {
        &WORKER_COUNTS
    };

    println!(
        "service bench — open-loop Poisson arrivals: {} requests at {:.0}/s, \
         {} samples/request, seed {}, {} cpu(s)",
        load.requests, load.rate_per_s, load.samples, load.seed, cpus
    );
    println!(
        "{:>8} {:>8} {:>9} {:>10} {:>12} {:>10} {:>10} {:>13} {:>13}",
        "workers",
        "served",
        "rejected",
        "elapsed_s",
        "plans_per_s",
        "p50_us",
        "p99_us",
        "qwait_p50_us",
        "qwait_p99_us"
    );
    let rows: Vec<Row> = worker_counts
        .iter()
        .map(|&w| {
            let row = run_open_loop(w, &load);
            println!(
                "{:>8} {:>8} {:>9} {:>10.3} {:>12.1} {:>10} {:>10} {:>13} {:>13}",
                row.workers,
                row.served,
                row.rejected,
                row.elapsed_s,
                row.throughput,
                row.p50_us,
                row.p99_us,
                row.queue_wait_p50_us,
                row.queue_wait_p99_us
            );
            row
        })
        .collect();

    // Flat, dependency-free JSON (mirrors the shape of Metrics::dump_json).
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"served\":{},\"rejected\":{},\"elapsed_s\":{:.6},\
                 \"plans_per_s\":{:.3},\"latency_p50_us\":{},\"latency_p99_us\":{},\
                 \"queue_wait_p50_us\":{},\"queue_wait_p99_us\":{}}}",
                r.workers,
                r.served,
                r.rejected,
                r.elapsed_s,
                r.throughput,
                r.p50_us,
                r.p99_us,
                r.queue_wait_p50_us,
                r.queue_wait_p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    // Config stamp: request `i` plans environment `i % catalog` with
    // planner seed `i`, arriving per the seeded Poisson stream — the
    // whole run is reproducible from this object.
    let stamp_catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_names = stamp_catalog
        .ids()
        .filter_map(|id| stamp_catalog.get(id).map(|s| format!("\"{}\"", s.name)))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"service_open_loop\",\"requests\":{},\"samples_per_request\":{},\
         \"arrival_rate_per_s\":{:.1},\"seed\":{},\"cpus\":{cpus},\
         \"config\":{{\"arrivals\":\"poisson-open-loop\",\"planner_seed_base\":0,\
         \"environments\":[{env_names}]}},\"rows\":[{body}]}}",
        load.requests, load.samples, load.rate_per_s, load.seed
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }

    if smoke {
        // Scaling gate: with >=4 cores, 4 workers must genuinely
        // parallelize; on smaller machines assert the pool at least does
        // not collapse when workers are added (the failure mode the
        // single shared queue lock caused even on one core).
        let t1 = rows[0].throughput;
        let t4 = rows[rows.len() - 1].throughput;
        let ratio = t4 / t1.max(1e-9);
        let (threshold, gate) = if cpus >= 4 {
            (1.5, "parallel-scaling")
        } else {
            (0.75, "no-collapse (full 1.5x gate needs >=4 cpus)")
        };
        println!(
            "smoke gate [{gate}]: 4w/1w throughput ratio {ratio:.3} vs threshold {threshold:.2}"
        );
        if ratio < threshold {
            eprintln!(
                "smoke gate FAILED: 4-worker throughput {t4:.1} plans/s is {ratio:.3}x \
                 the 1-worker {t1:.1} plans/s (needs >= {threshold:.2}x on {cpus} cpu(s))"
            );
            std::process::exit(1);
        }
    }
}
