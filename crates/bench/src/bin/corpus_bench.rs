//! Machine-readable corpus regression matrix: every planning engine over
//! every seeded corpus scenario (family × robot × seed), writing one row
//! per (scenario, engine) pair to a flat JSON report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moped-bench --bin corpus_bench -- \
//!     [--samples 900] [--seed 7] [--out BENCH_corpus.json] [--smoke]
//! ```
//!
//! `--smoke` runs the ≤6-scenario smoke subset at a small budget (the
//! `scripts/verify.sh` CI step); the full run sweeps the 30-entry corpus
//! and enforces the acceptance gate: bidirectional RRT-Connect must
//! solve the tilted narrow-passage family at a success rate at least as
//! high as MOPED RRT\* under the same sample budget.

use moped_core::PlannerParams;
use moped_eval::corpus::{family_success_rate, run_matrix, EngineKind, MatrixCell};
use moped_scenarios::{corpus, smoke_corpus, CorpusEntry, Family};

fn cell_json(c: &MatrixCell) -> String {
    // Unsolved cells carry an infinite path cost, which JSON cannot
    // represent — emit null instead.
    let cost = if c.path_cost.is_finite() {
        format!("{:.6}", c.path_cost)
    } else {
        "null".to_string()
    };
    format!(
        "{{\"scenario\":\"{}\",\"family\":\"{}\",\"robot\":\"{}\",\"scenario_seed\":{},\
         \"engine\":\"{}\",\"solved\":{},\"path_cost\":{},\"samples\":{},\"nodes\":{},\
         \"total_macs\":{},\"wall_ms\":{:.3}}}",
        c.scenario_id,
        c.family,
        c.robot,
        c.scenario_seed,
        c.engine.name(),
        c.solved,
        cost,
        c.samples,
        c.nodes,
        c.total_macs,
        c.wall_ms,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 900usize;
    let mut seed = 7u64;
    let mut out = "BENCH_corpus.json".to_string();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => samples = it.next().and_then(|v| v.parse().ok()).unwrap_or(samples),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    let entries: Vec<CorpusEntry> = if smoke {
        samples = samples.min(250);
        smoke_corpus()
    } else {
        corpus()
    };

    let params = PlannerParams {
        max_samples: samples,
        seed,
        ..PlannerParams::default()
    };
    println!(
        "corpus bench — {} scenarios x {} engines, {samples} samples, planner seed {seed}",
        entries.len(),
        EngineKind::ALL.len()
    );
    let cells = run_matrix(&entries, &EngineKind::ALL, &params);

    // Family × engine success summary.
    println!(
        "{:>16} {:>20} {:>8} {:>10}",
        "family", "engine", "solved", "rate"
    );
    let mut summary = Vec::new();
    for family in Family::ALL {
        for engine in EngineKind::ALL {
            let rows: Vec<&MatrixCell> = cells
                .iter()
                .filter(|c| c.family == family.name() && c.engine == engine)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let solved = rows.iter().filter(|c| c.solved).count();
            let rate = solved as f64 / rows.len() as f64;
            println!(
                "{:>16} {:>20} {:>5}/{:<2} {:>10.2}",
                family.name(),
                engine.name(),
                solved,
                rows.len(),
                rate
            );
            summary.push(format!(
                "{{\"family\":\"{}\",\"engine\":\"{}\",\"solved\":{},\"runs\":{},\
                 \"success_rate\":{:.4}}}",
                family.name(),
                engine.name(),
                solved,
                rows.len(),
                rate
            ));
        }
    }

    // Config stamp: everything needed to reproduce the run bit-for-bit.
    let ids = entries
        .iter()
        .map(|e| format!("\"{}\"", e.id()))
        .collect::<Vec<_>>()
        .join(",");
    let body = cells.iter().map(cell_json).collect::<Vec<_>>().join(",");
    let json = format!(
        "{{\"bench\":\"corpus_matrix\",\"smoke\":{smoke},\
         \"config\":{{\"planner_seed\":{seed},\"samples_per_plan\":{samples},\
         \"scenario_count\":{},\"scenario_ids\":[{ids}]}},\
         \"summary\":[{}],\"rows\":[{body}]}}",
        entries.len(),
        summary.join(","),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }

    // Acceptance gate (full runs only): feasibility-first RRT-Connect
    // must match or beat RRT* on the narrow-passage family.
    if !smoke {
        let star = family_success_rate(&cells, "narrow-passage", EngineKind::MopedRrtStar);
        let connect = family_success_rate(&cells, "narrow-passage", EngineKind::RrtConnect);
        println!("narrow-passage: rrt-connect {connect:.2} vs rrt-star {star:.2}");
        if connect < star {
            eprintln!(
                "acceptance gate: rrt-connect {connect:.2} < rrt-star {star:.2} on narrow-passage"
            );
            std::process::exit(1);
        }
    }
}
