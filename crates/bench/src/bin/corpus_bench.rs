//! Machine-readable corpus regression matrix: every planning engine over
//! every seeded corpus scenario (family × robot × seed), writing one row
//! per (scenario, engine) pair to a flat JSON report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moped-bench --bin corpus_bench -- \
//!     [--samples 900] [--seed 7] [--out BENCH_corpus.json] [--smoke] \
//!     [--engine all|auto|<static engine name>]
//! ```
//!
//! Besides the four static engine columns, the matrix carries a
//! `moped-auto` column: a `ProfileTable` is calibrated over the run's
//! own entries (probe budget 480 full / 160 smoke), each scenario plans
//! under the profile resolved for its request class, and the resolved
//! profile / NN backend / class id are stamped on the row. The config
//! block records the full calibrated table so any row can be reproduced
//! bit-for-bit.
//!
//! `--smoke` runs the ≤6-scenario smoke subset at a small budget (the
//! `scripts/verify.sh` CI step) and gates on the auto column solving at
//! least as many scenarios as static MOPED RRT\*. The full run sweeps
//! the 30-entry corpus and enforces the acceptance gates: RRT-Connect ≥
//! RRT\* on the tilted narrow-passage family, the auto column strictly
//! ahead of static RRT\* on aggregate solved count, and auto ≥ RRT\* on
//! per-family success for the shelf and maze families.

use std::time::Instant;

use moped_core::PlannerParams;
use moped_eval::corpus::{
    calibrate_table, family_success_rate, run_auto_column, run_matrix, EngineKind, MatrixCell,
};
use moped_scenarios::{corpus, smoke_corpus, CorpusEntry, Family};

/// Probe budget of the calibration pass (samples per micro-plan).
const PROBE_SAMPLES_FULL: usize = 480;
const PROBE_SAMPLES_SMOKE: usize = 160;

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{s}\""),
        None => "null".to_string(),
    }
}

fn cell_json(c: &MatrixCell) -> String {
    // Unsolved cells carry an infinite path cost, which JSON cannot
    // represent — emit null instead.
    let cost = if c.path_cost.is_finite() {
        format!("{:.6}", c.path_cost)
    } else {
        "null".to_string()
    };
    format!(
        "{{\"scenario\":\"{}\",\"family\":\"{}\",\"robot\":\"{}\",\"scenario_seed\":{},\
         \"engine\":\"{}\",\"solved\":{},\"path_cost\":{},\"samples\":{},\"nodes\":{},\
         \"total_macs\":{},\"wall_ms\":{:.3},\"profile\":{},\"nn_backend\":{},\"class\":{}}}",
        c.scenario_id,
        c.family,
        c.robot,
        c.scenario_seed,
        c.engine.name(),
        c.solved,
        cost,
        c.samples,
        c.nodes,
        c.total_macs,
        c.wall_ms,
        opt_str(&c.profile),
        opt_str(&c.nn_backend),
        opt_str(&c.class_id),
    )
}

fn aggregate_solved(cells: &[MatrixCell], engine: EngineKind) -> usize {
    cells
        .iter()
        .filter(|c| c.engine == engine && c.solved)
        .count()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 900usize;
    let mut seed = 7u64;
    let mut out = "BENCH_corpus.json".to_string();
    let mut smoke = false;
    let mut engine_filter = "all".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => samples = it.next().and_then(|v| v.parse().ok()).unwrap_or(samples),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--smoke" => smoke = true,
            "--engine" => engine_filter = it.next().cloned().unwrap_or(engine_filter),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    let entries: Vec<CorpusEntry> = if smoke {
        samples = samples.min(250);
        smoke_corpus()
    } else {
        corpus()
    };

    // Column selection: `all` (default) runs the four static engines
    // plus the auto column; `auto` runs only the auto column; a static
    // engine name runs just that column.
    let static_engines: Vec<EngineKind> = match engine_filter.as_str() {
        "all" => EngineKind::ALL.to_vec(),
        "auto" => Vec::new(),
        name => match EngineKind::ALL.iter().find(|e| e.name() == name) {
            Some(&e) => vec![e],
            None => {
                eprintln!("unknown --engine {name}; expected all, auto, or a static engine name");
                std::process::exit(2);
            }
        },
    };
    let run_auto = matches!(engine_filter.as_str(), "all" | "auto");

    let params = PlannerParams {
        max_samples: samples,
        seed,
        ..PlannerParams::default()
    };
    let probe_samples = if smoke {
        PROBE_SAMPLES_SMOKE
    } else {
        PROBE_SAMPLES_FULL
    };
    println!(
        "corpus bench — {} scenarios x {} engines{}, {samples} samples, planner seed {seed}",
        entries.len(),
        static_engines.len(),
        if run_auto { " + auto" } else { "" },
    );
    let mut cells = run_matrix(&entries, &static_engines, &params);

    // Auto column: calibrate over this run's own entries, then plan each
    // scenario under its class's resolved profile. Probe wall time is
    // measured here (the calibration itself never reads a clock).
    let mut auto_stamp = String::new();
    if run_auto {
        let t0 = Instant::now();
        let (table, probes) = calibrate_table(&entries, probe_samples);
        let probe_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "calibrated {} classes from {} probe outcomes in {probe_wall_ms:.0} ms \
             (probe budget {probe_samples})",
            table.len(),
            probes.len(),
        );
        let profiles = table
            .iter()
            .map(|(class, profile, reason)| {
                format!(
                    "{{\"class\":\"{class}\",\"profile\":\"{}\",\"nn_backend\":\"{}\",\
                     \"reason\":\"{reason}\"}}",
                    profile.label(),
                    profile.nn_backend.name(),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        auto_stamp = format!(
            ",\"auto\":{{\"probe_samples\":{probe_samples},\"probe_wall_ms\":{probe_wall_ms:.3},\
             \"classes\":{},\"profiles\":[{profiles}]}}",
            table.len(),
        );
        cells.extend(run_auto_column(&entries, &table, &params));
    }

    // Family × engine success summary.
    let mut columns = static_engines.clone();
    if run_auto {
        columns.push(EngineKind::Auto);
    }
    println!(
        "{:>16} {:>20} {:>8} {:>10}",
        "family", "engine", "solved", "rate"
    );
    let mut summary = Vec::new();
    for family in Family::ALL {
        for &engine in &columns {
            let rows: Vec<&MatrixCell> = cells
                .iter()
                .filter(|c| c.family == family.name() && c.engine == engine)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let solved = rows.iter().filter(|c| c.solved).count();
            let rate = solved as f64 / rows.len() as f64;
            println!(
                "{:>16} {:>20} {:>5}/{:<2} {:>10.2}",
                family.name(),
                engine.name(),
                solved,
                rows.len(),
                rate
            );
            summary.push(format!(
                "{{\"family\":\"{}\",\"engine\":\"{}\",\"solved\":{},\"runs\":{},\
                 \"success_rate\":{:.4}}}",
                family.name(),
                engine.name(),
                solved,
                rows.len(),
                rate
            ));
        }
    }

    // Config stamp: everything needed to reproduce the run bit-for-bit
    // (the auto block pins the calibrated table alongside its budget).
    let ids = entries
        .iter()
        .map(|e| format!("\"{}\"", e.id()))
        .collect::<Vec<_>>()
        .join(",");
    let body = cells.iter().map(cell_json).collect::<Vec<_>>().join(",");
    let json = format!(
        "{{\"bench\":\"corpus_matrix\",\"smoke\":{smoke},\
         \"config\":{{\"planner_seed\":{seed},\"samples_per_plan\":{samples},\
         \"scenario_count\":{},\"scenario_ids\":[{ids}]{auto_stamp}}},\
         \"summary\":[{}],\"rows\":[{body}]}}",
        entries.len(),
        summary.join(","),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }

    let gates_comparable = run_auto && static_engines.contains(&EngineKind::MopedRrtStar);

    // Smoke gate: on the smoke subset the auto-tuned column must solve
    // at least as many scenarios as the static default stack.
    if smoke && gates_comparable {
        let auto = aggregate_solved(&cells, EngineKind::Auto);
        let star = aggregate_solved(&cells, EngineKind::MopedRrtStar);
        println!("smoke: moped-auto solved {auto} vs moped-rrt-star {star}");
        if auto < star {
            eprintln!("acceptance gate: auto {auto} < static rrt-star {star} on the smoke subset");
            std::process::exit(1);
        }
    }

    // Full-run acceptance gates.
    if !smoke {
        if static_engines.contains(&EngineKind::MopedRrtStar)
            && static_engines.contains(&EngineKind::RrtConnect)
        {
            // Feasibility-first RRT-Connect must match or beat RRT* on
            // the narrow-passage family.
            let star = family_success_rate(&cells, "narrow-passage", EngineKind::MopedRrtStar);
            let connect = family_success_rate(&cells, "narrow-passage", EngineKind::RrtConnect);
            println!("narrow-passage: rrt-connect {connect:.2} vs rrt-star {star:.2}");
            if connect < star {
                eprintln!(
                    "acceptance gate: rrt-connect {connect:.2} < rrt-star {star:.2} on narrow-passage"
                );
                std::process::exit(1);
            }
        }
        if gates_comparable {
            // The auto column must strictly beat static RRT* on aggregate
            // solved count, and match or beat it per family on the two
            // families the tuner targets.
            let auto = aggregate_solved(&cells, EngineKind::Auto);
            let star = aggregate_solved(&cells, EngineKind::MopedRrtStar);
            println!("aggregate: moped-auto solved {auto} vs moped-rrt-star {star}");
            if auto <= star {
                eprintln!("acceptance gate: auto {auto} must beat static rrt-star {star}");
                std::process::exit(1);
            }
            for family in ["shelf", "maze"] {
                let a = family_success_rate(&cells, family, EngineKind::Auto);
                let s = family_success_rate(&cells, family, EngineKind::MopedRrtStar);
                println!("{family}: moped-auto {a:.2} vs moped-rrt-star {s:.2}");
                if a < s {
                    eprintln!("acceptance gate: auto {a:.2} < rrt-star {s:.2} on {family}");
                    std::process::exit(1);
                }
            }
        }
    }
}
