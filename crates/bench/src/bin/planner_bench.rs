//! Machine-readable hot-path engine benchmark: full RRT\* runs on the
//! 6-DoF drone workload, old engine vs new, writing a flat JSON report.
//!
//! The two engines differ **only** in traversal/kernel strategy — both
//! return exact nearest neighbors and identical collision verdicts:
//!
//! * `reference` — depth-first MINDIST descent (`nearest_reference_dfs`)
//!   plus the sequential per-survivor SAT narrow phase
//!   (`NarrowMode::Reference`).
//! * `moped` — best-first frontier search over the flat SoA arena with
//!   the pinned top-of-tree block and the search-trace warm seed, plus
//!   the batched SAT kernel with the last-hit obstacle cache
//!   (`NarrowMode::Batched`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moped-bench --bin planner_bench -- \
//!     [--samples 1500] [--plans 5] [--obstacles 32] \
//!     [--out BENCH_planner.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the workload for CI gating (`scripts/verify.sh`);
//! the full run feeds `BENCH_planner.json` and EXPERIMENTS.md. Two visit
//! metrics are reported: `visit_reduction` (raw MINDIST node visits per
//! nearest — best-first search is visit-optimal, so this gap is modest
//! by construction) and `mem_visit_reduction`, the acceptance metric —
//! visits that reach backing memory, where the new engine's pops inside
//! the pinned top-of-tree block are served from the software Top NS
//! Cache (validated access-for-access against `moped-hw`'s
//! `replay_pinned` model).

use std::time::Instant;

use moped_collision::{NarrowMode, TwoStageChecker};
use moped_core::{PlannerParams, RrtStar, SimbrIndex};
use moped_env::{Scenario, ScenarioParams};
use moped_robot::Robot;

const DIM: usize = 6;

#[derive(Default)]
struct EngineRow {
    engine: &'static str,
    solved: usize,
    wall_s: f64,
    nearest_queries: u64,
    node_visits: u64,
    distance_calcs: u64,
    sat_tests: u64,
    pose_queries: u64,
    top_hits: u64,
    top_misses: u64,
    seed_hits: u64,
    seed_misses: u64,
    narrow_cache_hits: u64,
    narrow_cache_misses: u64,
    total_macs: u64,
    counters: Vec<(String, u64)>,
}

impl EngineRow {
    fn visits_per_nearest(&self) -> f64 {
        self.node_visits as f64 / self.nearest_queries.max(1) as f64
    }

    /// Node visits that reach backing memory: pops landing in the pinned
    /// top-of-tree block are served from the software Top NS Cache (the
    /// cachesim cross-check validates this access-for-access), so only
    /// the misses cost a memory fetch. The reference engine has no
    /// pinned block — every visit is a memory visit.
    fn mem_visits_per_nearest(&self) -> f64 {
        (self.node_visits - self.top_hits) as f64 / self.nearest_queries.max(1) as f64
    }

    fn sat_per_pose(&self) -> f64 {
        self.sat_tests as f64 / self.pose_queries.max(1) as f64
    }
}

fn run_engine(engine: &'static str, obstacles: usize, samples: usize, plans: usize) -> EngineRow {
    let reference = engine == "reference";
    let mut row = EngineRow {
        engine,
        ..EngineRow::default()
    };
    for plan_seed in 0..plans as u64 {
        let s = Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(obstacles),
            100 + plan_seed,
        );
        let checker = if reference {
            TwoStageChecker::moped(s.obstacles.clone()).with_narrow_mode(NarrowMode::Reference)
        } else {
            TwoStageChecker::moped(s.obstacles.clone())
        };
        let index = if reference {
            SimbrIndex::reference(DIM)
        } else {
            SimbrIndex::moped(DIM)
        };
        let params = PlannerParams {
            max_samples: samples,
            seed: plan_seed,
            ..PlannerParams::default()
        };
        let mut rrt = RrtStar::new(&s, &checker, index, params);
        let t = Instant::now();
        let result = rrt.plan();
        row.wall_s += t.elapsed().as_secs_f64();

        row.solved += usize::from(result.solved());
        // One nearest query per sampling round.
        row.nearest_queries += result.stats.samples as u64;
        let search = rrt.index().search_stats();
        row.node_visits += search.nodes_visited;
        row.distance_calcs += search.distance_calcs;
        let cache = rrt.index().tree().cache_stats();
        row.top_hits += cache.top_hits;
        row.top_misses += cache.top_misses;
        row.seed_hits += cache.seed_hits;
        row.seed_misses += cache.seed_misses;
        row.sat_tests += result.stats.collision.second_stage.sat_queries;
        row.pose_queries += result.stats.collision.pose_queries;
        let (hits, misses) = checker.narrow_cache_stats();
        row.narrow_cache_hits += hits;
        row.narrow_cache_misses += misses;
        row.total_macs += result.stats.total_ops().mac_equiv();
    }

    // One extra (untimed) plan with observability enabled, to embed the
    // stage counters the engines bump on the hot path.
    moped_obs::set_enabled(true);
    moped_obs::counters::reset_counters();
    {
        let s = Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(obstacles),
            100,
        );
        let checker = if reference {
            TwoStageChecker::moped(s.obstacles.clone()).with_narrow_mode(NarrowMode::Reference)
        } else {
            TwoStageChecker::moped(s.obstacles.clone())
        };
        let index = if reference {
            SimbrIndex::reference(DIM)
        } else {
            SimbrIndex::moped(DIM)
        };
        let params = PlannerParams {
            max_samples: samples,
            seed: 0,
            ..PlannerParams::default()
        };
        let _ = RrtStar::new(&s, &checker, index, params).plan();
    }
    row.counters = moped_obs::counters::snapshot_counters()
        .into_iter()
        .map(|c| (c.name.to_string(), c.value))
        .collect();
    moped_obs::set_enabled(false);
    row
}

fn row_json(r: &EngineRow) -> String {
    let counters = r
        .counters
        .iter()
        .map(|(name, value)| format!("{{\"name\":\"{name}\",\"value\":{value}}}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"engine\":\"{}\",\"solved\":{},\"wall_s\":{:.6},\"nearest_queries\":{},\
         \"node_visits\":{},\"visits_per_nearest\":{:.3},\"mem_visits_per_nearest\":{:.3},\
         \"distance_calcs\":{},\
         \"sat_tests\":{},\"pose_queries\":{},\"sat_per_pose\":{:.3},\
         \"top_hits\":{},\"top_misses\":{},\"seed_hits\":{},\"seed_misses\":{},\
         \"narrow_cache_hits\":{},\"narrow_cache_misses\":{},\"total_macs\":{},\
         \"counters\":[{counters}]}}",
        r.engine,
        r.solved,
        r.wall_s,
        r.nearest_queries,
        r.node_visits,
        r.visits_per_nearest(),
        r.mem_visits_per_nearest(),
        r.distance_calcs,
        r.sat_tests,
        r.pose_queries,
        r.sat_per_pose(),
        r.top_hits,
        r.top_misses,
        r.seed_hits,
        r.seed_misses,
        r.narrow_cache_hits,
        r.narrow_cache_misses,
        r.total_macs,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 1500usize;
    let mut plans = 5usize;
    let mut obstacles = 32usize;
    let mut out = "BENCH_planner.json".to_string();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => samples = it.next().and_then(|v| v.parse().ok()).unwrap_or(samples),
            "--plans" => plans = it.next().and_then(|v| v.parse().ok()).unwrap_or(plans),
            "--obstacles" => {
                obstacles = it.next().and_then(|v| v.parse().ok()).unwrap_or(obstacles)
            }
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if smoke {
        samples = samples.min(200);
        plans = plans.min(2);
    }

    println!(
        "planner bench — 6-DoF drone, {obstacles} obstacles, {plans} plans x {samples} samples"
    );
    println!(
        "{:>10} {:>7} {:>9} {:>16} {:>14} {:>10} {:>12} {:>12}",
        "engine",
        "solved",
        "wall_s",
        "visits/nearest",
        "mem/nearest",
        "sat/pose",
        "seed_hits",
        "total_macs"
    );
    let rows: Vec<EngineRow> = ["reference", "moped"]
        .iter()
        .map(|&engine| {
            let row = run_engine(engine, obstacles, samples, plans);
            println!(
                "{:>10} {:>7} {:>9.3} {:>16.2} {:>14.2} {:>10.3} {:>12} {:>12}",
                row.engine,
                row.solved,
                row.wall_s,
                row.visits_per_nearest(),
                row.mem_visits_per_nearest(),
                row.sat_per_pose(),
                row.seed_hits,
                row.total_macs
            );
            row
        })
        .collect();

    let reference = &rows[0];
    let moped = &rows[1];
    let visit_reduction = reference.visits_per_nearest() / moped.visits_per_nearest().max(1e-9);
    // Headline metric: the reference engine touches memory on every
    // MINDIST visit; the new engine only on pinned-block misses.
    let mem_visit_reduction =
        reference.mem_visits_per_nearest() / moped.mem_visits_per_nearest().max(1e-9);
    let sat_reduction = reference.sat_per_pose() / moped.sat_per_pose().max(1e-9);
    let wall_speedup = reference.wall_s / moped.wall_s.max(1e-9);
    let mac_reduction = reference.total_macs as f64 / moped.total_macs.max(1) as f64;
    println!(
        "visit_reduction {visit_reduction:.2}x  mem_visit_reduction {mem_visit_reduction:.2}x  \
         sat_reduction {sat_reduction:.2}x  wall_speedup {wall_speedup:.2}x  \
         mac_reduction {mac_reduction:.2}x"
    );

    // Flat, dependency-free JSON (same style as service_bench). The
    // config stamp records every seed the run consumed: plan `i` uses
    // scenario seed `100 + i` and planner seed `i`.
    let scenario_ids = (0..plans as u64)
        .map(|i| format!("\"drone_3d/random{obstacles}/s{}\"", 100 + i))
        .collect::<Vec<_>>()
        .join(",");
    let body = rows.iter().map(row_json).collect::<Vec<_>>().join(",");
    let json = format!(
        "{{\"bench\":\"planner_hot_path\",\"robot\":\"drone_3d\",\"dim\":{DIM},\
         \"obstacles\":{obstacles},\"samples_per_plan\":{samples},\"plans\":{plans},\
         \"config\":{{\"scenario_seed_base\":100,\"planner_seed_base\":0,\
         \"scenario_ids\":[{scenario_ids}]}},\
         \"rows\":[{body}],\"visit_reduction\":{visit_reduction:.3},\
         \"mem_visit_reduction\":{mem_visit_reduction:.3},\
         \"sat_reduction\":{sat_reduction:.3},\"wall_speedup\":{wall_speedup:.3},\
         \"mac_reduction\":{mac_reduction:.3}}}"
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
    if !smoke && mem_visit_reduction < 2.0 {
        eprintln!("acceptance gate: mem_visit_reduction {mem_visit_reduction:.2}x < 2.0x");
        std::process::exit(1);
    }
}
