//! Criterion benchmarks for the collision-checking pipelines (Fig 6,
//! wall-clock view): naive all-pairs OBB-OBB vs the two-stage R-tree
//! scheme, across obstacle densities and robot models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moped_collision::{
    CollisionChecker, CollisionLedger, NaiveChecker, NarrowMode, TwoStageChecker,
};
use moped_env::{Scenario, ScenarioParams};
use moped_geometry::InterpolationSteps;
use moped_robot::Robot;
use std::hint::black_box;

fn bench_config_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("config_check_drone");
    for &count in &[8usize, 48] {
        let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(count), 9);
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let q = s.start;
        g.bench_with_input(BenchmarkId::new("naive", count), &q, |b, q| {
            b.iter(|| {
                let mut ledger = CollisionLedger::default();
                black_box(naive.config_free(&s.robot, black_box(q), &mut ledger))
            })
        });
        g.bench_with_input(BenchmarkId::new("two_stage", count), &q, |b, q| {
            b.iter(|| {
                let mut ledger = CollisionLedger::default();
                black_box(two.config_free(&s.robot, black_box(q), &mut ledger))
            })
        });
    }
    g.finish();
}

fn bench_motion_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("motion_check_xarm7");
    let s = Scenario::generate(Robot::xarm7(), &ScenarioParams::with_obstacles(32), 4);
    let naive = NaiveChecker::new(s.obstacles.clone());
    let two = TwoStageChecker::moped(s.obstacles.clone());
    let steps = InterpolationSteps::with_resolution(0.1);
    let to = {
        let mut t = s.start;
        t.as_mut_slice()[0] += 0.3;
        t.as_mut_slice()[2] -= 0.2;
        t
    };
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut ledger = CollisionLedger::default();
            black_box(naive.motion_free(&s.robot, &s.start, black_box(&to), &steps, &mut ledger))
        })
    });
    g.bench_function("two_stage", |b| {
        b.iter(|| {
            let mut ledger = CollisionLedger::default();
            black_box(two.motion_free(&s.robot, &s.start, black_box(&to), &steps, &mut ledger))
        })
    });
    g.finish();
}

/// Old-vs-new narrow phase on identical survivor sets: the pre-rewrite
/// per-survivor early-exit SAT (`NarrowMode::Reference`) vs the batched
/// SoA kernel with the last-hit cache (`NarrowMode::Batched`, default).
/// Both produce identical verdicts.
fn bench_narrow_old_vs_new(c: &mut Criterion) {
    let mut g = c.benchmark_group("narrow_phase_drone");
    for &count in &[16usize, 48] {
        let s = Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(count),
            21,
        );
        let reference =
            TwoStageChecker::moped(s.obstacles.clone()).with_narrow_mode(NarrowMode::Reference);
        let batched = TwoStageChecker::moped(s.obstacles.clone());
        let steps = InterpolationSteps::default();
        g.bench_with_input(BenchmarkId::new("reference", count), &s.goal, |b, goal| {
            b.iter(|| {
                let mut ledger = CollisionLedger::default();
                black_box(reference.motion_free(
                    &s.robot,
                    &s.start,
                    black_box(goal),
                    &steps,
                    &mut ledger,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("batched", count), &s.goal, |b, goal| {
            b.iter(|| {
                let mut ledger = CollisionLedger::default();
                black_box(batched.motion_free(
                    &s.robot,
                    &s.start,
                    black_box(goal),
                    &steps,
                    &mut ledger,
                ))
            })
        });
    }
    g.finish();
}

fn bench_rtree_build(c: &mut Criterion) {
    // Offline construction cost (excluded from runtime in the paper, but
    // worth tracking).
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(48), 2);
    c.bench_function("rtree_build_48", |b| {
        b.iter(|| black_box(moped_rtree::RTree::build(black_box(&s.obstacles), 4)))
    });
}

fn bench_octree(c: &mut Criterion) {
    use moped_geometry::{OpCount, Vec3};
    let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(32), 3);
    c.bench_function("octree_build_d7_32obs", |b| {
        b.iter(|| {
            black_box(moped_octree::Octree::build(
                black_box(&s.obstacles),
                Vec3::ZERO,
                moped_robot::WORKSPACE_EXTENT,
                7,
            ))
        })
    });
    let tree =
        moped_octree::Octree::build(&s.obstacles, Vec3::ZERO, moped_robot::WORKSPACE_EXTENT, 7);
    let body = s.robot.body_obbs(&s.start)[0];
    c.bench_function("octree_query_d7", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(tree.intersects_obb(black_box(&body), &mut ops))
        })
    });
}

criterion_group!(
    benches,
    bench_config_checks,
    bench_motion_checks,
    bench_narrow_old_vs_new,
    bench_rtree_build,
    bench_octree
);
criterion_main!(benches);
