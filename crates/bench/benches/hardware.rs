//! Criterion benchmarks for the hardware-model kernels: the S&R pipeline
//! simulator, the LFSR samplers, and fixed-point quantization.

use criterion::{criterion_group, criterion_main, Criterion};
use moped_geometry::Config;
use moped_hw::fixed::QFormat;
use moped_hw::lfsr::{ConfigSampler, Lfsr16};
use moped_hw::{perf, pipeline};
use moped_robot::Robot;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let trace = perf::synthetic_trace(5000, 480, 520, 200, 64);
    let rounds = pipeline::rounds_from_trace(&trace);
    c.bench_function("sr_pipeline_5000_rounds", |b| {
        b.iter(|| black_box(pipeline::simulate(black_box(&rounds))))
    });
}

fn bench_lfsr(c: &mut Criterion) {
    c.bench_function("lfsr16_step", |b| {
        let mut l = Lfsr16::new(0xACE1);
        b.iter(|| black_box(l.next_u16()))
    });
    c.bench_function("config_sample_7d", |b| {
        let robot = Robot::xarm7();
        let mut s = ConfigSampler::new(7, 0x77);
        b.iter(|| black_box(s.sample(&robot)))
    });
}

fn bench_fixed(c: &mut Criterion) {
    let q = Config::new(&[10.3, -20.7, 150.0, 3.17, -2.71, 99.9, 0.001]);
    c.bench_function("quantize_config_7d", |b| {
        b.iter(|| black_box(QFormat::WORKSPACE.roundtrip_config(black_box(&q))))
    });
}

fn bench_satq(c: &mut Criterion) {
    use moped_geometry::{Mat3, Obb, OpCount, Vec3};
    use moped_hw::satq::{obb_obb_q, QObb};
    let a = Obb::new(
        Vec3::new(10.0, 20.0, 20.0),
        Vec3::new(3.0, 2.0, 1.5),
        Mat3::from_euler(0.4, 0.3, -0.2),
    );
    let b_near = Obb::new(
        Vec3::new(12.0, 20.5, 19.5),
        Vec3::new(2.0, 2.0, 2.0),
        Mat3::from_euler(-0.7, 0.1, 0.9),
    );
    let (qa, qb) = (QObb::from_obb(&a), QObb::from_obb(&b_near));
    let mut g = c.benchmark_group("sat_datapath");
    g.bench_function("float64", |bch| {
        bch.iter(|| {
            let mut ops = OpCount::default();
            black_box(moped_geometry::sat::obb_obb(
                black_box(&a),
                black_box(&b_near),
                &mut ops,
            ))
        })
    });
    g.bench_function("fixed16", |bch| {
        bch.iter(|| {
            let mut ops = OpCount::default();
            black_box(obb_obb_q(black_box(&qa), black_box(&qb), &mut ops))
        })
    });
    g.finish();
}

fn bench_cachesim(c: &mut Criterion) {
    use moped_hw::cachesim;
    // Root-heavy synthetic trace resembling real SI-MBR search traffic.
    let mut trace = Vec::new();
    for i in 0..20_000usize {
        trace.push(0);
        trace.push(1 + (i % 5));
        trace.push(50 + (i * 7) % 1000);
    }
    c.bench_function("cachesim_replay_60k", |b| {
        b.iter(|| black_box(cachesim::replay(black_box(&trace), 32, 4, 15)))
    });
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_lfsr,
    bench_fixed,
    bench_satq,
    bench_cachesim
);
criterion_main!(benches);
