//! Service-layer throughput: wall-clock for a 32-request batch through
//! the worker pool at 1, 4, and 8 workers. Divide the batch size by the
//! reported mean to get plans/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moped_core::PlannerParams;
use moped_robot::Robot;
use moped_service::{EnvironmentCatalog, PlanRequest, PlanService, ServiceConfig};
use std::hint::black_box;

const BATCH: usize = 32;

fn run_batch(workers: usize) -> usize {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();
    let service = PlanService::start(
        catalog,
        ServiceConfig {
            workers,
            queue_capacity: BATCH,
            stop_poll_every: 64,
            ..Default::default()
        },
    );
    let requests = (0..BATCH).map(|i| {
        let params = PlannerParams {
            max_samples: 300,
            seed: i as u64,
            ..PlannerParams::default()
        };
        PlanRequest::new(env_ids[i % env_ids.len()], params)
    });
    let responses = service.run_batch(requests);
    service.shutdown();
    responses
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|o| o.is_served()))
        .count()
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_batch32");
    g.sample_size(10);
    for &workers in &[1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(run_batch(workers))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_worker_scaling);
criterion_main!(benches);
