//! Criterion benchmarks for the neighbor-search backends on RRT*-shaped
//! point clouds (Fig 19 right, wall-clock view): SI-MBR-Tree (both
//! insertion modes) vs KD-tree vs linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moped_geometry::{Config, OpCount};
use moped_kdtree::KdTree;
use moped_simbr::{SearchStats, SiMbrTree};
use std::hint::black_box;

/// Deterministic RRT*-like point stream: each point steps a short
/// distance from a pseudo-randomly chosen previous point.
fn tree_points(n: usize, dim: usize) -> Vec<Config> {
    let mut pts = vec![Config::zeros(dim)];
    let mut state = 0x243F6A8885A308D3u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 1..n {
        let anchor = pts[(rnd() % pts.len() as u64) as usize];
        let mut c = anchor;
        for i in 0..dim {
            let delta = ((rnd() % 2000) as f64 / 1000.0 - 1.0) * 2.0;
            c.as_mut_slice()[i] = (c[i] + delta).clamp(-100.0, 100.0);
        }
        pts.push(c);
    }
    pts
}

fn bench_insert(c: &mut Criterion) {
    let pts = tree_points(2000, 6);
    let mut g = c.benchmark_group("insert_2000x6d");
    g.bench_function("simbr_conventional", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            let mut t = SiMbrTree::new(6, 6);
            for (i, p) in pts.iter().enumerate() {
                t.insert_conventional(i as u64, *p, &mut ops);
            }
            black_box(t.len())
        })
    });
    g.bench_function("simbr_lci", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            let mut t = SiMbrTree::new(6, 6);
            t.insert_conventional(0, pts[0], &mut ops);
            for (i, p) in pts.iter().enumerate().skip(1) {
                let (near, _) = t.nearest(p, &mut ops).unwrap();
                t.insert_near(i as u64, *p, near, &mut ops);
            }
            black_box(t.len())
        })
    });
    g.bench_function("kdtree", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            let mut t = KdTree::new(6);
            for (i, p) in pts.iter().enumerate() {
                t.insert(i as u64, *p, &mut ops);
            }
            black_box(t.len())
        })
    });
    g.finish();
}

fn bench_nearest(c: &mut Criterion) {
    let mut g = c.benchmark_group("nearest");
    for &(n, dim) in &[(1000usize, 3usize), (5000, 3), (5000, 7)] {
        let pts = tree_points(n, dim);
        let mut ops = OpCount::default();
        let mut simbr = SiMbrTree::new(dim, 6);
        let mut kd = KdTree::new(dim);
        for (i, p) in pts.iter().enumerate() {
            simbr.insert_conventional(i as u64, *p, &mut ops);
            kd.insert(i as u64, *p, &mut ops);
        }
        let q = Config::new(&vec![13.7; dim]);
        g.bench_with_input(
            BenchmarkId::new("simbr", format!("{n}x{dim}d")),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(simbr.nearest(black_box(q), &mut ops))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("kdtree", format!("{n}x{dim}d")),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(kd.nearest(black_box(q), &mut ops))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("linear", format!("{n}x{dim}d")),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(simbr.nearest_linear(black_box(q), &mut ops))
                })
            },
        );
    }
    g.finish();
}

/// Old-vs-new engine comparison on the same tree: the pre-rewrite
/// traversal (depth-first MINDIST descent, `nearest_reference_dfs`) vs
/// the best-first engine, cold and with a warm search-trace seed. All
/// three return the exact nearest neighbor.
fn bench_engine_old_vs_new(c: &mut Criterion) {
    let mut g = c.benchmark_group("nearest_engine");
    for &(n, dim) in &[(5000usize, 3usize), (5000, 6)] {
        let pts = tree_points(n, dim);
        let mut ops = OpCount::default();
        let mut tree = SiMbrTree::new(dim, 6);
        for (i, p) in pts.iter().enumerate() {
            tree.insert_conventional(i as u64, *p, &mut ops);
        }
        let q = Config::new(&vec![13.7; dim]);
        let mut stats = SearchStats::default();
        let (winner, _) = tree.nearest(&q, &mut ops).unwrap();
        g.bench_with_input(
            BenchmarkId::new("reference_dfs", format!("{n}x{dim}d")),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(tree.nearest_reference_dfs(black_box(q), &mut ops, &mut stats))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("best_first", format!("{n}x{dim}d")),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(tree.nearest_with_stats(black_box(q), &mut ops, &mut stats))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("best_first_warm", format!("{n}x{dim}d")),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut ops = OpCount::default();
                    black_box(tree.nearest_with_hint(
                        black_box(q),
                        Some(winner),
                        &mut ops,
                        &mut stats,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_sias(c: &mut Criterion) {
    let pts = tree_points(3000, 5);
    let mut ops = OpCount::default();
    let mut tree = SiMbrTree::new(5, 6);
    for (i, p) in pts.iter().enumerate() {
        tree.insert_conventional(i as u64, *p, &mut ops);
    }
    let q = pts[1500];
    let mut g = c.benchmark_group("neighborhood");
    g.bench_function("exact_near", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(tree.near(black_box(&q), 4.0, &mut ops))
        })
    });
    g.bench_function("sias_leaf_group", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(tree.leaf_group(black_box(1500), &mut ops))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_nearest,
    bench_engine_old_vs_new,
    bench_sias
);
criterion_main!(benches);
