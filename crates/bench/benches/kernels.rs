//! Criterion micro-benchmarks for the geometric kernels: the SAT variants
//! whose unit-cost gap motivates the two-stage collision scheme, and the
//! MINDIST bound behind SI-MBR search.

use criterion::{criterion_group, criterion_main, Criterion};
use moped_geometry::{sat, Aabb, Config, Mat3, Obb, OpCount, Rect, Vec3};
use std::hint::black_box;

fn bench_sat(c: &mut Criterion) {
    let a3 = Obb::from_euler(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.5), 0.3, 0.6, -0.2);
    let b3 = Obb::from_euler(
        Vec3::new(1.5, 1.0, 0.2),
        Vec3::new(0.5, 1.5, 1.0),
        -0.7,
        0.1,
        0.9,
    );
    let aabb = Aabb::from_center_half(Vec3::ZERO, Vec3::splat(2.0));
    let a2 = Obb::planar(Vec3::ZERO, 2.0, 1.0, 0.4);
    let b2 = Obb::planar(Vec3::new(1.0, 0.5, 0.0), 1.0, 1.5, -0.3);

    let mut g = c.benchmark_group("sat");
    g.bench_function("obb_obb_3d", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(sat::obb_obb(black_box(&a3), black_box(&b3), &mut ops))
        })
    });
    g.bench_function("aabb_obb_3d", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(sat::aabb_obb(black_box(&aabb), black_box(&b3), &mut ops))
        })
    });
    g.bench_function("obb_obb_2d", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(sat::obb_obb(black_box(&a2), black_box(&b2), &mut ops))
        })
    });
    g.finish();
}

fn bench_mindist(c: &mut Criterion) {
    let rect = Rect::new(
        Config::new(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        Config::new(&[5.0, 4.0, 3.0, 2.0, 1.0, 6.0, 7.0]),
    );
    let q = Config::new(&[8.0, -2.0, 1.5, 9.0, 0.5, 3.0, -1.0]);
    c.bench_function("mindist_7d", |b| {
        b.iter(|| {
            let mut ops = OpCount::default();
            black_box(rect.mindist_sq(black_box(&q), &mut ops))
        })
    });
}

fn bench_rotation(c: &mut Criterion) {
    c.bench_function("euler_rotation_build", |b| {
        b.iter(|| {
            black_box(Mat3::from_euler(
                black_box(0.3),
                black_box(0.5),
                black_box(-0.2),
            ))
        })
    });
}

criterion_group!(benches, bench_sat, bench_mindist, bench_rotation);
criterion_main!(benches);
