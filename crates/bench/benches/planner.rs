//! Criterion benchmarks for the end-to-end planners (Fig 16 bottom,
//! wall-clock view): the V0 baseline vs the full MOPED V4 stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moped_core::{plan_variant, PlannerParams, Variant};
use moped_env::{Scenario, ScenarioParams};
use moped_robot::Robot;
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_300_samples");
    g.sample_size(10);
    for robot in [Robot::mobile_2d(), Robot::drone_3d(), Robot::xarm7()] {
        let s = Scenario::generate(robot.clone(), &ScenarioParams::with_obstacles(16), 7);
        let params = PlannerParams {
            max_samples: 300,
            seed: 3,
            ..PlannerParams::default()
        };
        for variant in [Variant::V0Baseline, Variant::V1Tsps, Variant::V4Lci] {
            g.bench_with_input(
                BenchmarkId::new(format!("{variant}"), robot.name()),
                &s,
                |b, s| b.iter(|| black_box(plan_variant(black_box(s), variant, &params))),
            );
        }
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // How wall-clock scales with the sampling budget (Fig 19 left trend).
    let mut g = c.benchmark_group("budget_scaling_mobile2d");
    g.sample_size(10);
    let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 11);
    for &samples in &[200usize, 400, 800] {
        let params = PlannerParams {
            max_samples: samples,
            seed: 5,
            ..PlannerParams::default()
        };
        g.bench_with_input(BenchmarkId::new("v4", samples), &s, |b, s| {
            b.iter(|| black_box(plan_variant(black_box(s), Variant::V4Lci, &params)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_variants, bench_scaling);
criterion_main!(benches);
