//! Property-based tests for the collision pipelines: the two-stage
//! checker must agree with the naive exact checker on every query, and
//! the AABB-only mode must be conservative.

use moped_collision::{
    CollisionChecker, CollisionLedger, NaiveAabbChecker, NaiveChecker, SecondStage, TwoStageChecker,
};
use moped_geometry::{Config, InterpolationSteps};
use moped_robot::Robot;
use proptest::prelude::*;

/// A deterministic obstacle field from a seed (proptest drives the seed,
/// scenario generation supplies realistic geometry).
fn scene(seed: u64, count: usize) -> moped_env::Scenario {
    moped_env::Scenario::generate(
        Robot::drone_3d(),
        &moped_env::ScenarioParams::with_obstacles(count),
        seed,
    )
}

fn unit_config(robot: &Robot, unit: &[f64]) -> Config {
    robot.config_from_unit(unit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactness: two-stage (OBB second stage) equals the naive checker
    /// on arbitrary configurations.
    #[test]
    fn two_stage_matches_naive(
        seed in 0u64..500,
        unit in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        let s = scene(seed, 24);
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let q = unit_config(&s.robot, &unit);
        let mut l1 = CollisionLedger::default();
        let mut l2 = CollisionLedger::default();
        prop_assert_eq!(
            naive.config_free(&s.robot, &q, &mut l1),
            two.config_free(&s.robot, &q, &mut l2)
        );
    }

    /// Conservativeness: whenever an AABB-based checker says free, the
    /// exact checker must also say free (never the other way).
    #[test]
    fn aabb_checkers_are_conservative(
        seed in 0u64..500,
        unit in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        let s = scene(seed, 24);
        let exact = NaiveChecker::new(s.obstacles.clone());
        let loose_naive = NaiveAabbChecker::new(s.obstacles.clone());
        let loose_two = TwoStageChecker::new(s.obstacles.clone(), 4, SecondStage::AabbOnly);
        let q = unit_config(&s.robot, &unit);
        let mut l = CollisionLedger::default();
        if loose_naive.config_free(&s.robot, &q, &mut l) {
            prop_assert!(exact.config_free(&s.robot, &q, &mut l));
        }
        if loose_two.config_free(&s.robot, &q, &mut l) {
            prop_assert!(exact.config_free(&s.robot, &q, &mut l));
        }
    }

    /// The two AABB-based checkers (naive scan and R-tree filtered) make
    /// identical decisions — the hierarchy changes cost, not semantics.
    #[test]
    fn aabb_hierarchy_preserves_semantics(
        seed in 0u64..500,
        unit in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        let s = scene(seed, 32);
        let a = NaiveAabbChecker::new(s.obstacles.clone());
        let b = TwoStageChecker::new(s.obstacles.clone(), 4, SecondStage::AabbOnly);
        let q = unit_config(&s.robot, &unit);
        let mut l = CollisionLedger::default();
        prop_assert_eq!(
            a.config_free(&s.robot, &q, &mut l),
            b.config_free(&s.robot, &q, &mut l)
        );
    }

    /// Motion queries agree between checkers for arbitrary short motions.
    #[test]
    fn motion_queries_agree(
        seed in 0u64..200,
        unit_a in prop::collection::vec(0.0..1.0f64, 6),
        delta in prop::collection::vec(-0.05..0.05f64, 6),
    ) {
        let s = scene(seed, 16);
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let from = unit_config(&s.robot, &unit_a);
        let unit_b: Vec<f64> =
            unit_a.iter().zip(&delta).map(|(a, d)| (a + d).clamp(0.0, 1.0)).collect();
        let to = unit_config(&s.robot, &unit_b);
        let steps = InterpolationSteps::default();
        let mut l1 = CollisionLedger::default();
        let mut l2 = CollisionLedger::default();
        prop_assert_eq!(
            naive.motion_free(&s.robot, &from, &to, &steps, &mut l1),
            two.motion_free(&s.robot, &from, &to, &steps, &mut l2)
        );
        prop_assert_eq!(l1.pose_queries >= 1, true);
    }
}
