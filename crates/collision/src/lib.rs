//! Motion collision checking for MOPED.
//!
//! RRT\* must verify the *entire movement course* between configurations,
//! so every planner query here is a motion query: the straight segment is
//! discretized into poses, forward kinematics produces the robot's body
//! OBBs at each pose, and each body is tested against the obstacle field.
//! Three checkers implement that contract:
//!
//! * [`NaiveChecker`] — the baseline: every body × every obstacle gets an
//!   exact OBB–OBB SAT at every pose. This is what the profiled RRT\*
//!   breakdown (Fig 3) spends most of its time in.
//! * [`TwoStageChecker`] — MOPED's §III-A scheme: an offline-built STR
//!   R-tree over obstacle AABBs filters with cheap AABB–OBB checks
//!   (stage 1); only survivors get the exact OBB–OBB check (stage 2).
//! * [`TwoStageChecker`] in [`SecondStage::AabbOnly`] mode — the Fig 18
//!   ablation: survivors of the first stage are *declared* collisions
//!   (loose, conservative), trading path quality for check cost.
//!
//! All work is charged to a [`CollisionLedger`] so the Fig 6 / Fig 18
//! comparisons come from counted operations.

#![deny(missing_docs)]

pub mod parallel;

use std::fmt;

use moped_geometry::{sat, Config, InterpolationSteps, Obb, OpCount};
use moped_robot::Robot;
use moped_rtree::{FilterStats, RTree};

/// Accounting for collision work, split by pipeline stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CollisionLedger {
    /// Arithmetic charged by first-stage (AABB–OBB / R-tree) work.
    pub first_stage: OpCount,
    /// Arithmetic charged by second-stage (exact OBB–OBB) work.
    pub second_stage: OpCount,
    /// Motion-level queries issued by the planner.
    pub motion_queries: u64,
    /// Individual poses checked across all motions.
    pub pose_queries: u64,
    /// R-tree traversal statistics accumulated over all first stages.
    pub filter: FilterStats,
}

impl CollisionLedger {
    /// Sum of both stages' arithmetic.
    pub fn total_ops(&self) -> OpCount {
        self.first_stage + self.second_stage
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = CollisionLedger::default();
    }
}

impl fmt::Display for CollisionLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} motions, {} poses, {} MAC-equiv",
            self.motion_queries,
            self.pose_queries,
            self.total_ops().mac_equiv()
        )
    }
}

/// The checking interface the planners consume.
///
/// Implementations must be *sound*: a motion reported free must have no
/// checked pose in collision under the checker's obstacle representation.
/// Conservative over-reporting of collisions (as AABB relaxations do) is
/// allowed and is exactly the path-quality trade-off Fig 5/18 studies.
pub trait CollisionChecker {
    /// Returns `true` if configuration `q` is collision free.
    fn config_free(&self, robot: &Robot, q: &Config, ledger: &mut CollisionLedger) -> bool;

    /// Returns `true` if the straight motion `from → to` is collision
    /// free at the given discretization.
    ///
    /// The default implementation interpolates poses and checks each one,
    /// failing fast on the first colliding pose.
    fn motion_free(
        &self,
        robot: &Robot,
        from: &Config,
        to: &Config,
        steps: &InterpolationSteps,
        ledger: &mut CollisionLedger,
    ) -> bool {
        let _span = moped_obs::span(moped_obs::Stage::Collision);
        ledger.motion_queries += 1;
        // Poses are generated in place (same sequence as
        // [`moped_geometry::interpolate`]) so the hot loop never allocates.
        let n = steps.count(from.distance(to));
        for i in 1..=n {
            let pose = if i == n {
                *to
            } else {
                from.lerp(to, i as f64 / n as f64)
            };
            ledger.pose_queries += 1;
            if !self.config_free(robot, &pose, ledger) {
                return false;
            }
        }
        true
    }

    /// Clears transient acceleration state (e.g. last-hit caches) so a
    /// fresh plan's *operation counts* do not depend on earlier queries
    /// against the same shared checker. Verdicts never depend on this
    /// state; planners call it once at the start of each plan.
    fn begin_plan(&self) {}

    /// Short descriptive name for reports.
    fn name(&self) -> &'static str;
}

/// Baseline all-pairs exact checker: every robot body OBB against every
/// obstacle OBB, 15-axis SAT each (4-axis for the planar workload).
#[derive(Clone, Debug)]
pub struct NaiveChecker {
    obstacles: Vec<Obb>,
    bodies: std::cell::RefCell<Vec<Obb>>,
}

impl NaiveChecker {
    /// Creates a checker over the given obstacle field.
    pub fn new(obstacles: Vec<Obb>) -> Self {
        NaiveChecker {
            obstacles,
            bodies: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The obstacle field being checked against.
    pub fn obstacles(&self) -> &[Obb] {
        &self.obstacles
    }
}

impl CollisionChecker for NaiveChecker {
    fn config_free(&self, robot: &Robot, q: &Config, ledger: &mut CollisionLedger) -> bool {
        let _span = moped_obs::span(moped_obs::Stage::Collision);
        let mut bodies = self.bodies.borrow_mut();
        robot.body_obbs_into(q, &mut bodies);
        let _narrow = moped_obs::span(moped_obs::Stage::NarrowPhase);
        for body in bodies.iter() {
            for obs in &self.obstacles {
                ledger.second_stage.mem_words += obs.encoded_words();
                if sat::obb_obb(obs, body, &mut ledger.second_stage) {
                    return false;
                }
            }
        }
        true
    }

    fn name(&self) -> &'static str {
        "naive-obb"
    }
}

/// Baseline all-pairs *AABB-relaxed* checker: every robot body OBB against
/// every obstacle's AABB relaxation, any hit declared a collision. This is
/// the "RRT\* ASIC using the same AABB checker" baseline of Fig 18
/// (right): cheap per query, no hierarchy, false positives included.
#[derive(Clone, Debug)]
pub struct NaiveAabbChecker {
    obstacles: Vec<Obb>,
    aabbs: Vec<moped_geometry::Aabb>,
    bodies: std::cell::RefCell<Vec<Obb>>,
}

impl NaiveAabbChecker {
    /// Creates a checker over the AABB relaxations of `obstacles`.
    pub fn new(obstacles: Vec<Obb>) -> Self {
        let aabbs = obstacles
            .iter()
            .map(moped_geometry::Aabb::from_obb)
            .collect();
        NaiveAabbChecker {
            obstacles,
            aabbs,
            bodies: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The original OBB obstacle field.
    pub fn obstacles(&self) -> &[Obb] {
        &self.obstacles
    }
}

impl CollisionChecker for NaiveAabbChecker {
    fn config_free(&self, robot: &Robot, q: &Config, ledger: &mut CollisionLedger) -> bool {
        let _span = moped_obs::span(moped_obs::Stage::Collision);
        let mut bodies = self.bodies.borrow_mut();
        robot.body_obbs_into(q, &mut bodies);
        let _broad = moped_obs::span(moped_obs::Stage::BroadPhase);
        for body in bodies.iter() {
            for aabb in &self.aabbs {
                ledger.first_stage.mem_words += if body.is_planar() { 4 } else { 6 };
                if sat::aabb_obb(aabb, body, &mut ledger.first_stage) {
                    return false;
                }
            }
        }
        true
    }

    fn name(&self) -> &'static str {
        "naive-aabb"
    }
}

/// Second-stage policy for [`TwoStageChecker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecondStage {
    /// Exact OBB–OBB verification of first-stage survivors (MOPED).
    ObbExact,
    /// Treat any first-stage survivor as a collision (AABB-only ablation,
    /// Fig 18): cheap but suffers false positives that inflate path cost.
    AabbOnly,
}

/// Narrow-phase kernel selection for [`TwoStageChecker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NarrowMode {
    /// The pre-rewrite path: one early-exit 15-axis SAT per survivor,
    /// obstacle data gathered from the AoS obstacle list. Kept as the
    /// old-vs-new baseline for the benches.
    Reference,
    /// Batched SAT over the precomputed SoA obstacle field: survivors are
    /// processed in [`sat::SAT_BATCH`]-wide chunks of branch-free
    /// full-axis lanes, with the body's axes prepared once per pose.
    /// Returns the same verdicts (any-hit semantics) as `Reference`.
    Batched,
}

/// MOPED's two-stage checker (§III-A): R-tree AABB filter, then exact
/// OBB–OBB on survivors.
///
/// The obstacle field is held as a precomputed structure-of-arrays
/// ([`sat::ObbSoa`]): centers, half-extents, and rotation axes are
/// extracted once at construction, so the narrow phase streams plain
/// `f64` lanes instead of re-deriving axes per test. In
/// [`NarrowMode::Batched`] + [`SecondStage::ObbExact`] a *last-hit cache*
/// remembers the obstacle that most recently caused a collision and, when
/// that obstacle survives the broad phase again, moves it to the front of
/// the survivor list — colliding poses cluster on the same obstacle, so
/// the batched SAT terminates on its first chunk. The reorder is free (a
/// swap) and verdict-preserving: any-hit semantics do not depend on
/// survivor order. See DESIGN §10 for why the earlier probe-before-
/// broad-phase design was a net loss on planner workloads.
#[derive(Clone, Debug)]
pub struct TwoStageChecker {
    rtree: RTree,
    soa: sat::ObbSoa,
    second: SecondStage,
    narrow: NarrowMode,
    last_hit: std::cell::Cell<Option<usize>>,
    cache_hits: std::cell::Cell<u64>,
    cache_misses: std::cell::Cell<u64>,
    scratch: std::cell::RefCell<TwoStageScratch>,
}

#[derive(Clone, Debug, Default)]
struct TwoStageScratch {
    bodies: Vec<Obb>,
    stack: Vec<usize>,
    survivors: Vec<usize>,
}

impl TwoStageChecker {
    /// Builds the checker, bulk-loading the obstacle R-tree offline with
    /// the given fanout (paper-style small node, default choice is 4).
    pub fn new(obstacles: Vec<Obb>, fanout: usize, second: SecondStage) -> Self {
        let rtree = RTree::build(&obstacles, fanout);
        TwoStageChecker::with_prebuilt(rtree, obstacles, second)
    }

    /// Convenience constructor with the default fanout and exact second
    /// stage.
    pub fn moped(obstacles: Vec<Obb>) -> Self {
        TwoStageChecker::new(obstacles, 4, SecondStage::ObbExact)
    }

    /// Wraps an R-tree that was already bulk-loaded over exactly
    /// `obstacles` (same order). A serving layer pays the STR build once
    /// per environment snapshot and hands each worker a cheap structural
    /// clone instead of re-sorting the obstacle field per request.
    pub fn with_prebuilt(rtree: RTree, obstacles: Vec<Obb>, second: SecondStage) -> Self {
        TwoStageChecker::with_prebuilt_soa(rtree, sat::ObbSoa::build(obstacles), second)
    }

    /// Like [`TwoStageChecker::with_prebuilt`], but also reuses an
    /// already-extracted SoA obstacle field (see
    /// `moped_env::Scenario::prepared_obstacles`), so per-worker checker
    /// construction copies flat arrays instead of re-deriving axes.
    pub fn with_prebuilt_soa(rtree: RTree, soa: sat::ObbSoa, second: SecondStage) -> Self {
        debug_assert_eq!(rtree.len(), soa.len(), "rtree/obstacle mismatch");
        TwoStageChecker {
            rtree,
            soa,
            second,
            narrow: NarrowMode::Batched,
            last_hit: std::cell::Cell::new(None),
            cache_hits: std::cell::Cell::new(0),
            cache_misses: std::cell::Cell::new(0),
            scratch: std::cell::RefCell::new(TwoStageScratch::default()),
        }
    }

    /// Selects the narrow-phase kernel (builder style); the default is
    /// [`NarrowMode::Batched`].
    pub fn with_narrow_mode(mut self, narrow: NarrowMode) -> Self {
        self.narrow = narrow;
        self
    }

    /// The underlying obstacle R-tree (exposed for the hardware model's
    /// SRAM sizing).
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// The obstacle field.
    pub fn obstacles(&self) -> &[Obb] {
        self.soa.obbs()
    }

    /// The configured second-stage policy.
    pub fn second_stage(&self) -> SecondStage {
        self.second
    }

    /// The configured narrow-phase kernel.
    pub fn narrow_mode(&self) -> NarrowMode {
        self.narrow
    }

    /// Last-hit cache `(hits, misses)` since construction. A hit is a
    /// colliding pose resolved by the front-loaded cached obstacle; a
    /// miss is a cached entry that failed to recur (the pose was free or
    /// a different obstacle collided). Misses cost nothing — the cache
    /// only reorders work the pipeline was doing anyway.
    pub fn narrow_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    /// Whether the last-hit cache is live under the current configuration.
    fn cache_enabled(&self) -> bool {
        self.narrow == NarrowMode::Batched && self.second == SecondStage::ObbExact
    }
}

impl CollisionChecker for TwoStageChecker {
    fn config_free(&self, robot: &Robot, q: &Config, ledger: &mut CollisionLedger) -> bool {
        let _span = moped_obs::span(moped_obs::Stage::Collision);
        let scratch = &mut *self.scratch.borrow_mut();
        robot.body_obbs_into(q, &mut scratch.bodies);

        for body in &scratch.bodies {
            // Stage 1: hierarchical AABB filter (spanned as broad-phase
            // inside `RTree::filter_into`).
            self.rtree.filter_into(
                body,
                &mut ledger.first_stage,
                &mut ledger.filter,
                &mut scratch.stack,
                &mut scratch.survivors,
            );
            if scratch.survivors.is_empty() {
                continue;
            }
            match self.second {
                SecondStage::AabbOnly => return false,
                SecondStage::ObbExact => {
                    // Stage 2: exact check on the few survivors only.
                    let _narrow = moped_obs::span(moped_obs::Stage::NarrowPhase);
                    match self.narrow {
                        NarrowMode::Batched => {
                            // Cost-free last-hit reuse: front-load the
                            // cached obstacle so a recurring collision
                            // resolves in the first SAT chunk. A swap
                            // never changes the any-hit verdict.
                            if self.cache_enabled() {
                                if let Some(prev) = self.last_hit.get() {
                                    if let Some(pos) =
                                        scratch.survivors.iter().position(|&s| s == prev)
                                    {
                                        scratch.survivors.swap(0, pos);
                                    }
                                }
                            }
                            let pre = sat::prepare(body);
                            for &oid in &scratch.survivors {
                                ledger.second_stage.mem_words += self.soa.get(oid).encoded_words();
                            }
                            if let Some(oid) = sat::obb_obb_batch(
                                &self.soa,
                                &scratch.survivors,
                                &pre,
                                &mut ledger.second_stage,
                            ) {
                                if self.cache_enabled() {
                                    match self.last_hit.get() {
                                        Some(prev) if prev == oid => {
                                            self.cache_hits.set(self.cache_hits.get() + 1);
                                            moped_obs::counters::bump(
                                                moped_obs::Counter::LeafCacheHit,
                                            );
                                        }
                                        Some(_) => {
                                            self.cache_misses.set(self.cache_misses.get() + 1);
                                            moped_obs::counters::bump(
                                                moped_obs::Counter::LeafCacheMiss,
                                            );
                                        }
                                        None => {}
                                    }
                                    self.last_hit.set(Some(oid));
                                }
                                return false;
                            }
                        }
                        NarrowMode::Reference => {
                            for &oid in &scratch.survivors {
                                let obs = self.soa.get(oid);
                                ledger.second_stage.mem_words += obs.encoded_words();
                                if sat::obb_obb(obs, body, &mut ledger.second_stage) {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Free pose: a lingering cache entry failed to recur. Retire it
        // (and count the miss) so the stats reflect real reuse.
        if self.cache_enabled() && self.last_hit.take().is_some() {
            self.cache_misses.set(self.cache_misses.get() + 1);
            moped_obs::counters::bump(moped_obs::Counter::LeafCacheMiss);
        }
        true
    }

    fn begin_plan(&self) {
        self.last_hit.set(None);
    }

    fn name(&self) -> &'static str {
        match self.second {
            SecondStage::ObbExact => "two-stage-obb",
            SecondStage::AabbOnly => "two-stage-aabb-only",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_env::{Scenario, ScenarioParams};
    use moped_geometry::Vec3;

    fn drone_scene(seed: u64, obstacles: usize) -> Scenario {
        Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(obstacles),
            seed,
        )
    }

    #[test]
    fn empty_world_is_always_free() {
        let naive = NaiveChecker::new(Vec::new());
        let two = TwoStageChecker::moped(Vec::new());
        let robot = Robot::drone_3d();
        let q = robot.config_from_unit(&[0.5; 6]);
        let mut ledger = CollisionLedger::default();
        assert!(naive.config_free(&robot, &q, &mut ledger));
        assert!(two.config_free(&robot, &q, &mut ledger));
    }

    #[test]
    fn checkers_agree_on_config_queries() {
        for seed in 0..5 {
            let s = drone_scene(seed, 24);
            let naive = NaiveChecker::new(s.obstacles.clone());
            let two = TwoStageChecker::moped(s.obstacles.clone());
            let mut ln = CollisionLedger::default();
            let mut lt = CollisionLedger::default();
            let mut rng_like = 0u64;
            for _ in 0..40 {
                rng_like = rng_like
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed + 1);
                let unit: Vec<f64> = (0..6)
                    .map(|i| ((rng_like >> (i * 8)) & 0xFF) as f64 / 255.0)
                    .collect();
                let q = s.robot.config_from_unit(&unit);
                assert_eq!(
                    naive.config_free(&s.robot, &q, &mut ln),
                    two.config_free(&s.robot, &q, &mut lt),
                    "disagreement at {q:?} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn two_stage_is_cheaper_on_realistic_scenes() {
        let s = drone_scene(11, 48);
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let mut ln = CollisionLedger::default();
        let mut lt = CollisionLedger::default();
        let steps = InterpolationSteps::default();
        let mut q = s.start;
        for t in 1..20 {
            let next = s.start.lerp(&s.goal, t as f64 / 20.0);
            let _ = naive.motion_free(&s.robot, &q, &next, &steps, &mut ln);
            let _ = two.motion_free(&s.robot, &q, &next, &steps, &mut lt);
            q = next;
        }
        let naive_cost = ln.total_ops().mac_equiv();
        let two_cost = lt.total_ops().mac_equiv();
        assert!(
            two_cost * 2 < naive_cost,
            "two-stage should save well over 2x here: {two_cost} vs {naive_cost}"
        );
    }

    #[test]
    fn aabb_only_is_conservative_wrt_exact() {
        // If AABB-only says free, exact must also say free.
        let s = drone_scene(3, 32);
        let loose = TwoStageChecker::new(s.obstacles.clone(), 4, SecondStage::AabbOnly);
        let exact = TwoStageChecker::moped(s.obstacles.clone());
        let mut ll = CollisionLedger::default();
        let mut le = CollisionLedger::default();
        let mut state = 7u64;
        for _ in 0..60 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let unit: Vec<f64> = (0..6)
                .map(|i| ((state >> (i * 9)) & 0x1FF) as f64 / 511.0)
                .collect();
            let q = s.robot.config_from_unit(&unit);
            if loose.config_free(&s.robot, &q, &mut ll) {
                assert!(
                    exact.config_free(&s.robot, &q, &mut le),
                    "AABB-only freed a config the exact checker rejects"
                );
            }
        }
    }

    #[test]
    fn motion_through_wall_detected() {
        let wall = Obb::axis_aligned(Vec3::new(150.0, 150.0, 150.0), Vec3::new(5.0, 120.0, 120.0));
        let robot = Robot::drone_3d();
        let from = Config::new(&[50.0, 150.0, 150.0, 0.0, 0.0, 0.0]);
        let to = Config::new(&[250.0, 150.0, 150.0, 0.0, 0.0, 0.0]);
        let steps = InterpolationSteps::default();
        let mut ledger = CollisionLedger::default();
        for checker in [
            Box::new(NaiveChecker::new(vec![wall])) as Box<dyn CollisionChecker>,
            Box::new(TwoStageChecker::moped(vec![wall])),
        ] {
            assert!(
                !checker.motion_free(&robot, &from, &to, &steps, &mut ledger),
                "{} missed the wall",
                checker.name()
            );
        }
    }

    #[test]
    fn short_free_motion_passes() {
        let s = drone_scene(5, 8);
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let steps = InterpolationSteps::default();
        let mut ledger = CollisionLedger::default();
        // A tiny motion around the validated-free start pose.
        let mut to = s.start;
        to.as_mut_slice()[0] += 0.5;
        assert!(two.motion_free(&s.robot, &s.start, &to, &steps, &mut ledger));
        assert_eq!(ledger.motion_queries, 1);
        assert!(ledger.pose_queries >= 1);
    }

    #[test]
    fn ledger_separates_stages() {
        let s = drone_scene(2, 32);
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let mut ledger = CollisionLedger::default();
        let steps = InterpolationSteps::default();
        let _ = two.motion_free(&s.robot, &s.start, &s.goal, &steps, &mut ledger);
        assert!(ledger.first_stage.sat_queries > 0, "first stage must run");
        // With 32 obstacles along a long motion, at least the filter stats
        // must register traffic.
        assert!(ledger.filter.total_checks() > 0);
    }

    #[test]
    fn arm_models_work_through_both_checkers() {
        for robot in [Robot::viperx_300(), Robot::rozum(), Robot::xarm7()] {
            let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(16), 21);
            let naive = NaiveChecker::new(s.obstacles.clone());
            let two = TwoStageChecker::moped(s.obstacles.clone());
            let mut l1 = CollisionLedger::default();
            let mut l2 = CollisionLedger::default();
            let steps = InterpolationSteps::with_resolution(0.2);
            let a = naive.motion_free(&s.robot, &s.start, &s.goal, &steps, &mut l1);
            let b = two.motion_free(&s.robot, &s.start, &s.goal, &steps, &mut l2);
            assert_eq!(a, b, "{} checkers disagree", s.robot.name());
        }
    }

    #[test]
    fn batched_narrow_phase_matches_reference_verdicts() {
        for seed in [0u64, 9, 17] {
            let s = drone_scene(seed, 40);
            let batched = TwoStageChecker::moped(s.obstacles.clone());
            let reference =
                TwoStageChecker::moped(s.obstacles.clone()).with_narrow_mode(NarrowMode::Reference);
            assert_eq!(batched.narrow_mode(), NarrowMode::Batched);
            let mut lb = CollisionLedger::default();
            let mut lr = CollisionLedger::default();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for _ in 0..50 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let unit: Vec<f64> = (0..6)
                    .map(|i| ((state >> (i * 10)) & 0x3FF) as f64 / 1023.0)
                    .collect();
                let q = s.robot.config_from_unit(&unit);
                assert_eq!(
                    batched.config_free(&s.robot, &q, &mut lb),
                    reference.config_free(&s.robot, &q, &mut lr),
                    "narrow kernels disagree at {q:?} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn last_hit_cache_short_circuits_repeat_collisions() {
        let wall = Obb::axis_aligned(Vec3::new(150.0, 150.0, 150.0), Vec3::new(5.0, 120.0, 120.0));
        let two = TwoStageChecker::moped(vec![wall]);
        let robot = Robot::drone_3d();
        let mut ledger = CollisionLedger::default();
        // Poses inside the wall: the first collision populates the cache,
        // each further one is answered by the cached obstacle alone.
        for y in 0..10 {
            let q = Config::new(&[150.0, 100.0 + 10.0 * y as f64, 150.0, 0.0, 0.0, 0.0]);
            assert!(!two.config_free(&robot, &q, &mut ledger));
        }
        let (hits, misses) = two.narrow_cache_stats();
        assert_eq!(hits, 9, "every pose after the first should hit the cache");
        assert_eq!(misses, 0);
        // A free pose far away invalidates the entry exactly once.
        let free = Config::new(&[20.0, 20.0, 20.0, 0.0, 0.0, 0.0]);
        assert!(two.config_free(&robot, &free, &mut ledger));
        assert_eq!(two.narrow_cache_stats(), (9, 1));
        assert!(two.config_free(&robot, &free, &mut ledger));
        assert_eq!(
            two.narrow_cache_stats(),
            (9, 1),
            "an empty cache must not be consulted again"
        );
    }

    #[test]
    fn cached_verdicts_agree_with_naive_on_mixed_sequences() {
        // Alternating free/colliding poses exercise every cache
        // transition; verdicts must still match the all-pairs baseline.
        let s = drone_scene(13, 36);
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let mut ln = CollisionLedger::default();
        let mut lt = CollisionLedger::default();
        let mut state = 99u64;
        for _ in 0..120 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let unit: Vec<f64> = (0..6)
                .map(|i| ((state >> (i * 7)) & 0x7F) as f64 / 127.0)
                .collect();
            let q = s.robot.config_from_unit(&unit);
            assert_eq!(
                naive.config_free(&s.robot, &q, &mut ln),
                two.config_free(&s.robot, &q, &mut lt),
                "cached two-stage diverged at {q:?}"
            );
        }
    }

    #[test]
    fn checker_names_are_stable() {
        assert_eq!(NaiveChecker::new(Vec::new()).name(), "naive-obb");
        assert_eq!(TwoStageChecker::moped(Vec::new()).name(), "two-stage-obb");
        assert_eq!(
            TwoStageChecker::new(Vec::new(), 4, SecondStage::AabbOnly).name(),
            "two-stage-aabb-only"
        );
    }
}
