//! Collision-check-level spatial parallelism.
//!
//! §VI positions MOPED's *temporal* parallelism (speculate-and-repair) as
//! complementary to the *spatial* parallelism of prior work (\[4\], \[7\]:
//! the poses of one motion query can be checked simultaneously). This
//! module demonstrates that complementarity in software: a wrapper that
//! fans a motion query's poses across worker threads, each with its own
//! clone of the underlying checker.
//!
//! Two properties the paper calls out are visible here:
//!
//! * the *decision* is identical to the serial checker's (an AND
//!   reduction over poses), and
//! * parallelism does not reduce the total operation count — workers may
//!   even do extra work a serial early-exit would skip — which is exactly
//!   why MOPED pairs parallelism *with* algorithmic cost reduction.

use std::sync::atomic::{AtomicBool, Ordering};

use moped_geometry::{Config, InterpolationSteps};
use moped_robot::Robot;

use crate::{CollisionChecker, CollisionLedger};

/// A motion checker that verifies poses on `threads` workers.
#[derive(Debug)]
pub struct ParallelMotionChecker<C> {
    workers: Vec<C>,
}

impl<C: CollisionChecker + Clone + Send> ParallelMotionChecker<C> {
    /// Wraps `checker`, cloning it once per worker.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(checker: C, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        ParallelMotionChecker {
            workers: vec![checker; threads],
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Checks the motion `from → to`, fanning poses across workers.
    ///
    /// Returns the same decision as the serial checker; per-worker
    /// ledgers are merged into `ledger` (total counted work may exceed
    /// the serial checker's early-exit count — that is the point the
    /// paper makes about parallelism not reducing cost).
    pub fn motion_free(
        &mut self,
        robot: &Robot,
        from: &Config,
        to: &Config,
        steps: &InterpolationSteps,
        ledger: &mut CollisionLedger,
    ) -> bool {
        ledger.motion_queries += 1;
        let n = steps.count(from.distance(to));
        let poses: Vec<Config> = (1..=n)
            .map(|i| {
                if i == n {
                    *to
                } else {
                    from.lerp(to, i as f64 / n as f64)
                }
            })
            .collect();
        let threads = self.workers.len().min(poses.len().max(1));
        let chunk = poses.len().div_ceil(threads);
        let collided = AtomicBool::new(false);

        let mut ledgers: Vec<CollisionLedger> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker, chunk_poses) in self.workers.iter_mut().zip(poses.chunks(chunk.max(1))) {
                let collided = &collided;
                handles.push(scope.spawn(move || {
                    let mut local = CollisionLedger::default();
                    for pose in chunk_poses {
                        // Cooperative early-out: once any worker found a
                        // collision, the remaining chunks stop issuing
                        // checks (the hardware analogue: the checker
                        // array raises its hit line).
                        if collided.load(Ordering::Relaxed) {
                            break;
                        }
                        local.pose_queries += 1;
                        if !worker.config_free(robot, pose, &mut local) {
                            collided.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    local
                }));
            }
            for h in handles {
                ledgers.push(h.join().expect("collision worker panicked"));
            }
        });
        for l in ledgers {
            ledger.first_stage += l.first_stage;
            ledger.second_stage += l.second_stage;
            ledger.pose_queries += l.pose_queries;
            ledger.filter.node_checks += l.filter.node_checks;
            ledger.filter.leaf_checks += l.filter.leaf_checks;
            ledger.filter.pruned_subtrees += l.filter.pruned_subtrees;
            ledger.filter.survivors += l.filter.survivors;
        }
        !collided.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoStageChecker;
    use moped_env::{Scenario, ScenarioParams};
    use moped_geometry::{Obb, Vec3};

    fn scene(seed: u64) -> Scenario {
        Scenario::generate(
            moped_robot::Robot::drone_3d(),
            &ScenarioParams::with_obstacles(24),
            seed,
        )
    }

    #[test]
    fn parallel_decision_matches_serial() {
        let s = scene(5);
        let serial = TwoStageChecker::moped(s.obstacles.clone());
        let mut par = ParallelMotionChecker::new(TwoStageChecker::moped(s.obstacles.clone()), 4);
        let steps = InterpolationSteps::with_resolution(1.0);
        for t in 0..12 {
            let to = s.start.lerp(&s.goal, (t + 1) as f64 / 12.0);
            let from = s.start.lerp(&s.goal, t as f64 / 12.0);
            let mut l1 = CollisionLedger::default();
            let mut l2 = CollisionLedger::default();
            let a = serial.motion_free(&s.robot, &from, &to, &steps, &mut l1);
            let b = par.motion_free(&s.robot, &from, &to, &steps, &mut l2);
            assert_eq!(a, b, "segment {t} decision must match");
        }
    }

    #[test]
    fn wall_is_detected_in_parallel() {
        let wall = Obb::axis_aligned(Vec3::new(150.0, 150.0, 150.0), Vec3::new(5.0, 130.0, 130.0));
        let robot = moped_robot::Robot::drone_3d();
        let mut par = ParallelMotionChecker::new(TwoStageChecker::moped(vec![wall]), 4);
        let from = Config::new(&[30.0, 150.0, 150.0, 0.0, 0.0, 0.0]);
        let to = Config::new(&[270.0, 150.0, 150.0, 0.0, 0.0, 0.0]);
        let steps = InterpolationSteps::with_resolution(2.0);
        let mut ledger = CollisionLedger::default();
        assert!(!par.motion_free(&robot, &from, &to, &steps, &mut ledger));
    }

    #[test]
    fn single_worker_degenerates_to_serial_counts() {
        let s = scene(7);
        let serial = TwoStageChecker::moped(s.obstacles.clone());
        let mut par = ParallelMotionChecker::new(TwoStageChecker::moped(s.obstacles.clone()), 1);
        let steps = InterpolationSteps::with_resolution(1.0);
        let mut l1 = CollisionLedger::default();
        let mut l2 = CollisionLedger::default();
        let a = serial.motion_free(&s.robot, &s.start, &s.goal, &steps, &mut l1);
        let b = par.motion_free(&s.robot, &s.start, &s.goal, &steps, &mut l2);
        assert_eq!(a, b);
        assert_eq!(l1.pose_queries, l2.pose_queries);
    }

    #[test]
    fn ledgers_accumulate_across_workers() {
        let s = scene(9);
        let mut par = ParallelMotionChecker::new(TwoStageChecker::moped(s.obstacles.clone()), 3);
        let steps = InterpolationSteps::with_resolution(1.0);
        let mut ledger = CollisionLedger::default();
        let _ = par.motion_free(&s.robot, &s.start, &s.goal, &steps, &mut ledger);
        assert!(ledger.pose_queries > 0);
        assert!(ledger.first_stage.sat_queries > 0);
        assert_eq!(par.threads(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = ParallelMotionChecker::new(TwoStageChecker::moped(Vec::new()), 0);
    }
}
