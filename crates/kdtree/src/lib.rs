//! KD-tree baseline for nearest-neighbor search in RRT\*.
//!
//! Fig 19 (right) of the paper compares SI-MBR-Tree neighbor search
//! against a KD-tree, the de-facto standard index in sampling-based
//! planners, reporting 4.12–7.76× computational savings for the MBR tree.
//! This crate implements that baseline faithfully:
//!
//! * **Incremental insertion** without rebalancing — points arrive one at
//!   a time from the sampler, exactly the dynamic-dataset regime the paper
//!   argues KD-trees handle poorly (sequential insertion produces
//!   correlated, unbalanced trees).
//! * **Exact nearest-neighbor search** with hyperplane pruning, charging
//!   the same [`OpCount`] ledger as the SI-MBR-Tree so costs compare
//!   apples-to-apples.
//! * An optional **bulk rebuild** (median split) so experiments can also
//!   model the "rebuild from scratch periodically" mitigation strategy
//!   and account for its cost.
//!
//! # Example
//!
//! ```
//! use moped_geometry::{Config, OpCount};
//! use moped_kdtree::KdTree;
//!
//! let mut tree = KdTree::new(3);
//! let mut ops = OpCount::default();
//! tree.insert(0, Config::new(&[0.0, 0.0, 0.0]), &mut ops);
//! tree.insert(1, Config::new(&[5.0, 5.0, 5.0]), &mut ops);
//! let (id, _d) = tree.nearest(&Config::new(&[4.0, 4.0, 4.0]), &mut ops).unwrap();
//! assert_eq!(id, 1);
//! ```

#![deny(missing_docs)]

use moped_geometry::{Config, OpCount};

#[derive(Clone, Debug)]
struct Node {
    id: u64,
    point: Config,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// An incrementally built KD-tree over configuration-space points.
#[derive(Clone, Debug)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    dim: usize,
}

/// Traversal statistics for one nearest-neighbor query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KdSearchStats {
    /// Nodes visited (distance computed).
    pub nodes_visited: u64,
    /// Subtrees pruned by the splitting-plane bound.
    pub subtrees_pruned: u64,
}

impl KdTree {
    /// Creates an empty KD-tree for `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is outside `1..=moped_geometry::MAX_DOF`.
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=moped_geometry::MAX_DOF).contains(&dim),
            "unsupported dimension {dim}"
        );
        KdTree {
            nodes: Vec::new(),
            root: None,
            dim,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree depth (longest root-to-leaf path; 0 when empty). Incremental
    /// insertion of correlated samples drives this far beyond `log n`,
    /// which is precisely the degradation Fig 19 (right) quantifies.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], n: Option<usize>) -> usize {
            match n {
                None => 0,
                Some(i) => 1 + rec(nodes, nodes[i].left).max(rec(nodes, nodes[i].right)),
            }
        }
        rec(&self.nodes, self.root)
    }

    /// Inserts a point with caller-assigned `id`, descending by the
    /// cycling split axis. Charges one coordinate comparison per level.
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the tree dimension.
    pub fn insert(&mut self, id: u64, point: Config, ops: &mut OpCount) {
        assert_eq!(point.dim(), self.dim, "dimension mismatch");
        let new_idx = self.nodes.len();
        let Some(mut cur) = self.root else {
            self.nodes.push(Node {
                id,
                point,
                axis: 0,
                left: None,
                right: None,
            });
            self.root = Some(0);
            return;
        };
        loop {
            let axis = self.nodes[cur].axis;
            ops.cmp += 1;
            ops.mem_words += self.dim as u64;
            let go_left = point[axis] < self.nodes[cur].point[axis];
            let slot = if go_left {
                self.nodes[cur].left
            } else {
                self.nodes[cur].right
            };
            match slot {
                Some(next) => cur = next,
                None => {
                    let child_axis = (axis + 1) % self.dim;
                    self.nodes.push(Node {
                        id,
                        point,
                        axis: child_axis,
                        left: None,
                        right: None,
                    });
                    if go_left {
                        self.nodes[cur].left = Some(new_idx);
                    } else {
                        self.nodes[cur].right = Some(new_idx);
                    }
                    return;
                }
            }
        }
    }

    /// Exact nearest neighbor: returns `(id, distance)` or `None` when
    /// empty. See [`KdTree::nearest_with_stats`].
    pub fn nearest(&self, query: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut stats = KdSearchStats::default();
        self.nearest_with_stats(query, ops, &mut stats)
    }

    /// Exact nearest neighbor with traversal statistics.
    ///
    /// Standard KD search: descend to the query's leaf region, then unwind
    /// and explore the far side only when the splitting hyperplane is
    /// closer than the current best — the test whose effectiveness decays
    /// with dimension (the "curse of dimensionality" cited in §III-C).
    ///
    /// # Panics
    ///
    /// Panics if `query.dim()` differs from the tree dimension.
    pub fn nearest_with_stats(
        &self,
        query: &Config,
        ops: &mut OpCount,
        stats: &mut KdSearchStats,
    ) -> Option<(u64, f64)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        let root = self.root?;
        let mut best = (0u64, f64::INFINITY);
        self.nearest_rec(root, query, &mut best, ops, stats);
        Some((best.0, best.1.sqrt()))
    }

    fn nearest_rec(
        &self,
        idx: usize,
        query: &Config,
        best: &mut (u64, f64),
        ops: &mut OpCount,
        stats: &mut KdSearchStats,
    ) {
        let node = &self.nodes[idx];
        stats.nodes_visited += 1;
        ops.mem_words += self.dim as u64;
        let d2 = node.point.distance_sq_counted(query, ops);
        ops.cmp += 1;
        if d2 < best.1 {
            *best = (node.id, d2);
        }
        let axis = node.axis;
        let delta = query[axis] - node.point[axis];
        ops.add += 1;
        let (near_side, far_side) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        ops.cmp += 1;
        if let Some(n) = near_side {
            self.nearest_rec(n, query, best, ops, stats);
        }
        // The far side can contain a closer point only if the hyperplane
        // is nearer than the current best.
        ops.mul += 1;
        ops.cmp += 1;
        if let Some(f) = far_side {
            if delta * delta < best.1 {
                self.nearest_rec(f, query, best, ops, stats);
            } else {
                stats.subtrees_pruned += 1;
            }
        }
    }

    /// All points within `radius` of `query` (unsorted), with hyperplane
    /// pruning.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `radius` is negative.
    pub fn near(&self, query: &Config, radius: f64, ops: &mut OpCount) -> Vec<(u64, Config)> {
        assert_eq!(query.dim(), self.dim, "dimension mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.near_rec(root, query, radius * radius, &mut out, ops);
        }
        out
    }

    fn near_rec(
        &self,
        idx: usize,
        query: &Config,
        r2: f64,
        out: &mut Vec<(u64, Config)>,
        ops: &mut OpCount,
    ) {
        let node = &self.nodes[idx];
        ops.mem_words += self.dim as u64;
        let d2 = node.point.distance_sq_counted(query, ops);
        ops.cmp += 1;
        if d2 <= r2 {
            out.push((node.id, node.point));
        }
        let delta = query[node.axis] - node.point[node.axis];
        ops.add += 1;
        ops.mul += 1;
        ops.cmp += 2;
        let (near_side, far_side) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near_side {
            self.near_rec(n, query, r2, out, ops);
        }
        if let Some(f) = far_side {
            if delta * delta <= r2 {
                self.near_rec(f, query, r2, out, ops);
            }
        }
    }

    /// Rebuilds the tree as a balanced median-split KD-tree over the same
    /// points, charging the full O(n log n) construction cost — the
    /// mitigation the paper notes dynamic workloads must repeatedly pay.
    pub fn rebuild_balanced(&mut self, ops: &mut OpCount) {
        let mut items: Vec<(u64, Config)> = self.nodes.iter().map(|n| (n.id, n.point)).collect();
        self.nodes.clear();
        self.root = None;
        let dim = self.dim;
        let root = self.build_rec(&mut items, 0, dim, ops);
        self.root = root;
    }

    fn build_rec(
        &mut self,
        items: &mut [(u64, Config)],
        axis: usize,
        dim: usize,
        ops: &mut OpCount,
    ) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let mid = items.len() / 2;
        items.sort_by(|a, b| a.1[axis].partial_cmp(&b.1[axis]).expect("finite coords"));
        // Charge an n log n comparison sort at this level.
        let n = items.len() as u64;
        ops.cmp += n * (64 - n.leading_zeros() as u64).max(1);
        let (id, point) = items[mid];
        let slot = self.nodes.len();
        self.nodes.push(Node {
            id,
            point,
            axis,
            left: None,
            right: None,
        });
        let next = (axis + 1) % dim;
        let (lo, rest) = items.split_at_mut(mid);
        let hi = &mut rest[1..];
        let l = self.build_rec(lo, next, dim, ops);
        let r = self.build_rec(hi, next, dim, ops);
        self.nodes[slot].left = l;
        self.nodes[slot].right = r;
        Some(slot)
    }

    /// Linear-scan reference nearest neighbor.
    pub fn nearest_linear(&self, query: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for n in &self.nodes {
            let d2 = n.point.distance_sq_counted(query, ops);
            ops.cmp += 1;
            if best.is_none_or(|(_, b)| d2 < b) {
                best = Some((n.id, d2));
            }
        }
        best.map(|(id, d2)| (id, d2.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts3(n: usize) -> Vec<Config> {
        (0..n)
            .map(|i| {
                Config::new(&[
                    ((i * 7) % 23) as f64,
                    ((i * 13) % 19) as f64,
                    ((i * 5) % 17) as f64,
                ])
            })
            .collect()
    }

    fn build(points: &[Config]) -> KdTree {
        let mut tree = KdTree::new(points[0].dim());
        let mut ops = OpCount::default();
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as u64, *p, &mut ops);
        }
        tree
    }

    #[test]
    fn empty_tree_returns_none() {
        let tree = KdTree::new(3);
        let mut ops = OpCount::default();
        assert!(tree.nearest(&Config::zeros(3), &mut ops).is_none());
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn nearest_matches_linear() {
        let pts = pts3(120);
        let tree = build(&pts);
        let mut ops = OpCount::default();
        for q in [
            Config::new(&[3.0, 4.0, 5.0]),
            Config::new(&[-10.0, 0.0, 30.0]),
            Config::new(&[11.5, 9.5, 8.5]),
        ] {
            let a = tree.nearest(&q, &mut ops).unwrap();
            let b = tree.nearest_linear(&q, &mut ops).unwrap();
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn near_matches_brute_force() {
        let pts = pts3(80);
        let tree = build(&pts);
        let mut ops = OpCount::default();
        let q = Config::new(&[10.0, 10.0, 10.0]);
        let r = 6.0;
        let mut got: Vec<u64> = tree.near(&q, r, &mut ops).iter().map(|(i, _)| *i).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn pruning_happens_in_low_dim() {
        let pts: Vec<Config> = (0..200)
            .map(|i| Config::new(&[(i % 20) as f64, (i / 20) as f64]))
            .collect();
        let tree = build(&pts);
        let mut ops = OpCount::default();
        let mut stats = KdSearchStats::default();
        let _ = tree.nearest_with_stats(&Config::new(&[5.2, 5.2]), &mut ops, &mut stats);
        assert!(stats.nodes_visited < 200);
        assert!(stats.subtrees_pruned > 0);
    }

    #[test]
    fn rebuild_balances_depth() {
        // Sorted insertion degenerates to a list; rebuild should restore
        // logarithmic depth.
        let pts: Vec<Config> = (0..127).map(|i| Config::new(&[i as f64, 0.0])).collect();
        let mut tree = build(&pts);
        assert!(tree.depth() > 60, "sorted insertion should degenerate");
        let mut ops = OpCount::default();
        tree.rebuild_balanced(&mut ops);
        assert!(
            tree.depth() <= 8,
            "median rebuild should balance: {}",
            tree.depth()
        );
        assert!(ops.cmp > 0);
        // Search still exact.
        let q = Config::new(&[63.2, 0.0]);
        let a = tree.nearest(&q, &mut ops).unwrap();
        assert_eq!(a.0, 63);
    }

    #[test]
    fn duplicate_coordinates_handled() {
        let pts = vec![
            Config::new(&[1.0, 1.0]),
            Config::new(&[1.0, 1.0]),
            Config::new(&[1.0, 1.0]),
        ];
        let tree = build(&pts);
        let mut ops = OpCount::default();
        let (_, d) = tree.nearest(&Config::new(&[1.0, 1.0]), &mut ops).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn high_dim_search_visits_more_nodes_than_low_dim() {
        // The curse of dimensionality: with the same point count, the
        // fraction of nodes visited grows with dimension.
        let n = 400;
        let low: Vec<Config> = (0..n)
            .map(|i| Config::new(&[((i * 29) % 101) as f64, ((i * 31) % 97) as f64]))
            .collect();
        let high: Vec<Config> = (0..n)
            .map(|i| {
                let c: Vec<f64> = (0..7)
                    .map(|d| ((i * (13 + d * 2) + d) % 89) as f64)
                    .collect();
                Config::new(&c)
            })
            .collect();
        let tl = build(&low);
        let th = build(&high);
        let mut ops = OpCount::default();
        let mut sl = KdSearchStats::default();
        let mut sh = KdSearchStats::default();
        let _ = tl.nearest_with_stats(&Config::new(&[50.0, 50.0]), &mut ops, &mut sl);
        let _ = th.nearest_with_stats(&Config::new(&[40.0; 7]), &mut ops, &mut sh);
        assert!(
            sh.nodes_visited > sl.nodes_visited,
            "7-D should visit more: {} vs {}",
            sh.nodes_visited,
            sl.nodes_visited
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let mut tree = KdTree::new(3);
        let mut ops = OpCount::default();
        tree.insert(0, Config::zeros(2), &mut ops);
    }
}
