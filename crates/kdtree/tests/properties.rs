//! Property-based tests for the KD-tree baseline.

use moped_geometry::{Config, OpCount};
use moped_kdtree::KdTree;
use proptest::prelude::*;

fn arb_points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Config>> {
    prop::collection::vec(prop::collection::vec(-50.0..50.0f64, dim), n)
        .prop_map(|vs| vs.into_iter().map(|v| Config::new(&v)).collect())
}

fn build(points: &[Config]) -> KdTree {
    let mut t = KdTree::new(points[0].dim());
    let mut ops = OpCount::default();
    for (i, p) in points.iter().enumerate() {
        t.insert(i as u64, *p, &mut ops);
    }
    t
}

fn linear_nearest(points: &[Config], q: &Config) -> f64 {
    points
        .iter()
        .map(|p| p.distance(q))
        .fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental KD nearest equals a linear scan for any insertion
    /// order, dimension 2-7.
    #[test]
    fn nearest_is_exact(points in arb_points(4, 1..80), qv in prop::collection::vec(-60.0..60.0f64, 4)) {
        let tree = build(&points);
        let q = Config::new(&qv);
        let mut ops = OpCount::default();
        let (_, got) = tree.nearest(&q, &mut ops).unwrap();
        prop_assert!((got - linear_nearest(&points, &q)).abs() < 1e-9);
    }

    /// Balanced rebuild preserves exactness and the point set.
    #[test]
    fn rebuild_preserves_answers(points in arb_points(3, 1..60), qv in prop::collection::vec(-60.0..60.0f64, 3)) {
        let mut tree = build(&points);
        let q = Config::new(&qv);
        let mut ops = OpCount::default();
        let before = tree.nearest(&q, &mut ops).unwrap().1;
        tree.rebuild_balanced(&mut ops);
        prop_assert_eq!(tree.len(), points.len());
        let after = tree.nearest(&q, &mut ops).unwrap().1;
        prop_assert!((before - after).abs() < 1e-9);
    }

    /// Range search returns exactly the in-radius identifiers.
    #[test]
    fn near_is_exact(points in arb_points(5, 1..50), r in 1.0..40.0f64) {
        let tree = build(&points);
        let q = Config::zeros(5);
        let mut ops = OpCount::default();
        let mut got: Vec<u64> = tree.near(&q, r, &mut ops).iter().map(|(i, _)| *i).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Rebuild bounds the depth to O(log n).
    #[test]
    fn rebuild_is_balanced(points in arb_points(2, 8..200)) {
        let mut tree = build(&points);
        let mut ops = OpCount::default();
        tree.rebuild_balanced(&mut ops);
        let bound = ((points.len() as f64).log2().ceil() as usize) + 2;
        prop_assert!(tree.depth() <= bound, "depth {} > bound {bound}", tree.depth());
    }
}
