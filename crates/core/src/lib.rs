//! The MOPED planning engine: RRT\* with the paper's co-designed kernels.
//!
//! This crate is the primary contribution of the reproduction: an RRT\*
//! planner (Karaman & Frazzoli 2011) that is generic over
//!
//! * a **neighbor index** ([`NeighborIndex`]): linear scan (baseline),
//!   KD-tree (Fig 19 baseline), or the SI-MBR-Tree with optional
//!   steering-informed approximated search and O(1) insertion, and
//! * a **collision checker** (`moped_collision::CollisionChecker`): naive
//!   all-pairs OBB–OBB or the two-stage R-tree scheme.
//!
//! The [`Variant`] ladder wires these exactly as the paper's ablation
//! (Fig 16): V0 baseline → V1 two-stage collision (TSPS) → V2 SI-MBR
//! neighbor search (STNS) → V3 approximated search (SIAS) → V4 low-cost
//! insertion (LCI) = full MOPED.
//!
//! Every phase of every sampling round is charged to separate ledgers and
//! optionally traced per round, which is what the hardware model replays
//! through its speculate-and-repair pipeline.
//!
//! # Example
//!
//! ```
//! use moped_core::{plan_variant, PlannerParams, Variant};
//! use moped_env::{Scenario, ScenarioParams};
//! use moped_robot::Robot;
//!
//! let scenario = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 1);
//! let params = PlannerParams { max_samples: 300, ..PlannerParams::default() };
//! let result = plan_variant(&scenario, Variant::V4Lci, &params);
//! assert!(result.stats.samples <= 300);
//! ```

#![deny(missing_docs)]

mod connect;
pub mod extensions;
mod index;
mod planner;
pub mod replan;
pub mod smooth;
mod variant;

pub use index::{AnyIndex, KdIndex, LinearIndex, NeighborIndex, NnBackend, SimbrIndex};
pub use planner::{Engine, PlanResult, PlanStats, PlannerParams, RoundTrace, RrtStar};
pub use variant::{plan_variant, plan_variant_with_stop, variant_components, Variant};
