//! The MOPED ablation ladder (Fig 16).

use std::fmt;

use moped_collision::{CollisionChecker, NaiveChecker, TwoStageChecker};
use moped_env::Scenario;

use crate::{LinearIndex, PlanResult, PlannerParams, RrtStar, SimbrIndex};

/// The five designs the paper's breakdown evaluates:
///
/// | Variant | Collision check | Neighbor search | Insertion |
/// |---------|-----------------|-----------------|-----------|
/// | V0      | naive OBB–OBB   | linear scan     | —         |
/// | V1      | two-stage (TSPS)| linear scan     | —         |
/// | V2      | two-stage       | SI-MBR (STNS)   | min-enlargement |
/// | V3      | two-stage       | SI-MBR + SIAS   | min-enlargement |
/// | V4      | two-stage       | SI-MBR + SIAS   | LCI (full MOPED) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Baseline RRT\* (the CPU/C++ reference design).
    V0Baseline,
    /// + Two-Stage Processing Scheme for collision checks.
    V1Tsps,
    /// + SI-MBR-Tree neighbor search.
    V2Stns,
    /// + Steering-Informed Approximated Search.
    V3Sias,
    /// + Low-Cost Insertion — the full MOPED algorithm.
    V4Lci,
}

impl Variant {
    /// All variants in ablation order.
    pub const ALL: [Variant; 5] = [
        Variant::V0Baseline,
        Variant::V1Tsps,
        Variant::V2Stns,
        Variant::V3Sias,
        Variant::V4Lci,
    ];
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Variant::V0Baseline => "V0-baseline",
            Variant::V1Tsps => "V1-TSPS",
            Variant::V2Stns => "V2-STNS",
            Variant::V3Sias => "V3-SIAS",
            Variant::V4Lci => "V4-LCI",
        })
    }
}

/// Builds the collision checker + index flags for a variant:
/// `(two_stage_collision, simbr_index, approx_search, low_cost_insert)`.
pub fn variant_components(variant: Variant) -> (bool, bool, bool, bool) {
    match variant {
        Variant::V0Baseline => (false, false, false, false),
        Variant::V1Tsps => (true, false, false, false),
        Variant::V2Stns => (true, true, false, false),
        Variant::V3Sias => (true, true, true, false),
        Variant::V4Lci => (true, true, true, true),
    }
}

/// Plans `scenario` with the given variant's component stack.
///
/// This is the entry point every evaluation figure drives: same scenario,
/// same seed, same sampling budget — only the co-designed kernels vary.
pub fn plan_variant(scenario: &Scenario, variant: Variant, params: &PlannerParams) -> PlanResult {
    plan_variant_impl(scenario, variant, params, None)
}

/// [`plan_variant`] with a cooperative stop hook polled every `every`
/// sampling rounds — the serving layer's deadline/cancellation path.
/// When the hook fires the best-so-far anytime result is returned with
/// [`crate::PlanStats::stopped_early`] set.
pub fn plan_variant_with_stop(
    scenario: &Scenario,
    variant: Variant,
    params: &PlannerParams,
    every: usize,
    stop: &dyn Fn() -> bool,
) -> PlanResult {
    plan_variant_impl(scenario, variant, params, Some((every, stop)))
}

fn plan_variant_impl(
    scenario: &Scenario,
    variant: Variant,
    params: &PlannerParams,
    stop: Option<(usize, &dyn Fn() -> bool)>,
) -> PlanResult {
    let (two_stage, simbr, sias, lci) = variant_components(variant);
    let dim = scenario.robot.dof();
    let checker: Box<dyn CollisionChecker> = if two_stage {
        Box::new(TwoStageChecker::moped(scenario.obstacles.clone()))
    } else {
        Box::new(NaiveChecker::new(scenario.obstacles.clone()))
    };
    if simbr {
        let index = SimbrIndex::new(dim, 6, sias, lci);
        let mut planner = RrtStar::new(scenario, checker.as_ref(), index, params.clone());
        match stop {
            Some((every, hook)) => planner.with_stop_hook(every, hook).plan(),
            None => planner.plan(),
        }
    } else {
        let mut planner = RrtStar::new(
            scenario,
            checker.as_ref(),
            LinearIndex::new(),
            params.clone(),
        );
        match stop {
            Some((every, hook)) => planner.with_stop_hook(every, hook).plan(),
            None => planner.plan(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    fn scene(seed: u64) -> Scenario {
        Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), seed)
    }

    #[test]
    fn ablation_reduces_the_cost_each_technique_targets() {
        // Fig 16 decomposition: TSPS cuts collision-check work, STNS and
        // SIAS cut neighbor-search work, LCI cuts insertion work. Totals
        // across variants diverge per-run (different parent choices grow
        // different trees), so each claim is checked on its own ledger.
        let s = scene(19);
        let params = PlannerParams {
            max_samples: 300,
            seed: 7,
            ..PlannerParams::default()
        };
        let results: Vec<_> = Variant::ALL
            .iter()
            .map(|v| plan_variant(&s, *v, &params))
            .collect();
        let total = |i: usize| results[i].stats.total_ops().mac_equiv();
        let cc = |i: usize| results[i].stats.collision.total_ops().mac_equiv();
        let ns = |i: usize| results[i].stats.ns_ops.mac_equiv();
        let ins = |i: usize| results[i].stats.insert_ops.mac_equiv();

        assert!(
            cc(1) * 2 < cc(0),
            "TSPS must cut collision work >2x: {} vs {}",
            cc(1),
            cc(0)
        );
        assert!(
            ns(2) < ns(1),
            "STNS must cut NS work: {} vs {}",
            ns(2),
            ns(1)
        );
        // SIAS removes the second of the round's two searches; the exact
        // factor depends on how range-search-heavy the workload is.
        assert!(
            (ns(3) as f64) * 1.5 < ns(2) as f64,
            "SIAS must cut NS work >1.5x: {} vs {}",
            ns(3),
            ns(2)
        );
        assert!(
            ins(4) < ins(3),
            "LCI must cut insertion work: {} vs {}",
            ins(4),
            ins(3)
        );
        assert!(
            total(4) * 2 < total(0),
            "full MOPED should save >2x total at this small budget: {} vs {}",
            total(4),
            total(0)
        );
    }

    #[test]
    fn sias_preserves_path_quality() {
        // Fig 8 (left): approximated neighbor search must not degrade
        // path cost materially (averaged over seeds to damp run noise).
        let params = PlannerParams {
            max_samples: 400,
            seed: 5,
            ..PlannerParams::default()
        };
        let mut exact_sum = 0.0;
        let mut approx_sum = 0.0;
        let mut solved = 0;
        for seed in 0..4 {
            let s = Scenario::generate(
                Robot::mobile_2d(),
                &ScenarioParams::with_obstacles(16),
                100 + seed,
            );
            let exact = plan_variant(&s, Variant::V2Stns, &params);
            let approx = plan_variant(&s, Variant::V3Sias, &params);
            if exact.solved() && approx.solved() {
                exact_sum += exact.path_cost;
                approx_sum += approx.path_cost;
                solved += 1;
            }
        }
        assert!(solved >= 2, "need solved instances to compare");
        assert!(
            approx_sum < exact_sum * 1.3,
            "SIAS path cost should stay close: {approx_sum} vs {exact_sum}"
        );
    }

    #[test]
    fn all_variants_produce_sound_results() {
        let s = scene(23);
        let params = PlannerParams {
            max_samples: 200,
            seed: 3,
            ..PlannerParams::default()
        };
        for v in Variant::ALL {
            let r = plan_variant(&s, v, &params);
            assert_eq!(r.stats.samples, 200, "{v}");
            if let Some(path) = &r.path {
                assert_eq!(path[0], s.start, "{v}");
                assert_eq!(*path.last().unwrap(), s.goal, "{v}");
            }
        }
    }

    #[test]
    fn display_names_are_unique() {
        let names: std::collections::HashSet<String> =
            Variant::ALL.iter().map(|v| v.to_string()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn component_table_matches_ladder() {
        assert_eq!(
            variant_components(Variant::V0Baseline),
            (false, false, false, false)
        );
        assert_eq!(
            variant_components(Variant::V1Tsps),
            (true, false, false, false)
        );
        assert_eq!(
            variant_components(Variant::V2Stns),
            (true, true, false, false)
        );
        assert_eq!(
            variant_components(Variant::V3Sias),
            (true, true, true, false)
        );
        assert_eq!(variant_components(Variant::V4Lci), (true, true, true, true));
    }
}
