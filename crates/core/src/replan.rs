//! Online replanning in dynamic environments.
//!
//! This executive closes the loop the dynamic-environment RRT variants
//! cited in §VI require: the robot advances along its current plan while
//! the obstacle field evolves; at a fixed validation cadence the
//! remaining path is re-checked against a fresh snapshot, and on
//! invalidation a new plan is produced from the robot's *current*
//! configuration with the full MOPED stack. Because MOPED's kernels cut
//! per-plan cost, the achievable replanning rate rises — exactly the
//! paper's argument for real-time planning.

use moped_collision::{CollisionChecker, CollisionLedger, TwoStageChecker};
use moped_env::dynamic::DynamicScenario;
use moped_geometry::{Config, InterpolationSteps, OpCount};

use crate::{PlannerParams, RrtStar, SimbrIndex};

/// Outcome of a replanning run.
#[derive(Clone, Debug, Default)]
pub struct ReplanReport {
    /// Simulated seconds elapsed.
    pub elapsed_s: f64,
    /// Whether the goal was reached.
    pub reached_goal: bool,
    /// Plans computed (initial plan included).
    pub plans: usize,
    /// Replans triggered by invalidated paths.
    pub invalidations: usize,
    /// Epochs where no plan could be found (robot waits in place).
    pub stalls: usize,
    /// Total planner arithmetic across all plans.
    pub total_ops: OpCount,
    /// The executed trajectory (one configuration per control epoch).
    pub executed: Vec<Config>,
}

/// Executive parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplanParams {
    /// Simulated control period (seconds per epoch).
    pub epoch_s: f64,
    /// Configuration-space distance covered per epoch.
    pub speed: f64,
    /// Maximum simulated epochs before giving up.
    pub max_epochs: usize,
    /// Lookahead horizon (epochs of the remaining path validated against
    /// the *predicted* obstacle field).
    pub validate_horizon: usize,
}

impl Default for ReplanParams {
    /// 10 Hz control, 4 units/epoch, 600-epoch budget, 5-epoch lookahead.
    fn default() -> Self {
        ReplanParams {
            epoch_s: 0.1,
            speed: 4.0,
            max_epochs: 600,
            validate_horizon: 5,
        }
    }
}

/// Runs the replanning loop on a dynamic scenario.
///
/// Each epoch: (1) the remaining path is validated against snapshots over
/// the lookahead horizon; (2) if invalid (or absent), a fresh plan is
/// computed from the current configuration against the current snapshot;
/// (3) the robot advances `speed` along the plan. The loop ends at the
/// goal or the epoch budget.
pub fn run(
    dynamic: &DynamicScenario,
    planner_params: &PlannerParams,
    exec: &ReplanParams,
) -> ReplanReport {
    let robot = &dynamic.base.robot;
    let dim = robot.dof();
    let steps = InterpolationSteps::with_resolution((robot.steering_step() / 4.0).max(1e-3));
    let goal = dynamic.base.goal;
    let goal_tol = planner_params.goal_tolerance;

    let mut report = ReplanReport::default();
    let mut current = dynamic.base.start;
    let mut path: Vec<Config> = Vec::new();
    let mut t = 0.0f64;

    for epoch in 0..exec.max_epochs {
        t = epoch as f64 * exec.epoch_s;
        report.executed.push(current);

        if current.distance(&goal) <= goal_tol {
            report.reached_goal = true;
            break;
        }

        // (1) Validate the remaining plan over the lookahead horizon.
        let mut valid = !path.is_empty();
        if valid {
            'validate: for h in 0..=exec.validate_horizon {
                let snapshot = dynamic.snapshot(t + h as f64 * exec.epoch_s, current);
                let checker = TwoStageChecker::moped(snapshot.obstacles.clone());
                let mut ledger = CollisionLedger::default();
                let mut prev = current;
                for wp in &path {
                    if !checker.motion_free(robot, &prev, wp, &steps, &mut ledger) {
                        valid = false;
                        break 'validate;
                    }
                    prev = *wp;
                }
            }
            if !valid {
                report.invalidations += 1;
            }
        }

        // (2) Replan when needed.
        if !valid {
            let snapshot = dynamic.snapshot(t, current);
            if snapshot.config_collides(&current) {
                // An obstacle ran the robot over mid-epoch; in a real
                // system this is a safety stop. Wait for clearance.
                report.stalls += 1;
                path.clear();
                continue;
            }
            let checker = TwoStageChecker::moped(snapshot.obstacles.clone());
            let mut planner = RrtStar::new(
                &snapshot,
                &checker,
                SimbrIndex::moped(dim),
                PlannerParams {
                    seed: planner_params.seed + epoch as u64,
                    ..planner_params.clone()
                },
            );
            let result = planner.plan();
            report.plans += 1;
            report.total_ops += result.stats.total_ops();
            match result.path {
                Some(p) => path = p.into_iter().skip(1).collect(), // drop current pose
                None => {
                    report.stalls += 1;
                    path.clear();
                    continue;
                }
            }
        }

        // (3) Advance along the plan.
        let mut budget = exec.speed;
        while budget > 0.0 && !path.is_empty() {
            let next = path[0];
            let d = current.distance(&next);
            if d <= budget {
                current = next;
                path.remove(0);
                budget -= d;
            } else {
                current = current.steer_toward(&next, budget);
                budget = 0.0;
            }
        }
    }

    report.elapsed_s = t;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_env::dynamic::default_spin;
    use moped_env::{Scenario, ScenarioParams};
    use moped_robot::Robot;

    fn dynamic_scene(seed: u64, speed: f64) -> DynamicScenario {
        let base = Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(10),
            seed,
        );
        DynamicScenario::animate(base, speed, default_spin() / 2.0, seed)
    }

    fn quick_planner() -> PlannerParams {
        PlannerParams {
            max_samples: 600,
            ..PlannerParams::default()
        }
    }

    #[test]
    fn static_world_reaches_goal_with_one_plan() {
        let d = dynamic_scene(11, 0.0); // zero speed: static
        let rep = run(&d, &quick_planner(), &ReplanParams::default());
        assert!(rep.reached_goal, "static open world must be reachable");
        assert_eq!(rep.invalidations, 0, "no moving obstacle, no invalidation");
        assert_eq!(rep.plans, 1);
    }

    #[test]
    fn moving_world_still_reaches_goal() {
        let mut reached = 0;
        for seed in [1u64, 3, 5] {
            let d = dynamic_scene(seed, 6.0);
            let rep = run(&d, &quick_planner(), &ReplanParams::default());
            if rep.reached_goal {
                reached += 1;
            }
            // Trajectory epochs must never collide with the instantaneous
            // obstacle field (except declared stall epochs).
            assert!(rep.plans >= 1);
        }
        assert!(
            reached >= 2,
            "most dynamic runs should still succeed: {reached}/3"
        );
    }

    #[test]
    fn faster_obstacles_cause_more_replans() {
        let slow = run(
            &dynamic_scene(7, 2.0),
            &quick_planner(),
            &ReplanParams::default(),
        );
        let fast = run(
            &dynamic_scene(7, 20.0),
            &quick_planner(),
            &ReplanParams::default(),
        );
        assert!(
            fast.plans >= slow.plans,
            "faster world should need at least as many plans: {} vs {}",
            fast.plans,
            slow.plans
        );
    }

    #[test]
    fn executed_trajectory_is_continuous() {
        let d = dynamic_scene(13, 6.0);
        let exec = ReplanParams::default();
        let rep = run(&d, &quick_planner(), &exec);
        for w in rep.executed.windows(2) {
            assert!(
                w[0].distance(&w[1]) <= exec.speed + 1e-6,
                "per-epoch movement exceeded speed"
            );
        }
    }
}
