//! Planner extensions from the RRT\* family the paper builds on.
//!
//! MOPED's techniques are, by design, applicable to the whole RRT\*/RRT
//! family (§VI "RRT\* and its Variants"). Two widely used members are
//! implemented here on top of the same neighbor-index and collision-checker
//! abstractions, so the co-designed kernels transfer unchanged:
//!
//! * [`RrtConnect`] — bidirectional single-query planning (Kuffner &
//!   LaValle 2000): two trees grow toward each other, trading optimality
//!   for very fast feasibility.
//! * [`InformedSampler`] — Informed RRT\* sampling (Gammell et al. 2014):
//!   once a solution of cost `c_best` exists, samples are drawn from the
//!   prolate hyperspheroid that could still improve it.

use moped_collision::CollisionChecker;
use moped_env::Scenario;
use moped_geometry::{Config, InterpolationSteps, OpCount, MAX_DOF};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NeighborIndex, PlanResult, PlanStats, PlannerParams};

/// One of the two RRT-Connect trees.
struct HalfTree<N: NeighborIndex> {
    nodes: Vec<(Config, Option<usize>)>,
    index: N,
}

impl<N: NeighborIndex> HalfTree<N> {
    fn new(root: Config, mut index: N, ops: &mut OpCount) -> Self {
        index.insert(0, root, None, ops);
        HalfTree {
            nodes: vec![(root, None)],
            index,
        }
    }

    fn push(&mut self, q: Config, parent: usize, anchor: u64, ops: &mut OpCount) -> usize {
        let id = self.nodes.len();
        self.nodes.push((q, Some(parent)));
        self.index.insert(id as u64, q, Some(anchor), ops);
        id
    }

    fn path_to_root(&self, mut i: usize) -> Vec<Config> {
        let mut out = Vec::new();
        loop {
            out.push(self.nodes[i].0);
            match self.nodes[i].1 {
                Some(p) => i = p,
                None => break,
            }
        }
        out
    }
}

/// Outcome of one extend step.
enum Extend {
    Trapped,
    Advanced(usize),
    Reached(usize),
}

/// Bidirectional RRT-Connect planner over the MOPED kernels.
///
/// # Example
///
/// ```
/// use moped_collision::TwoStageChecker;
/// use moped_core::{extensions::RrtConnect, PlannerParams, SimbrIndex};
/// use moped_env::{Scenario, ScenarioParams};
/// use moped_robot::Robot;
///
/// let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 1);
/// let checker = TwoStageChecker::moped(s.obstacles.clone());
/// let params = PlannerParams { max_samples: 500, ..PlannerParams::default() };
/// let result = RrtConnect::new(&s, &checker, params, || SimbrIndex::moped(3)).plan();
/// assert!(result.stats.samples <= 500);
/// ```
pub struct RrtConnect<'a, N: NeighborIndex> {
    scenario: &'a Scenario,
    checker: &'a dyn CollisionChecker,
    params: PlannerParams,
    start_tree: HalfTree<N>,
    goal_tree: HalfTree<N>,
    steps: InterpolationSteps,
    step: f64,
}

impl<'a, N: NeighborIndex> RrtConnect<'a, N> {
    /// Creates the planner; `make_index` builds one empty index per tree.
    pub fn new(
        scenario: &'a Scenario,
        checker: &'a dyn CollisionChecker,
        params: PlannerParams,
        mut make_index: impl FnMut() -> N,
    ) -> Self {
        let step = params
            .steering_step
            .unwrap_or_else(|| scenario.robot.steering_step());
        let steps = params
            .interpolation
            .unwrap_or_else(|| InterpolationSteps::with_resolution((step / 4.0).max(1e-3)));
        let mut scratch = OpCount::default();
        RrtConnect {
            start_tree: HalfTree::new(scenario.start, make_index(), &mut scratch),
            goal_tree: HalfTree::new(scenario.goal, make_index(), &mut scratch),
            scenario,
            checker,
            params,
            steps,
            step,
        }
    }

    fn extend(
        tree: &mut HalfTree<N>,
        target: &Config,
        step: f64,
        scenario: &Scenario,
        checker: &dyn CollisionChecker,
        steps: &InterpolationSteps,
        stats: &mut PlanStats,
    ) -> Extend {
        let (near_id, _) = tree
            .index
            .nearest(target, &mut stats.ns_ops)
            .expect("trees are never empty");
        let near_idx = near_id as usize;
        let x_near = tree.nodes[near_idx].0;
        let x_new = x_near.steer_toward(target, step);
        if x_new == x_near {
            return Extend::Trapped;
        }
        if !checker.motion_free(
            &scenario.robot,
            &x_near,
            &x_new,
            steps,
            &mut stats.collision,
        ) {
            return Extend::Trapped;
        }
        let id = tree.push(x_new, near_idx, near_id, &mut stats.insert_ops);
        if x_new == *target {
            Extend::Reached(id)
        } else {
            Extend::Advanced(id)
        }
    }

    /// Runs the bidirectional search; returns on the first connection or
    /// at the sampling budget.
    pub fn plan(&mut self) -> PlanResult {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut stats = PlanStats::default();
        let mut from_start = true;

        for _ in 0..self.params.max_samples {
            stats.samples += 1;
            let x_rand = self.scenario.sample_any(&mut rng);
            let (grow, other) = if from_start {
                (&mut self.start_tree, &mut self.goal_tree)
            } else {
                (&mut self.goal_tree, &mut self.start_tree)
            };

            let step = self.step;
            let ext = Self::extend(
                grow,
                &x_rand,
                step,
                self.scenario,
                self.checker,
                &self.steps,
                &mut stats,
            );
            if let Extend::Advanced(new_id) | Extend::Reached(new_id) = ext {
                // CONNECT: greedily extend the other tree toward x_new.
                let target = grow.nodes[new_id].0;
                loop {
                    match Self::extend(
                        other,
                        &target,
                        step,
                        self.scenario,
                        self.checker,
                        &self.steps,
                        &mut stats,
                    ) {
                        Extend::Trapped => break,
                        Extend::Advanced(_) => continue,
                        Extend::Reached(other_id) => {
                            // Bridge found: stitch the two root paths.
                            let (s_leaf, g_leaf) = if from_start {
                                (new_id, other_id)
                            } else {
                                (other_id, new_id)
                            };
                            let mut path = self.start_tree.path_to_root(s_leaf);
                            path.reverse();
                            let mut tail = self.goal_tree.path_to_root(g_leaf);
                            // The meeting configuration appears in both
                            // halves; drop the duplicate.
                            if tail.first() == path.last() {
                                tail.remove(0);
                            }
                            path.extend(tail);
                            let cost = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
                            stats.nodes = self.start_tree.nodes.len() + self.goal_tree.nodes.len();
                            return PlanResult {
                                path: Some(path),
                                path_cost: cost,
                                stats,
                            };
                        }
                    }
                }
            }
            from_start = !from_start;
        }
        stats.nodes = self.start_tree.nodes.len() + self.goal_tree.nodes.len();
        PlanResult {
            path: None,
            path_cost: f64::INFINITY,
            stats,
        }
    }
}

/// Informed RRT\* sampling: draws configurations from the prolate
/// hyperspheroid `{x : |x - start| + |x - goal| <= c_best}` — the only
/// region that can still improve a solution of cost `c_best`.
#[derive(Clone, Debug)]
pub struct InformedSampler {
    start: Config,
    goal: Config,
    c_min: f64,
    /// Rotation-to-world frame: columns are an orthonormal basis whose
    /// first axis points start→goal.
    basis: Vec<[f64; MAX_DOF]>,
}

impl InformedSampler {
    /// Creates the sampler for a start/goal pair.
    ///
    /// # Panics
    ///
    /// Panics if start and goal coincide or dimensions differ.
    pub fn new(start: Config, goal: Config) -> Self {
        assert_eq!(start.dim(), goal.dim(), "dimension mismatch");
        let c_min = start.distance(&goal);
        assert!(c_min > 0.0, "start and goal must differ");
        let d = start.dim();
        // First basis vector: the start→goal direction; the rest completed
        // by Gram-Schmidt over the standard basis.
        let mut basis: Vec<[f64; MAX_DOF]> = Vec::with_capacity(d);
        let mut a1 = [0.0; MAX_DOF];
        for i in 0..d {
            a1[i] = (goal[i] - start[i]) / c_min;
        }
        basis.push(a1);
        for e in 0..d {
            if basis.len() == d {
                break;
            }
            let mut v = [0.0; MAX_DOF];
            v[e] = 1.0;
            for b in &basis {
                let dot: f64 = (0..d).map(|i| v[i] * b[i]).sum();
                for i in 0..d {
                    v[i] -= dot * b[i];
                }
            }
            let norm: f64 = (0..d).map(|i| v[i] * v[i]).sum::<f64>().sqrt();
            if norm > 1e-9 {
                for x in v.iter_mut().take(d) {
                    *x /= norm;
                }
                basis.push(v);
            }
        }
        debug_assert_eq!(basis.len(), d, "Gram-Schmidt must complete the basis");
        InformedSampler {
            start,
            goal,
            c_min,
            basis,
        }
    }

    /// Minimum possible path cost (the start–goal distance).
    pub fn c_min(&self) -> f64 {
        self.c_min
    }

    /// Draws a sample from the hyperspheroid for the current best cost.
    ///
    /// # Panics
    ///
    /// Panics if `c_best < c_min` (no solution can be that short).
    pub fn sample(&self, c_best: f64, rng: &mut StdRng) -> Config {
        assert!(
            c_best >= self.c_min,
            "c_best {c_best} below the theoretical minimum {}",
            self.c_min
        );
        let d = self.start.dim();
        // Uniform point in the unit d-ball by rejection from the cube
        // (d <= 8, acceptance is fine for planning workloads).
        let mut ball = [0.0; MAX_DOF];
        loop {
            let mut norm2 = 0.0;
            for b in ball.iter_mut().take(d) {
                *b = rng.gen_range(-1.0..1.0);
                norm2 += *b * *b;
            }
            if norm2 <= 1.0 {
                break;
            }
        }
        // Stretch: r1 along the transverse axis, r2 on the conjugate axes.
        let r1 = c_best / 2.0;
        let r2 = ((c_best * c_best - self.c_min * self.c_min).max(0.0)).sqrt() / 2.0;
        let mut stretched = [0.0; MAX_DOF];
        stretched[0] = ball[0] * r1;
        for i in 1..d {
            stretched[i] = ball[i] * r2;
        }
        // Rotate into world frame and translate to the ellipse center.
        let mut out = [0.0; MAX_DOF];
        for i in 0..d {
            let center = (self.start[i] + self.goal[i]) / 2.0;
            let mut v = center;
            for (j, b) in self.basis.iter().enumerate().take(d) {
                v += b[i] * stretched[j];
            }
            out[i] = v;
        }
        Config::new(&out[..d])
    }

    /// Returns `true` when `q` lies inside the `c_best` hyperspheroid.
    pub fn contains(&self, q: &Config, c_best: f64) -> bool {
        q.distance(&self.start) + q.distance(&self.goal) <= c_best + 1e-9
    }
}

/// Plans with RRT\* + informed sampling: identical to
/// [`crate::RrtStar`] until the first solution, after which samples are
/// drawn from the shrinking informed set. Returns the standard
/// [`PlanResult`].
pub fn plan_informed<N: NeighborIndex>(
    scenario: &Scenario,
    checker: &dyn CollisionChecker,
    index: N,
    params: PlannerParams,
) -> PlanResult {
    // Run the stock planner to get a first solution & statistics, then a
    // focused refinement pass with the informed sampler.
    let mut planner = crate::RrtStar::new(scenario, checker, index, params.clone());
    let first = planner.plan();
    let Some(_) = &first.path else { return first };

    let sampler = InformedSampler::new(scenario.start, scenario.goal);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1F0_8ED);
    // Rejection-refine: resample the informed set and shortcut the found
    // path where direct motions are free (a lightweight smoother that
    // realizes the informed bound without a second full tree).
    let mut path = first.path.clone().expect("checked above");
    let steps = params.interpolation.unwrap_or_else(|| {
        InterpolationSteps::with_resolution((scenario.robot.steering_step() / 4.0).max(1e-3))
    });
    let mut stats = first.stats.clone();
    for _ in 0..params.max_samples / 4 {
        if path.len() < 3 {
            break;
        }
        let i = rng.gen_range(0..path.len() - 2);
        let j = rng.gen_range(i + 2..path.len());
        // Midpoint draw from the informed set biases shortcuts into the
        // useful region.
        let c_best: f64 = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
        let probe = sampler.sample(c_best.max(sampler.c_min() * 1.0001), &mut rng);
        let via_probe = path[i].distance(&probe) + probe.distance(&path[j]);
        let current: f64 = path[i..=j].windows(2).map(|w| w[0].distance(&w[1])).sum();
        if via_probe < current
            && checker.motion_free(
                &scenario.robot,
                &path[i],
                &probe,
                &steps,
                &mut stats.collision,
            )
            && checker.motion_free(
                &scenario.robot,
                &probe,
                &path[j],
                &steps,
                &mut stats.collision,
            )
        {
            path.splice(i + 1..j, [probe]);
        }
    }
    let path_cost = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
    PlanResult {
        path: Some(path),
        path_cost,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimbrIndex;
    use moped_collision::TwoStageChecker;
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    #[test]
    fn rrt_connect_solves_open_scene_fast() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            31,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = PlannerParams {
            max_samples: 800,
            seed: 2,
            ..PlannerParams::default()
        };
        let r = RrtConnect::new(&s, &checker, params, || SimbrIndex::moped(3)).plan();
        assert!(r.solved(), "RRT-Connect should solve an open 2D scene");
        let path = r.path.unwrap();
        assert_eq!(path[0], s.start);
        assert_eq!(*path.last().unwrap(), s.goal);
        // Path must be collision free.
        let steps = InterpolationSteps::with_resolution(1.0);
        for w in path.windows(2) {
            for pose in moped_geometry::interpolate(&w[0], &w[1], &steps) {
                assert!(!s.config_collides(&pose));
            }
        }
    }

    #[test]
    fn rrt_connect_is_cheaper_than_rrt_star_for_feasibility() {
        let s = moped_env::Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(16),
            17,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = PlannerParams {
            max_samples: 1500,
            seed: 6,
            ..PlannerParams::default()
        };
        let rc = RrtConnect::new(&s, &checker, params.clone(), || SimbrIndex::moped(6)).plan();
        let rs = crate::RrtStar::new(&s, &checker, SimbrIndex::moped(6), params).plan();
        if rc.solved() && rs.solved() {
            assert!(
                rc.stats.samples <= rs.stats.samples,
                "bidirectional search should terminate earlier"
            );
        }
    }

    #[test]
    fn informed_samples_stay_in_spheroid() {
        let start = Config::new(&[0.0, 0.0, 0.0]);
        let goal = Config::new(&[10.0, 0.0, 0.0]);
        let sampler = InformedSampler::new(start, goal);
        let mut rng = StdRng::seed_from_u64(1);
        for c_best in [10.5, 12.0, 20.0] {
            for _ in 0..200 {
                let q = sampler.sample(c_best, &mut rng);
                assert!(
                    sampler.contains(&q, c_best),
                    "sample {q:?} outside the {c_best} spheroid"
                );
            }
        }
    }

    #[test]
    fn informed_spheroid_shrinks_with_c_best() {
        let start = Config::new(&[0.0, 0.0]);
        let goal = Config::new(&[10.0, 0.0]);
        let sampler = InformedSampler::new(start, goal);
        let mut rng = StdRng::seed_from_u64(3);
        let spread = |c: f64, rng: &mut StdRng| -> f64 {
            (0..300)
                .map(|_| sampler.sample(c, rng))
                .map(|q| q[1].abs())
                .fold(0.0, f64::max)
        };
        let wide = spread(30.0, &mut rng);
        let tight = spread(10.5, &mut rng);
        assert!(tight < wide, "tighter bound must shrink the sample set");
    }

    #[test]
    fn informed_refinement_never_worsens_cost() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            9,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = PlannerParams {
            max_samples: 1000,
            seed: 4,
            ..PlannerParams::default()
        };
        let base = crate::RrtStar::new(&s, &checker, SimbrIndex::moped(3), params.clone()).plan();
        let informed = plan_informed(&s, &checker, SimbrIndex::moped(3), params);
        if base.solved() && informed.solved() {
            assert!(
                informed.path_cost <= base.path_cost + 1e-9,
                "informed refinement must not worsen: {} vs {}",
                informed.path_cost,
                base.path_cost
            );
        }
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn informed_identical_endpoints_rejected() {
        let q = Config::new(&[1.0, 1.0]);
        let _ = InformedSampler::new(q, q);
    }
}
