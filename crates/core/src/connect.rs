//! The bidirectional and multi-tree connect engines.
//!
//! Both engines grow a *forest* inside the [`RrtStar`] node arena: tree 0
//! is rooted at the start (node 0), tree 1 at the goal (node 1), and the
//! multi-tree variant adds local trees seeded in narrow free-space
//! regions. Every round extends one tree toward a fresh sample in
//! deterministic round-robin order, then greedily connects the closest
//! *other* component toward the new node, step by step, until it either
//! reaches it or collides (RRT-Connect's CONNECT primitive). A successful
//! connect bridges the two trees with a zero-length link; the run ends as
//! soon as the start and goal components are bridged — connect engines
//! are feasibility-first and return the first path found.
//!
//! Everything downstream of sampling is a pure function of the scenario
//! and parameters, so the engines inherit the RRT\* determinism contract:
//! same seed → same forest, and a recorded journal replays bit-exactly
//! (local-tree seeding uses its own seed-derived RNG, not the sample
//! stream, so replay reproduces it from `PlannerParams::seed` alone).

use moped_geometry::{Config, OpCount};
use moped_obs::{RejectReason, Stage};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::planner::{PlanResult, PlanStats, RoundTrace, RrtStar, TreeNode};
use crate::NeighborIndex;

/// Maximum local trees the multi-tree engine seeds.
const MAX_LOCAL_TREES: usize = 4;
/// Sampling attempts spent looking for narrow-region seeds.
const SEED_ATTEMPTS: usize = 128;
/// Axis probes that must be blocked for a free sample to count as
/// "narrow" (of `2 * dof` probes at steering-step distance).
const NARROW_BLOCKED_MIN: usize = 2;

/// Union-find over tree ids (plain vectors — `core` is under the
/// determinism lint, and the forest never exceeds a handful of trees).
struct Components {
    parent: Vec<usize>,
}

impl Components {
    fn new(n: usize) -> Self {
        Components {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the lower root absorbs the higher.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Runs RRT-Connect (`multi_tree == false`: two trees) or the multi-tree
/// guided variant (`multi_tree == true`: plus narrow-region local trees)
/// over the planner's arena and backends.
pub(crate) fn plan_connect<N: NeighborIndex>(
    planner: &mut RrtStar<'_, N>,
    multi_tree: bool,
) -> PlanResult {
    let mut rng = StdRng::seed_from_u64(planner.params.seed);
    let mut stats = PlanStats::default();
    planner.checker.begin_plan();
    let dim = planner.scenario.robot.dof();
    planner.journal = planner
        .journal_enabled
        .then(|| moped_obs::Journal::new(planner.params.seed, dim));
    let budget = planner
        .replay
        .as_ref()
        .map_or(planner.params.max_samples, |r| r.samples.len());

    // --- Forest roots -------------------------------------------------
    // Node 0 / tree 0: start. Node 1 / tree 1: goal. Local trees follow.
    planner.nodes.clear();
    let mut roots = vec![planner.scenario.start, planner.scenario.goal];
    if multi_tree {
        roots.extend(seed_narrow_roots(planner, &mut stats));
    }
    let mut indices: Vec<N> = Vec::with_capacity(roots.len());
    for (tree, q) in roots.iter().enumerate() {
        planner.nodes.push(TreeNode {
            q: *q,
            parent: None,
            children: Vec::new(),
            cost: 0.0,
        });
        let mut index = planner.index.fresh();
        index.insert(tree as u64, *q, None, &mut stats.insert_ops);
        indices.push(index);
    }
    let num_trees = roots.len();
    let mut comps = Components::new(num_trees);
    // Zero-length links between nodes of equal configuration in
    // different trees; they only ever join distinct components, so tree
    // edges plus bridges stay a forest and the start→goal path is unique.
    let mut bridges: Vec<(usize, usize)> = Vec::new();
    let mut solution: Option<usize> = None; // bridge that closed start↔goal

    'rounds: for round in 0..budget {
        if let Some((every, hook)) = &planner.stop_hook {
            if round % every == 0 && round > 0 && hook() {
                stats.stopped_early = true;
                break;
            }
        }
        stats.samples += 1;
        let mut trace = RoundTrace::default();
        let ns_mark = stats.ns_ops;
        let cc_mark = planner.ledger_macs(&stats);
        let ins_mark = stats.insert_ops;
        let _round_span = moped_obs::span(Stage::Round);

        // --- Sampling (no goal bias: the goal is a tree root) ---------
        let x_rand = {
            let _s = moped_obs::span(Stage::Sample);
            let q = match &mut planner.replay {
                Some(r) => {
                    let q = r.samples[r.cursor];
                    r.cursor += 1;
                    q
                }
                None => planner.scenario.sample_any(&mut rng),
            };
            if let Some(j) = &mut planner.journal {
                j.record_sample(q.as_slice());
            }
            q
        };

        // --- EXTEND: deterministic round-robin over the trees ---------
        let t = round % num_trees;
        let (near_id, _) = {
            let _s = moped_obs::span(Stage::Nearest);
            indices[t]
                .nearest(&x_rand, &mut stats.ns_ops)
                .expect("every tree holds at least its root")
        };
        let near_idx = near_id as usize;
        let x_new = {
            let _s = moped_obs::span(Stage::Steer);
            planner.nodes[near_idx]
                .q
                .steer_toward(&x_rand, planner.step)
        };
        stats.other_ops.mul += dim as u64;
        stats.other_ops.add += dim as u64;
        if x_new == planner.nodes[near_idx].q {
            if let Some(j) = &mut planner.journal {
                j.record_reject(RejectReason::Degenerate);
            }
            finish_trace(planner, &mut stats, trace, ns_mark, cc_mark, ins_mark);
            continue;
        }
        if !planner.checker.motion_free(
            &planner.scenario.robot,
            &planner.nodes[near_idx].q,
            &x_new,
            &planner.steps,
            &mut stats.collision,
        ) {
            if let Some(j) = &mut planner.journal {
                j.record_reject(RejectReason::Collision);
            }
            finish_trace(planner, &mut stats, trace, ns_mark, cc_mark, ins_mark);
            continue;
        }
        let new_idx = add_node(planner, &mut stats, &mut indices[t], near_idx, x_new);
        trace.accepted = true;

        // --- CONNECT: greedy walk from the closest other component ----
        // Target: the tree (outside x_new's component) whose nearest node
        // is closest to x_new; ties break toward the lowest tree id.
        let mut target: Option<(f64, usize, usize)> = None; // (dist, tree, node)
        for (u, index) in indices.iter().enumerate() {
            if comps.find(u) == comps.find(t) {
                continue;
            }
            let _s = moped_obs::span(Stage::Nearest);
            if let Some((id, d)) = index.nearest(&x_new, &mut stats.ns_ops) {
                stats.other_ops.cmp += 1;
                if target.is_none_or(|(bd, _, _)| d < bd) {
                    target = Some((d, u, id as usize));
                }
            }
        }
        if let Some((_, u, entry)) = target {
            let mut cur_idx = entry;
            let mut cur_q = planner.nodes[entry].q;
            let reached = loop {
                if cur_q == x_new {
                    break true;
                }
                let q_next = {
                    let _s = moped_obs::span(Stage::Steer);
                    cur_q.steer_toward(&x_new, planner.step)
                };
                stats.other_ops.mul += dim as u64;
                stats.other_ops.add += dim as u64;
                if q_next == cur_q
                    || !planner.checker.motion_free(
                        &planner.scenario.robot,
                        &cur_q,
                        &q_next,
                        &planner.steps,
                        &mut stats.collision,
                    )
                {
                    break false; // trapped
                }
                cur_idx = add_node(planner, &mut stats, &mut indices[u], cur_idx, q_next);
                cur_q = q_next;
            };
            if reached {
                // cur_q == x_new: zero-length bridge between the trees.
                bridges.push((new_idx, cur_idx));
                if let Some(j) = &mut planner.journal {
                    j.record_link(new_idx as u64, cur_idx as u64);
                }
                comps.union(t, u);
                if comps.find(0) == comps.find(1) {
                    solution = Some(bridges.len() - 1);
                    finish_trace(planner, &mut stats, trace, ns_mark, cc_mark, ins_mark);
                    break 'rounds;
                }
            }
        }
        finish_trace(planner, &mut stats, trace, ns_mark, cc_mark, ins_mark);
    }

    // --- Path extraction ----------------------------------------------
    let (path, path_cost) = match solution {
        None => (None, f64::INFINITY),
        Some(closing) => {
            let path = extract_path(planner, &bridges);
            let total: f64 = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
            stats.solution_history.push((stats.samples, total));
            if let Some(j) = &mut planner.journal {
                j.record_goal(bridges[closing].0 as u64, total);
            }
            (Some(path), total)
        }
    };

    // Expose the start tree through `RrtStar::index()` afterwards.
    std::mem::swap(&mut planner.index, &mut indices[0]);
    stats.nodes = planner.nodes.len();
    PlanResult {
        path,
        path_cost,
        stats,
    }
}

/// Appends a node under `parent` and registers it with its tree's
/// `index`; returns the arena id.
fn add_node<N: NeighborIndex>(
    planner: &mut RrtStar<'_, N>,
    stats: &mut PlanStats,
    index: &mut N,
    parent: usize,
    q: Config,
) -> usize {
    let _s = moped_obs::span(Stage::Insert);
    let cost = planner.nodes[parent].cost
        + planner.nodes[parent]
            .q
            .distance_counted(&q, &mut stats.other_ops);
    let idx = planner.nodes.len();
    planner.nodes.push(TreeNode {
        q,
        parent: Some(parent),
        children: Vec::new(),
        cost,
    });
    planner.nodes[parent].children.push(idx);
    index.insert(idx as u64, q, Some(parent as u64), &mut stats.insert_ops);
    if let Some(j) = &mut planner.journal {
        j.record_accept(idx as u64, parent as u64, cost);
    }
    idx
}

/// Closes out a round's trace if tracing is on.
fn finish_trace<N: NeighborIndex>(
    planner: &RrtStar<'_, N>,
    stats: &mut PlanStats,
    mut trace: RoundTrace,
    ns_mark: OpCount,
    cc_mark: u64,
    ins_mark: OpCount,
) {
    if planner.params.trace_rounds {
        trace.ns_macs = (stats.ns_ops - ns_mark).mac_equiv();
        trace.cc_macs = planner.ledger_macs(stats) - cc_mark;
        trace.insert_macs = (stats.insert_ops - ins_mark).mac_equiv();
        stats.rounds.push(trace);
    }
}

/// Walks the unique node-0 → node-1 path through tree edges and bridge
/// edges, returning its configurations with zero-length bridge
/// duplicates collapsed.
fn extract_path<N: NeighborIndex>(
    planner: &RrtStar<'_, N>,
    bridges: &[(usize, usize)],
) -> Vec<Config> {
    let n = planner.nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in planner.nodes.iter().enumerate() {
        if let Some(p) = node.parent {
            adj[i].push(p);
            adj[p].push(i);
        }
    }
    for &(a, b) in bridges {
        adj[a].push(b);
        adj[b].push(a);
    }
    // BFS start → goal (deterministic: adjacency in construction order).
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[0] = true;
    queue.push_back(0usize);
    while let Some(i) = queue.pop_front() {
        if i == 1 {
            break;
        }
        for &j in &adj[i] {
            if !seen[j] {
                seen[j] = true;
                prev[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    debug_assert!(seen[1], "extract_path called on a disconnected forest");
    let mut rev = vec![1usize];
    while let Some(p) = prev[*rev.last().expect("non-empty")] {
        rev.push(p);
    }
    rev.reverse();
    let mut path: Vec<Config> = Vec::with_capacity(rev.len());
    for i in rev {
        let q = planner.nodes[i].q;
        if path.last() != Some(&q) {
            path.push(q);
        }
    }
    path
}

/// Finds up to [`MAX_LOCAL_TREES`] collision-free configurations in
/// narrow regions (≥ [`NARROW_BLOCKED_MIN`] of the `2·dof` axis probes at
/// steering-step distance are blocked by obstacles), using a seed-derived
/// RNG that is independent of the sample stream so journal replay
/// re-derives the same roots from `PlannerParams::seed`.
fn seed_narrow_roots<N: NeighborIndex>(
    planner: &RrtStar<'_, N>,
    stats: &mut PlanStats,
) -> Vec<Config> {
    let mut rng = StdRng::seed_from_u64(planner.params.seed ^ 0x9E37_79B9_7F4A_7C15);
    let robot = &planner.scenario.robot;
    let dim = robot.dof();
    let step = planner.step;
    let mut roots: Vec<Config> = Vec::new();
    for _ in 0..SEED_ATTEMPTS {
        if roots.len() >= MAX_LOCAL_TREES {
            break;
        }
        let q = planner.scenario.sample_any(&mut rng);
        if !planner.checker.config_free(robot, &q, &mut stats.collision) {
            continue;
        }
        // Keep seeds away from the fixed roots and each other so each
        // local tree explores distinct territory.
        let mut far = q.distance_counted(&planner.scenario.start, &mut stats.other_ops)
            > 2.0 * step
            && q.distance_counted(&planner.scenario.goal, &mut stats.other_ops) > 2.0 * step;
        for r in &roots {
            far = far && q.distance_counted(r, &mut stats.other_ops) > 2.0 * step;
        }
        stats.other_ops.cmp += 2 + roots.len() as u64;
        if !far {
            continue;
        }
        let mut blocked = 0usize;
        for d in 0..dim {
            for sgn in [-1.0, 1.0] {
                let mut p = q;
                p.as_mut_slice()[d] += sgn * step;
                stats.other_ops.add += 1;
                if robot.in_bounds(&p)
                    && !planner.checker.config_free(robot, &p, &mut stats.collision)
                {
                    blocked += 1;
                }
            }
        }
        if blocked >= NARROW_BLOCKED_MIN {
            roots.push(q);
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use crate::{Engine, PlannerParams, RrtStar, SimbrIndex};
    use moped_collision::TwoStageChecker;
    use moped_env::{Scenario, ScenarioParams};
    use moped_obs::Journal;
    use moped_robot::Robot;

    fn params(samples: usize, seed: u64) -> PlannerParams {
        PlannerParams {
            max_samples: samples,
            seed,
            ..PlannerParams::default()
        }
    }

    fn open_scene(seed: u64) -> Scenario {
        Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), seed)
    }

    #[test]
    fn rrt_connect_solves_open_world() {
        let s = open_scene(3);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(800, 5))
            .with_engine(Engine::RrtConnect);
        let r = planner.plan();
        assert!(r.solved(), "open world should be solvable bidirectionally");
        assert!(r.path_cost.is_finite());
        assert!(planner.check_tree_invariants().is_none());
        let path = r.path.as_ref().expect("solved");
        assert_eq!(path[0], s.start);
        assert_eq!(*path.last().expect("non-empty"), s.goal);
        let summed: f64 = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
        assert!((summed - r.path_cost).abs() < 1e-9);
    }

    #[test]
    fn multi_tree_solves_open_world() {
        let s = open_scene(7);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(800, 2))
            .with_engine(Engine::MultiTree);
        let r = planner.plan();
        assert!(r.solved());
        let path = r.path.as_ref().expect("solved");
        assert_eq!(path[0], s.start);
        assert_eq!(*path.last().expect("non-empty"), s.goal);
        assert!(planner.check_tree_invariants().is_none());
    }

    #[test]
    fn connect_paths_are_collision_free() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 11);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        for engine in [Engine::RrtConnect, Engine::MultiTree] {
            let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(1200, 9))
                .with_engine(engine);
            let r = planner.plan();
            if let Some(path) = &r.path {
                for w in path.windows(2) {
                    for p in moped_geometry::interpolate(&w[0], &w[1], &planner.steps) {
                        assert!(
                            !s.config_collides(&p),
                            "{} path pose collides: {p:?}",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn connect_engines_are_deterministic() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 8);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        for engine in [Engine::RrtConnect, Engine::MultiTree] {
            let run = |seed| {
                RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(400, seed))
                    .with_engine(engine)
                    .plan()
            };
            let (a, b) = (run(17), run(17));
            assert_eq!(
                a.path_cost.to_bits(),
                b.path_cost.to_bits(),
                "{} cost must be bit-identical",
                engine.name()
            );
            assert_eq!(a.path, b.path, "{} path must be identical", engine.name());
            assert_eq!(a.stats.total_ops(), b.stats.total_ops());
        }
    }

    #[test]
    fn connect_engines_replay_bit_identically() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 9);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        for engine in [Engine::RrtConnect, Engine::MultiTree] {
            let mut recorder = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(400, 23))
                .with_engine(engine)
                .with_journal_recording();
            let original = recorder.plan();
            let journal = recorder.take_journal().expect("journaling was enabled");
            assert_eq!(journal.rounds(), original.stats.samples);
            if original.solved() {
                assert!(
                    journal.links() > 0,
                    "{} must journal bridges",
                    engine.name()
                );
            }

            // Round-trip the wire format so hex-f64 parsing is covered.
            let journal = Journal::parse(&journal.serialize()).expect("wire round trip");
            let mut replayer = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(400, 23))
                .with_engine(engine)
                .with_replay(&journal);
            let replayed = replayer.plan();
            assert_eq!(
                original.path_cost.to_bits(),
                replayed.path_cost.to_bits(),
                "{} replay cost mismatch",
                engine.name()
            );
            assert_eq!(original.path, replayed.path);
            assert_eq!(original.stats.nodes, replayed.stats.nodes);
            assert_eq!(original.stats.samples, replayed.stats.samples);
            assert_eq!(original.stats.total_ops(), replayed.stats.total_ops());
            assert!(replayer.check_tree_invariants().is_none());
        }
    }

    #[test]
    fn connect_stop_hook_truncates_run() {
        // A nearly-sealed passage keeps the trees apart long enough for
        // the hook to fire; the contract is the flag plus a sound forest.
        let s = Scenario::narrow_passage(Robot::mobile_2d(), 2.0, 0.0);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(10_000, 5))
            .with_engine(Engine::RrtConnect)
            .with_stop_hook(1, || true);
        let r = planner.plan();
        assert!(r.stats.stopped_early);
        assert_eq!(r.stats.samples, 1);
        assert!(planner.check_tree_invariants().is_none());
    }

    #[test]
    fn rrt_connect_beats_rrt_star_on_tilted_narrow_passage() {
        // The acceptance gate in miniature: at an equal sample budget the
        // bidirectional engine must solve tilted narrow passages at least
        // as often as single-tree RRT*.
        let robot = Robot::drone_3d();
        let mut star = 0u32;
        let mut connect = 0u32;
        for seed in 0u64..6 {
            let s = Scenario::narrow_passage(robot.clone(), 24.0, 0.5);
            let p = params(700, 40 + seed);
            let checker = TwoStageChecker::moped(s.obstacles.clone());
            let dim = robot.dof();
            if RrtStar::new(&s, &checker, SimbrIndex::moped(dim), p.clone())
                .plan()
                .solved()
            {
                star += 1;
            }
            if RrtStar::new(&s, &checker, SimbrIndex::moped(dim), p)
                .with_engine(Engine::RrtConnect)
                .plan()
                .solved()
            {
                connect += 1;
            }
        }
        assert!(
            connect >= star,
            "RRT-Connect should solve narrow passages at least as often: {connect} vs {star}"
        );
    }

    #[test]
    fn multi_tree_forest_costs_are_root_relative() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(24), 19);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params(300, 31))
            .with_engine(Engine::MultiTree);
        let _ = planner.plan();
        let snapshot = planner.tree_snapshot();
        // Node 0 (start) and node 1 (goal) are always parentless roots.
        assert!(snapshot[0].1.is_none() && snapshot[0].2 == 0.0);
        assert!(snapshot[1].1.is_none() && snapshot[1].2 == 0.0);
        assert!(planner.check_tree_invariants().is_none());
    }
}
