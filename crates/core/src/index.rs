//! Neighbor-index backends for the planner.

use moped_geometry::{Config, OpCount};
use moped_kdtree::KdTree;
use moped_simbr::{SearchStats, SiMbrTree};

/// The neighbor-search interface RRT\* consumes.
///
/// Each sampling round issues up to two queries: `nearest(x_rand)` to find
/// `x_nearest`, and a neighborhood query around `x_new` for parent choice
/// and rewiring. Backends differ in how (and whether) they pay for the
/// second query — that is the crux of MOPED's §III-B.
pub trait NeighborIndex {
    /// Adds a configuration under a caller-assigned id. `near_hint` is the
    /// id of the node `q` was steered from (`x_nearest`); LCI-enabled
    /// backends use it for O(1) placement, others ignore it.
    fn insert(&mut self, id: u64, q: Config, near_hint: Option<u64>, ops: &mut OpCount);

    /// Exact or backend-best nearest neighbor: `(id, distance)`.
    fn nearest(&self, q: &Config, ops: &mut OpCount) -> Option<(u64, f64)>;

    /// The neighborhood used for parent selection and rewiring around the
    /// new node `q`, where `anchor` is the id of `x_nearest` and `radius`
    /// the RRT\* rewiring radius. Exact backends return the true
    /// in-radius set; the SIAS backend returns the anchor's leaf group.
    fn neighborhood(
        &self,
        anchor: u64,
        q: &Config,
        radius: f64,
        ops: &mut OpCount,
    ) -> Vec<(u64, Config)>;

    /// Number of indexed configurations.
    fn len(&self) -> usize;

    /// Returns `true` when no configurations are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short backend name for reports.
    fn name(&self) -> &'static str;

    /// An empty index with the same configuration (dimension, node
    /// capacity, search/insert switches) as `self`. The multi-tree
    /// engines use this to give each exploration tree its own index
    /// without the caller having to re-specify backend parameters.
    fn fresh(&self) -> Self
    where
        Self: Sized;
}

/// Brute-force index: the baseline RRT\* implementation's linear scans.
#[derive(Clone, Debug, Default)]
pub struct LinearIndex {
    points: Vec<(u64, Config)>,
}

impl LinearIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        LinearIndex::default()
    }
}

impl NeighborIndex for LinearIndex {
    fn insert(&mut self, id: u64, q: Config, _near_hint: Option<u64>, _ops: &mut OpCount) {
        self.points.push((id, q));
    }

    fn nearest(&self, q: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for (id, p) in &self.points {
            ops.mem_words += q.dim() as u64;
            let d2 = p.distance_sq_counted(q, ops);
            ops.cmp += 1;
            if best.is_none_or(|(_, b)| d2 < b) {
                best = Some((*id, d2));
            }
        }
        best.map(|(id, d2)| (id, d2.sqrt()))
    }

    fn neighborhood(
        &self,
        _anchor: u64,
        q: &Config,
        radius: f64,
        ops: &mut OpCount,
    ) -> Vec<(u64, Config)> {
        let r2 = radius * radius;
        self.points
            .iter()
            .filter(|(_, p)| {
                ops.mem_words += q.dim() as u64;
                ops.cmp += 1;
                p.distance_sq_counted(q, ops) <= r2
            })
            .copied()
            .collect()
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn fresh(&self) -> Self {
        LinearIndex::new()
    }
}

/// SI-MBR-Tree index with the two MOPED switches:
///
/// * `approx_search` (SIAS): the neighborhood query returns the anchor's
///   leaf group instead of running an exact range search.
/// * `low_cost_insert` (LCI): inserts place the point next to its steering
///   anchor in O(1) instead of the min-enlargement descent.
#[derive(Clone, Debug)]
pub struct SimbrIndex {
    tree: SiMbrTree,
    approx_search: bool,
    low_cost_insert: bool,
    /// Reference depth-first traversal instead of best-first (old-vs-new
    /// baseline for the benches; same exact answers, more node visits).
    reference_search: bool,
    /// Search-trace cache: the previous `nearest` winner seeds the next
    /// query's pruning bound (consecutive RRT\* samples are spatially
    /// correlated, so the stale winner is usually a tight bound).
    warm: std::cell::Cell<Option<u64>>,
    search_stats: std::cell::RefCell<SearchStats>,
}

impl SimbrIndex {
    /// Creates the index for `dim`-dimensional configurations.
    ///
    /// `node_capacity` is the SI-MBR node size (paper-style small nodes;
    /// 4–8 work well).
    pub fn new(
        dim: usize,
        node_capacity: usize,
        approx_search: bool,
        low_cost_insert: bool,
    ) -> Self {
        SimbrIndex {
            tree: SiMbrTree::new(dim, node_capacity),
            approx_search,
            low_cost_insert,
            reference_search: false,
            warm: std::cell::Cell::new(None),
            search_stats: std::cell::RefCell::new(SearchStats::default()),
        }
    }

    /// Pre-rewrite reference engine: depth-first MINDIST descent, no
    /// warm-start seeding. Exact like [`SimbrIndex::moped`]; kept as the
    /// old-vs-new baseline for `planner_bench` and the Criterion benches.
    pub fn reference(dim: usize) -> Self {
        SimbrIndex {
            reference_search: true,
            ..SimbrIndex::new(dim, 6, true, true)
        }
    }

    /// Accumulated traversal statistics across every `nearest` call (the
    /// input to the hardware cache model).
    pub fn search_stats(&self) -> SearchStats {
        self.search_stats.borrow().clone()
    }

    /// Full MOPED configuration (SIAS + LCI).
    pub fn moped(dim: usize) -> Self {
        SimbrIndex::new(dim, 6, true, true)
    }

    /// Access to the underlying tree (for memory sizing / diagnostics).
    pub fn tree(&self) -> &SiMbrTree {
        &self.tree
    }

    /// Whether SIAS is enabled.
    pub fn approx_search(&self) -> bool {
        self.approx_search
    }

    /// Whether LCI is enabled.
    pub fn low_cost_insert(&self) -> bool {
        self.low_cost_insert
    }
}

impl NeighborIndex for SimbrIndex {
    fn insert(&mut self, id: u64, q: Config, near_hint: Option<u64>, ops: &mut OpCount) {
        match (self.low_cost_insert, near_hint) {
            (true, Some(anchor)) => self.tree.insert_near(id, q, anchor, ops),
            _ => self.tree.insert_conventional(id, q, ops),
        }
    }

    fn nearest(&self, q: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        // The persistent accumulator is handed straight to the tree (all
        // SearchStats fields are additive), so a warm query performs no
        // heap allocation at all.
        let mut stats = self.search_stats.borrow_mut();
        let out = if self.reference_search {
            self.tree.nearest_reference_dfs(q, ops, &mut stats)
        } else {
            self.tree
                .nearest_with_hint(q, self.warm.get(), ops, &mut stats)
        };
        self.warm.set(out.map(|(id, _)| id));
        out
    }

    fn neighborhood(
        &self,
        anchor: u64,
        q: &Config,
        radius: f64,
        ops: &mut OpCount,
    ) -> Vec<(u64, Config)> {
        if self.approx_search {
            self.tree
                .leaf_group(anchor, ops)
                .into_iter()
                .map(|e| (e.id, e.point))
                .collect()
        } else {
            self.tree
                .near(q, radius, ops)
                .into_iter()
                .map(|e| (e.id, e.point))
                .collect()
        }
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn name(&self) -> &'static str {
        match (self.approx_search, self.low_cost_insert) {
            (false, false) => "si-mbr",
            (true, false) => "si-mbr+sias",
            (false, true) => "si-mbr+lci",
            (true, true) => "si-mbr+sias+lci",
        }
    }

    fn fresh(&self) -> Self {
        SimbrIndex {
            reference_search: self.reference_search,
            ..SimbrIndex::new(
                self.tree.dim(),
                self.tree.max_entries(),
                self.approx_search,
                self.low_cost_insert,
            )
        }
    }
}

/// KD-tree index (the Fig 19 neighbor-search baseline).
#[derive(Clone, Debug)]
pub struct KdIndex {
    tree: KdTree,
}

impl KdIndex {
    /// Creates the index for `dim`-dimensional configurations.
    pub fn new(dim: usize) -> Self {
        KdIndex {
            tree: KdTree::new(dim),
        }
    }

    /// Access to the underlying KD-tree.
    pub fn tree(&self) -> &KdTree {
        &self.tree
    }
}

impl NeighborIndex for KdIndex {
    fn insert(&mut self, id: u64, q: Config, _near_hint: Option<u64>, ops: &mut OpCount) {
        self.tree.insert(id, q, ops);
    }

    fn nearest(&self, q: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        self.tree.nearest(q, ops)
    }

    fn neighborhood(
        &self,
        _anchor: u64,
        q: &Config,
        radius: f64,
        ops: &mut OpCount,
    ) -> Vec<(u64, Config)> {
        self.tree.near(q, radius, ops)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn name(&self) -> &'static str {
        "kd-tree"
    }

    fn fresh(&self) -> Self {
        KdIndex::new(self.tree.dim())
    }
}

/// The NN-backend choices the autotuner switches between.
///
/// This is the runtime-selectable face of the three concrete index types:
/// a profile names a backend, [`NnBackend::build`] constructs the matching
/// [`AnyIndex`], and the planner stays monomorphic over `AnyIndex` so the
/// event journal and replay machinery keep working for tuned plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NnBackend {
    /// Brute-force linear scan ([`LinearIndex`]).
    Linear,
    /// KD-tree ([`KdIndex`]).
    Kd,
    /// SI-MBR tree ([`SimbrIndex`]); SIAS/LCI switches are supplied at
    /// build time.
    SiMbr,
}

impl NnBackend {
    /// Every backend, in stable order (candidate enumeration, tests).
    pub const ALL: [NnBackend; 3] = [NnBackend::Linear, NnBackend::Kd, NnBackend::SiMbr];

    /// Stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            NnBackend::Linear => "linear",
            NnBackend::Kd => "kd-tree",
            NnBackend::SiMbr => "si-mbr",
        }
    }

    /// Parses [`NnBackend::name`] output.
    pub fn parse(s: &str) -> Option<NnBackend> {
        match s {
            "linear" => Some(NnBackend::Linear),
            "kd-tree" => Some(NnBackend::Kd),
            "si-mbr" => Some(NnBackend::SiMbr),
            _ => None,
        }
    }

    /// Builds the concrete index for `dim`-dimensional configurations.
    ///
    /// `sias` and `lci` only affect the SI-MBR backend (paper switches);
    /// the exact backends ignore them.
    pub fn build(self, dim: usize, sias: bool, lci: bool) -> AnyIndex {
        match self {
            NnBackend::Linear => AnyIndex::Linear(LinearIndex::new()),
            NnBackend::Kd => AnyIndex::Kd(KdIndex::new(dim)),
            NnBackend::SiMbr => AnyIndex::SiMbr(SimbrIndex::new(dim, 6, sias, lci)),
        }
    }
}

/// Enum-dispatch wrapper over the three index backends.
///
/// The planner is generic over [`NeighborIndex`]; `AnyIndex` makes the
/// backend a *runtime* choice (the tuner's profile application seam)
/// while keeping `RrtStar<AnyIndex>` a single concrete type.
// The variant size gap is deliberate: exactly one AnyIndex is built per
// plan and then queried by reference on the NN hot path, so boxing the
// SI-MBR arena would trade a single oversized move at construction for
// a pointer chase on every nearest/neighborhood call.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum AnyIndex {
    /// [`LinearIndex`] variant.
    Linear(LinearIndex),
    /// [`KdIndex`] variant.
    Kd(KdIndex),
    /// [`SimbrIndex`] variant.
    SiMbr(SimbrIndex),
}

impl AnyIndex {
    /// Which backend this wraps.
    pub fn backend(&self) -> NnBackend {
        match self {
            AnyIndex::Linear(_) => NnBackend::Linear,
            AnyIndex::Kd(_) => NnBackend::Kd,
            AnyIndex::SiMbr(_) => NnBackend::SiMbr,
        }
    }
}

impl NeighborIndex for AnyIndex {
    fn insert(&mut self, id: u64, q: Config, near_hint: Option<u64>, ops: &mut OpCount) {
        match self {
            AnyIndex::Linear(i) => i.insert(id, q, near_hint, ops),
            AnyIndex::Kd(i) => i.insert(id, q, near_hint, ops),
            AnyIndex::SiMbr(i) => i.insert(id, q, near_hint, ops),
        }
    }

    fn nearest(&self, q: &Config, ops: &mut OpCount) -> Option<(u64, f64)> {
        match self {
            AnyIndex::Linear(i) => i.nearest(q, ops),
            AnyIndex::Kd(i) => i.nearest(q, ops),
            AnyIndex::SiMbr(i) => i.nearest(q, ops),
        }
    }

    fn neighborhood(
        &self,
        anchor: u64,
        q: &Config,
        radius: f64,
        ops: &mut OpCount,
    ) -> Vec<(u64, Config)> {
        match self {
            AnyIndex::Linear(i) => i.neighborhood(anchor, q, radius, ops),
            AnyIndex::Kd(i) => i.neighborhood(anchor, q, radius, ops),
            AnyIndex::SiMbr(i) => i.neighborhood(anchor, q, radius, ops),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyIndex::Linear(i) => i.len(),
            AnyIndex::Kd(i) => i.len(),
            AnyIndex::SiMbr(i) => i.len(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyIndex::Linear(i) => i.name(),
            AnyIndex::Kd(i) => i.name(),
            AnyIndex::SiMbr(i) => i.name(),
        }
    }

    fn fresh(&self) -> Self {
        match self {
            AnyIndex::Linear(i) => AnyIndex::Linear(i.fresh()),
            AnyIndex::Kd(i) => AnyIndex::Kd(i.fresh()),
            AnyIndex::SiMbr(i) => AnyIndex::SiMbr(i.fresh()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_points(n: usize, dim: usize) -> Vec<Config> {
        (0..n)
            .map(|i| {
                let coords: Vec<f64> = (0..dim)
                    .map(|d| (((i * 31 + d * 17) % 97) as f64) / 3.0)
                    .collect();
                Config::new(&coords)
            })
            .collect()
    }

    fn fill(index: &mut dyn NeighborIndex, pts: &[Config]) {
        let mut ops = OpCount::default();
        for (i, p) in pts.iter().enumerate() {
            let hint = if i == 0 {
                None
            } else {
                index.nearest(p, &mut ops).map(|(id, _)| id)
            };
            index.insert(i as u64, *p, hint, &mut ops);
        }
    }

    #[test]
    fn all_backends_agree_on_nearest() {
        let pts = seeded_points(150, 4);
        let mut linear = LinearIndex::new();
        let mut simbr = SimbrIndex::moped(4);
        let mut simbr_conv = SimbrIndex::new(4, 6, false, false);
        let mut kd = KdIndex::new(4);
        fill(&mut linear, &pts);
        fill(&mut simbr, &pts);
        fill(&mut simbr_conv, &pts);
        fill(&mut kd, &pts);
        let mut ops = OpCount::default();
        for q in seeded_points(20, 4).iter().map(|p| {
            let mut q = *p;
            q.as_mut_slice()[0] += 0.37;
            q
        }) {
            let want = linear.nearest(&q, &mut ops).unwrap().1;
            for idx in [
                &simbr as &dyn NeighborIndex,
                &simbr_conv as &dyn NeighborIndex,
                &kd as &dyn NeighborIndex,
            ] {
                let got = idx.nearest(&q, &mut ops).unwrap().1;
                assert!((got - want).abs() < 1e-9, "{} wrong nearest", idx.name());
            }
        }
    }

    #[test]
    fn exact_neighborhoods_agree() {
        let pts = seeded_points(100, 3);
        let mut linear = LinearIndex::new();
        let mut simbr = SimbrIndex::new(3, 6, false, false);
        let mut kd = KdIndex::new(3);
        fill(&mut linear, &pts);
        fill(&mut simbr, &pts);
        fill(&mut kd, &pts);
        let mut ops = OpCount::default();
        let q = Config::new(&[10.0, 10.0, 10.0]);
        let mut want: Vec<u64> = linear
            .neighborhood(0, &q, 6.0, &mut ops)
            .iter()
            .map(|(i, _)| *i)
            .collect();
        want.sort_unstable();
        for idx in [&simbr as &dyn NeighborIndex, &kd as &dyn NeighborIndex] {
            let mut got: Vec<u64> = idx
                .neighborhood(0, &q, 6.0, &mut ops)
                .iter()
                .map(|(i, _)| *i)
                .collect();
            got.sort_unstable();
            assert_eq!(got, want, "{} wrong neighborhood", idx.name());
        }
    }

    #[test]
    fn sias_neighborhood_contains_anchor_and_is_cheap() {
        let pts = seeded_points(200, 5);
        let mut simbr = SimbrIndex::moped(5);
        fill(&mut simbr, &pts);
        let mut cheap = OpCount::default();
        let q = pts[42];
        let group = simbr.neighborhood(42, &q, 5.0, &mut cheap);
        assert!(group.iter().any(|(id, _)| *id == 42));
        let mut exact_ops = OpCount::default();
        let mut exact_idx = SimbrIndex::new(5, 6, false, false);
        fill(&mut exact_idx, &pts);
        let _ = exact_idx.neighborhood(42, &q, 5.0, &mut exact_ops);
        assert!(
            cheap.mac_equiv() < exact_ops.mac_equiv(),
            "SIAS must beat exact range search: {} vs {}",
            cheap.mac_equiv(),
            exact_ops.mac_equiv()
        );
    }

    #[test]
    fn simbr_search_stats_accumulate() {
        let pts = seeded_points(120, 3);
        let mut simbr = SimbrIndex::moped(3);
        fill(&mut simbr, &pts);
        assert!(simbr.search_stats().nodes_visited > 0);
    }

    #[test]
    fn reference_engine_agrees_with_best_first() {
        let pts = seeded_points(180, 6);
        let mut fast = SimbrIndex::moped(6);
        let mut reference = SimbrIndex::reference(6);
        fill(&mut fast, &pts);
        fill(&mut reference, &pts);
        let mut ops = OpCount::default();
        for q in seeded_points(25, 6).iter().map(|p| {
            let mut q = *p;
            q.as_mut_slice()[1] += 0.23;
            q
        }) {
            let a = fast.nearest(&q, &mut ops).unwrap().1;
            let b = reference.nearest(&q, &mut ops).unwrap().1;
            assert!((a - b).abs() < 1e-12, "engines disagree at {q:?}");
        }
        assert!(
            fast.search_stats().nodes_visited <= reference.search_stats().nodes_visited,
            "best-first + warm start must not visit more nodes than the DFS"
        );
    }

    #[test]
    fn backend_names() {
        assert_eq!(LinearIndex::new().name(), "linear");
        assert_eq!(SimbrIndex::moped(3).name(), "si-mbr+sias+lci");
        assert_eq!(SimbrIndex::new(3, 4, false, false).name(), "si-mbr");
        assert_eq!(KdIndex::new(3).name(), "kd-tree");
    }

    #[test]
    fn fresh_preserves_configuration_and_starts_empty() {
        let pts = seeded_points(40, 4);
        let mut simbr = SimbrIndex::new(4, 8, true, false);
        let mut reference = SimbrIndex::reference(4);
        let mut kd = KdIndex::new(4);
        fill(&mut simbr, &pts);
        fill(&mut reference, &pts);
        fill(&mut kd, &pts);
        let f = simbr.fresh();
        assert!(f.is_empty());
        assert_eq!(f.name(), simbr.name());
        assert_eq!(f.tree().dim(), 4);
        assert_eq!(f.tree().max_entries(), 8);
        assert!(reference.fresh().reference_search);
        assert!(kd.fresh().is_empty());
        assert_eq!(kd.fresh().tree().dim(), 4);
        assert!(LinearIndex::new().fresh().is_empty());
    }

    #[test]
    fn any_index_matches_wrapped_backend() {
        let pts = seeded_points(90, 4);
        for backend in NnBackend::ALL {
            let mut any = backend.build(4, false, false);
            let mut linear = LinearIndex::new();
            fill(&mut any, &pts);
            fill(&mut linear, &pts);
            assert_eq!(any.backend(), backend);
            assert_eq!(any.len(), linear.len());
            let mut ops = OpCount::default();
            let q = Config::new(&[7.0, 3.0, 11.0, 5.0]);
            let want = linear.nearest(&q, &mut ops).unwrap().1;
            let got = any.nearest(&q, &mut ops).unwrap().1;
            assert!((got - want).abs() < 1e-9, "{} wrong nearest", any.name());
            let f = any.fresh();
            assert!(f.is_empty());
            assert_eq!(f.backend(), backend);
        }
    }

    #[test]
    fn nn_backend_name_round_trip() {
        for backend in NnBackend::ALL {
            assert_eq!(NnBackend::parse(backend.name()), Some(backend));
        }
        assert_eq!(NnBackend::parse("bogus"), None);
        assert_eq!(
            NnBackend::SiMbr.build(3, true, true).name(),
            "si-mbr+sias+lci"
        );
    }

    #[test]
    fn empty_index_nearest_is_none() {
        let mut ops = OpCount::default();
        assert!(LinearIndex::new()
            .nearest(&Config::zeros(2), &mut ops)
            .is_none());
        assert!(SimbrIndex::moped(2)
            .nearest(&Config::zeros(2), &mut ops)
            .is_none());
        assert!(KdIndex::new(2)
            .nearest(&Config::zeros(2), &mut ops)
            .is_none());
    }
}
