//! Path post-processing: shortcut smoothing.
//!
//! RRT\*'s rewiring optimizes the tree, but the extracted waypoint path
//! still zig-zags at the steering-step scale. Shortcut smoothing — try to
//! connect non-adjacent waypoints directly and splice out the middle when
//! the motion is free — is the standard cheap post-pass; MOPED's
//! two-stage checker makes its collision queries cheap too.

use moped_collision::{CollisionChecker, CollisionLedger};
use moped_geometry::{Config, InterpolationSteps};
use moped_robot::Robot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a smoothing pass.
#[derive(Clone, Debug, PartialEq)]
pub struct SmoothReport {
    /// The smoothed path.
    pub path: Vec<Config>,
    /// Cost before smoothing.
    pub cost_before: f64,
    /// Cost after smoothing.
    pub cost_after: f64,
    /// Shortcut attempts that succeeded.
    pub shortcuts_applied: usize,
}

fn path_cost(path: &[Config]) -> f64 {
    path.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

/// Randomized shortcut smoothing: up to `attempts` random waypoint pairs
/// are tested for a direct collision-free connection; successful pairs
/// splice out everything between them. Deterministic in `seed`.
///
/// The returned path keeps the original endpoints and never increases
/// cost.
///
/// # Panics
///
/// Panics if `path` has fewer than 2 waypoints.
pub fn shortcut(
    path: &[Config],
    robot: &Robot,
    checker: &dyn CollisionChecker,
    steps: &InterpolationSteps,
    attempts: usize,
    seed: u64,
    ledger: &mut CollisionLedger,
) -> SmoothReport {
    assert!(path.len() >= 2, "path needs at least two waypoints");
    let cost_before = path_cost(path);
    let mut out: Vec<Config> = path.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shortcuts_applied = 0;
    for _ in 0..attempts {
        if out.len() < 3 {
            break;
        }
        let i = rng.gen_range(0..out.len() - 2);
        let j = rng.gen_range(i + 2..out.len());
        let direct = out[i].distance(&out[j]);
        let current: f64 = out[i..=j].windows(2).map(|w| w[0].distance(&w[1])).sum();
        if direct + 1e-9 < current && checker.motion_free(robot, &out[i], &out[j], steps, ledger) {
            out.drain(i + 1..j);
            shortcuts_applied += 1;
        }
    }
    let cost_after = path_cost(&out);
    SmoothReport {
        path: out,
        cost_before,
        cost_after,
        shortcuts_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_collision::TwoStageChecker;
    use moped_env::{Scenario, ScenarioParams};

    fn zigzag() -> Vec<Config> {
        // A staircase in free space: heavily shortcut-able.
        (0..10)
            .map(|i| {
                Config::new(&[
                    10.0 + 10.0 * i as f64,
                    if i % 2 == 0 { 100.0 } else { 115.0 },
                    0.0,
                ])
            })
            .collect()
    }

    #[test]
    fn shortcut_straightens_free_space_zigzag() {
        let robot = moped_robot::Robot::mobile_2d();
        let checker = TwoStageChecker::moped(Vec::new());
        let steps = InterpolationSteps::with_resolution(2.0);
        let mut ledger = CollisionLedger::default();
        let path = zigzag();
        let rep = shortcut(&path, &robot, &checker, &steps, 200, 1, &mut ledger);
        assert!(rep.cost_after < rep.cost_before * 0.98);
        assert!(rep.shortcuts_applied > 0);
        assert_eq!(rep.path[0], path[0]);
        assert_eq!(*rep.path.last().unwrap(), *path.last().unwrap());
    }

    #[test]
    fn smoothing_never_increases_cost() {
        let s = Scenario::generate(
            moped_robot::Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            5,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = crate::PlannerParams {
            max_samples: 800,
            seed: 2,
            ..Default::default()
        };
        let r = crate::RrtStar::new(&s, &checker, crate::SimbrIndex::moped(3), params).plan();
        if let Some(path) = &r.path {
            let steps = InterpolationSteps::with_resolution(1.0);
            let mut ledger = CollisionLedger::default();
            let rep = shortcut(path, &s.robot, &checker, &steps, 300, 7, &mut ledger);
            assert!(rep.cost_after <= rep.cost_before + 1e-9);
            // Smoothed path still collision free.
            for w in rep.path.windows(2) {
                for pose in moped_geometry::interpolate(&w[0], &w[1], &steps) {
                    assert!(!s.config_collides(&pose));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn degenerate_path_rejected() {
        let robot = moped_robot::Robot::mobile_2d();
        let checker = TwoStageChecker::moped(Vec::new());
        let steps = InterpolationSteps::default();
        let mut ledger = CollisionLedger::default();
        let _ = shortcut(
            &[Config::zeros(3)],
            &robot,
            &checker,
            &steps,
            10,
            0,
            &mut ledger,
        );
    }
}
